//! Native compact trace format.
//!
//! ChampSim's 64-byte records waste most of their bytes on unused fields;
//! this codec stores the same information in a few bytes per instruction:
//! a one-byte opcode/flag header, LEB128 varints, and zig-zag PC deltas
//! (instruction streams are mostly sequential, so deltas are tiny).
//!
//! Layout:
//!
//! ```text
//! header:  magic "BTBX" | version u8 | arch u8 | name len u16 | name bytes
//! record:  flags u8
//!            bits 0..3  kind (0 other, 1 load, 2 store, 3.. branch classes)
//!            bit  4     taken (branches)
//!            bit  5     size != 4 (explicit size byte follows)
//!          [size u8]
//!          pc_delta  zig-zag varint (from previous record's pc)
//!          [addr varint]            for loads/stores
//!          [target_delta zig-zag]   for branches (from pc)
//! ```

use crate::record::{MemAccess, Op, TraceInstr};
use crate::source::TraceSource;
use btbx_core::types::{Arch, BranchClass, BranchEvent};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying the format.
pub const MAGIC: &[u8; 4] = b"BTBX";
/// Current format version.
pub const VERSION: u8 = 1;

const KIND_OTHER: u8 = 0;
const KIND_LOAD: u8 = 1;
const KIND_STORE: u8 = 2;
const KIND_BRANCH_BASE: u8 = 3; // + BranchClass discriminant (0..6)

/// Errors produced while decoding a native trace.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream does not start with the `BTBX` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown architecture byte.
    BadArch(u8),
    /// A record was malformed or the stream ended mid-record.
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a BTBX trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::BadArch(a) => write!(f, "unknown architecture byte {a}"),
            DecodeError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DecodeError::Corrupt("varint truncated"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(DecodeError::Corrupt("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn class_code(class: BranchClass) -> u8 {
    BranchClass::ALL.iter().position(|&c| c == class).unwrap() as u8
}

fn class_from_code(code: u8) -> Option<BranchClass> {
    BranchClass::ALL.get(code as usize).copied()
}

/// Encode a trace into the native format.
pub fn encode(name: &str, arch: Arch, instrs: impl IntoIterator<Item = TraceInstr>) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(match arch {
        Arch::Arm64 => 0,
        Arch::X86 => 1,
    });
    let name_bytes = name.as_bytes();
    buf.put_u16_le(name_bytes.len() as u16);
    buf.put_slice(name_bytes);

    let mut prev_pc = 0u64;
    for instr in instrs {
        let (kind, taken) = match instr.op {
            Op::Other => (KIND_OTHER, false),
            Op::Mem(MemAccess::Load(_)) => (KIND_LOAD, false),
            Op::Mem(MemAccess::Store(_)) => (KIND_STORE, false),
            Op::Branch(ev) => (KIND_BRANCH_BASE + class_code(ev.class), ev.taken),
        };
        let explicit_size = instr.size != 4;
        let mut flags = kind;
        if taken {
            flags |= 1 << 4;
        }
        if explicit_size {
            flags |= 1 << 5;
        }
        buf.put_u8(flags);
        if explicit_size {
            buf.put_u8(instr.size);
        }
        put_varint(&mut buf, zigzag(instr.pc.wrapping_sub(prev_pc) as i64));
        prev_pc = instr.pc;
        match instr.op {
            Op::Other => {}
            Op::Mem(m) => put_varint(&mut buf, m.address()),
            Op::Branch(ev) => {
                put_varint(&mut buf, zigzag(ev.target.wrapping_sub(ev.pc) as i64));
            }
        }
    }
    buf.freeze()
}

/// Decoder for the native format; implements [`TraceSource`].
#[derive(Debug, Clone)]
pub struct Decoder {
    buf: Bytes,
    name: String,
    arch: Arch,
    prev_pc: u64,
}

impl Decoder {
    /// Parse the header and prepare to stream records.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the header is malformed.
    pub fn new(data: impl Into<Bytes>) -> Result<Self, DecodeError> {
        let mut buf: Bytes = data.into();
        if buf.remaining() < 8 {
            return Err(DecodeError::BadMagic);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let arch = match buf.get_u8() {
            0 => Arch::Arm64,
            1 => Arch::X86,
            a => return Err(DecodeError::BadArch(a)),
        };
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len {
            return Err(DecodeError::Corrupt("name truncated"));
        }
        let name = String::from_utf8(buf.split_to(name_len).to_vec())
            .map_err(|_| DecodeError::Corrupt("name not utf-8"))?;
        Ok(Decoder {
            buf,
            name,
            arch,
            prev_pc: 0,
        })
    }

    /// Architecture recorded in the header.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    fn decode_next(&mut self) -> Result<Option<TraceInstr>, DecodeError> {
        if !self.buf.has_remaining() {
            return Ok(None);
        }
        let flags = self.buf.get_u8();
        let kind = flags & 0x0f;
        let taken = flags & (1 << 4) != 0;
        let size = if flags & (1 << 5) != 0 {
            if !self.buf.has_remaining() {
                return Err(DecodeError::Corrupt("size truncated"));
            }
            self.buf.get_u8()
        } else {
            4
        };
        let delta = unzigzag(get_varint(&mut self.buf)?);
        let pc = self.prev_pc.wrapping_add(delta as u64);
        self.prev_pc = pc;
        let instr = match kind {
            KIND_OTHER => TraceInstr::other(pc, size),
            KIND_LOAD => TraceInstr::mem(pc, size, MemAccess::Load(get_varint(&mut self.buf)?)),
            KIND_STORE => TraceInstr::mem(pc, size, MemAccess::Store(get_varint(&mut self.buf)?)),
            k => {
                let class = class_from_code(k - KIND_BRANCH_BASE)
                    .ok_or(DecodeError::Corrupt("unknown branch class"))?;
                let tdelta = unzigzag(get_varint(&mut self.buf)?);
                let target = pc.wrapping_add(tdelta as u64);
                TraceInstr::branch(
                    pc,
                    size,
                    BranchEvent {
                        pc,
                        target,
                        class,
                        taken,
                    },
                )
            }
        };
        Ok(Some(instr))
    }
}

impl TraceSource for Decoder {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        self.decode_next().ok().flatten()
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

/// Write a trace to a file in the native format.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_file(
    path: impl AsRef<std::path::Path>,
    name: &str,
    arch: Arch,
    instrs: impl IntoIterator<Item = TraceInstr>,
) -> std::io::Result<u64> {
    let bytes = encode(name, arch, instrs);
    let len = bytes.len() as u64;
    std::fs::write(path, &bytes)?;
    Ok(len)
}

/// Open a native-format trace file as a [`TraceSource`].
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read, or a boxed
/// [`DecodeError`] if the header is malformed.
pub fn open_file(
    path: impl AsRef<std::path::Path>,
) -> Result<Decoder, Box<dyn std::error::Error + Send + Sync>> {
    let bytes = std::fs::read(path)?;
    Ok(Decoder::new(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_trace() -> Vec<TraceInstr> {
        vec![
            TraceInstr::other(0x1000, 4),
            TraceInstr::mem(0x1004, 4, MemAccess::Load(0xfeed_0040)),
            TraceInstr::branch(
                0x1008,
                4,
                BranchEvent::taken(0x1008, 0x0900, BranchClass::CondDirect),
            ),
            TraceInstr::other(0x0900, 4),
            TraceInstr::mem(0x0904, 4, MemAccess::Store(0x7fff_f000)),
            TraceInstr::branch(0x0908, 4, BranchEvent::not_taken(0x0908, 0x0a00)),
            TraceInstr::branch(
                0x090c,
                4,
                BranchEvent::taken(0x090c, 0x7f00_0000_1000, BranchClass::Return),
            ),
        ]
    }

    #[test]
    fn round_trip_exact() {
        let original = sample_trace();
        let bytes = encode("unit", Arch::Arm64, original.clone());
        let dec = Decoder::new(bytes).unwrap();
        assert_eq!(dec.arch(), Arch::Arm64);
        assert_eq!(dec.source_name(), "unit");
        let back: Vec<TraceInstr> = dec.into_iter_instrs().collect();
        assert_eq!(back, original);
    }

    #[test]
    fn compactness_beats_champsim_format() {
        let original = sample_trace();
        let bytes = encode("unit", Arch::Arm64, original.clone());
        assert!(
            bytes.len() < original.len() * crate::champsim::RECORD_BYTES / 4,
            "codec should be ≥4× smaller ({} bytes for {} records)",
            bytes.len(),
            original.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            Decoder::new(&b"NOPE0000"[..]).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode("v", Arch::Arm64, vec![]).to_vec();
        bytes[4] = 99;
        assert_eq!(
            Decoder::new(bytes).unwrap_err(),
            DecodeError::BadVersion(99)
        );
    }

    #[test]
    fn x86_sizes_round_trip() {
        let original = vec![
            TraceInstr::other(0x1000, 3),
            TraceInstr::other(0x1003, 7),
            TraceInstr::branch(
                0x100a,
                2,
                BranchEvent::taken(0x100a, 0x1100, BranchClass::UncondDirect),
            ),
        ];
        let bytes = encode("x", Arch::X86, original.clone());
        let back: Vec<TraceInstr> = Decoder::new(bytes).unwrap().into_iter_instrs().collect();
        assert_eq!(back, original);
    }

    #[test]
    fn file_round_trip() {
        let original = sample_trace();
        let path = std::env::temp_dir().join("btbx-codec-file-test.btbx");
        write_file(&path, "filetest", Arch::Arm64, original.clone()).unwrap();
        let dec = open_file(&path).unwrap();
        assert_eq!(dec.source_name(), "filetest");
        let back: Vec<TraceInstr> = dec.into_iter_instrs().collect();
        assert_eq!(back, original);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_missing_file_errors() {
        assert!(open_file("/nonexistent/btbx-trace").is_err());
    }

    #[test]
    fn zigzag_is_involutive_on_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(records in proptest::collection::vec(arb_instr(), 0..200)) {
            let bytes = encode("prop", Arch::Arm64, records.clone());
            let back: Vec<TraceInstr> =
                Decoder::new(bytes).unwrap().into_iter_instrs().collect();
            prop_assert_eq!(back, records);
        }
    }

    fn arb_instr() -> impl Strategy<Value = TraceInstr> {
        let pc = any::<u64>().prop_map(|v| v & ((1 << 48) - 1));
        let size = 1u8..16;
        (pc, size, 0u8..4).prop_flat_map(|(pc, size, kind)| match kind {
            0 => Just(TraceInstr::other(pc, size)).boxed(),
            1 => any::<u64>()
                .prop_map(move |a| TraceInstr::mem(pc, size, MemAccess::Load(a)))
                .boxed(),
            2 => any::<u64>()
                .prop_map(move |a| TraceInstr::mem(pc, size, MemAccess::Store(a)))
                .boxed(),
            _ => (any::<u64>(), 0usize..6, any::<bool>())
                .prop_map(move |(t, ci, taken)| {
                    let target = t & ((1 << 48) - 1);
                    let class = BranchClass::ALL[ci];
                    TraceInstr::branch(
                        pc,
                        size,
                        BranchEvent {
                            pc,
                            target,
                            class,
                            taken,
                        },
                    )
                })
                .boxed(),
        })
    }
}
