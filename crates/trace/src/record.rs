//! The instruction record shared by trace producers (generators, parsers)
//! and consumers (the simulator, analyses).

use btbx_core::snap::{SnapError, SnapReader, SnapWriter};
use btbx_core::types::{Arch, BranchEvent};
use serde::{Deserialize, Serialize};

/// A data-memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemAccess {
    /// Load from the given byte address.
    Load(u64),
    /// Store to the given byte address.
    Store(u64),
}

impl MemAccess {
    /// The accessed byte address.
    #[inline]
    pub fn address(self) -> u64 {
        match self {
            MemAccess::Load(a) | MemAccess::Store(a) => a,
        }
    }

    /// `true` for loads.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, MemAccess::Load(_))
    }
}

/// Semantic payload of one dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Neither a branch nor a memory access (ALU, FP, nop, …).
    Other,
    /// A data-memory access.
    Mem(MemAccess),
    /// A control-flow instruction with its resolved outcome.
    Branch(BranchEvent),
}

/// One dynamic instruction of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceInstr {
    /// Program counter.
    pub pc: u64,
    /// Instruction size in bytes (4 on Arm64; 1–15 on x86). The front-end
    /// uses `pc + size` as the sequential successor.
    pub size: u8,
    /// Branch/memory semantics.
    pub op: Op,
}

impl TraceInstr {
    /// A non-branch, non-memory instruction.
    pub fn other(pc: u64, size: u8) -> Self {
        TraceInstr {
            pc,
            size,
            op: Op::Other,
        }
    }

    /// A memory instruction.
    pub fn mem(pc: u64, size: u8, access: MemAccess) -> Self {
        TraceInstr {
            pc,
            size,
            op: Op::Mem(access),
        }
    }

    /// A branch instruction.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `event.pc != pc`.
    pub fn branch(pc: u64, size: u8, event: BranchEvent) -> Self {
        debug_assert_eq!(event.pc, pc, "branch event PC must match instruction PC");
        TraceInstr {
            pc,
            size,
            op: Op::Branch(event),
        }
    }

    /// The branch event, if this instruction is a branch.
    #[inline]
    pub fn branch_event(&self) -> Option<&BranchEvent> {
        match &self.op {
            Op::Branch(ev) => Some(ev),
            _ => None,
        }
    }

    /// Address of the next instruction actually executed after this one.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        match &self.op {
            Op::Branch(ev) if ev.taken => ev.target,
            _ => self.pc + self.size as u64,
        }
    }

    /// Default instruction size for an architecture (Arm64's fixed 4
    /// bytes; x86 callers should carry real sizes).
    pub fn default_size(arch: Arch) -> u8 {
        match arch {
            Arch::Arm64 => 4,
            Arch::X86 => 4,
        }
    }

    /// Serialize into a [`SnapWriter`] (microarchitectural snapshots carry
    /// in-flight instructions through checkpoint/restore).
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.u64(self.pc);
        w.u8(self.size);
        match &self.op {
            Op::Other => w.u8(0),
            Op::Mem(MemAccess::Load(a)) => {
                w.u8(1);
                w.u64(*a);
            }
            Op::Mem(MemAccess::Store(a)) => {
                w.u8(2);
                w.u64(*a);
            }
            Op::Branch(ev) => {
                w.u8(3);
                ev.save_state(w);
            }
        }
    }

    /// Deserialize an instruction written by [`TraceInstr::save_snap`].
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let pc = r.u64()?;
        let size = r.u8()?;
        let op = match r.u8()? {
            0 => Op::Other,
            1 => Op::Mem(MemAccess::Load(r.u64()?)),
            2 => Op::Mem(MemAccess::Store(r.u64()?)),
            3 => Op::Branch(BranchEvent::load_state(r)?),
            _ => return Err(SnapError::Corrupt("trace instruction op discriminant")),
        };
        Ok(TraceInstr { pc, size, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btbx_core::types::BranchClass;

    #[test]
    fn next_pc_sequential() {
        let i = TraceInstr::other(0x100, 4);
        assert_eq!(i.next_pc(), 0x104);
        let i = TraceInstr::mem(0x100, 7, MemAccess::Load(0xdead));
        assert_eq!(i.next_pc(), 0x107);
    }

    #[test]
    fn next_pc_taken_branch() {
        let ev = BranchEvent::taken(0x100, 0x900, BranchClass::UncondDirect);
        let i = TraceInstr::branch(0x100, 4, ev);
        assert_eq!(i.next_pc(), 0x900);
    }

    #[test]
    fn next_pc_not_taken_branch() {
        let ev = BranchEvent::not_taken(0x100, 0x900);
        let i = TraceInstr::branch(0x100, 4, ev);
        assert_eq!(i.next_pc(), 0x104);
    }

    #[test]
    fn mem_access_helpers() {
        assert!(MemAccess::Load(1).is_load());
        assert!(!MemAccess::Store(1).is_load());
        assert_eq!(MemAccess::Store(0x40).address(), 0x40);
    }

    #[test]
    fn branch_event_accessor() {
        let ev = BranchEvent::taken(0x10, 0x20, BranchClass::Return);
        let i = TraceInstr::branch(0x10, 4, ev);
        assert_eq!(i.branch_event(), Some(&ev));
        assert_eq!(TraceInstr::other(0, 4).branch_event(), None);
    }
}
