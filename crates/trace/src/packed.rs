//! Packed structure-of-arrays event buffers.
//!
//! A [`crate::record::TraceInstr`] is ergonomic but wide (its `Op` enum
//! carries a full [`btbx_core::types::BranchEvent`]), so buffering a
//! measurement window costs ~40 bytes per event. Everything this
//! simulator buffers fits in far less: PCs, targets and data addresses
//! are canonical 48-bit virtual addresses, the size is a byte, and the
//! branch class + taken flag need 4 bits together. [`PackedInstr`]
//! bit-packs one instruction into two 64-bit words — 16 bytes per event —
//! and [`PackedBuf`] stores them as two parallel `Vec<u64>` columns (SoA),
//! with a rarely used side table for the odd non-canonical record so the
//! format is still lossless for arbitrary traces.
//!
//! Word layout (`lo` / `hi`):
//!
//! ```text
//! lo[47:0]   pc (48-bit canonical VA)
//! lo[55:48]  size in bytes
//! lo[59:56]  kind: 0 = other, 1 = load, 2 = store,
//!            3 + BranchClass (6 classes), 15 = escape to side table
//! lo[60]     taken (branches only)
//! hi[47:0]   payload: data address (loads/stores) or branch target
//! ```
//!
//! Used by the simulator's streaming block buffer (the only place trace
//! events are still buffered now that sharded runs stream their windows)
//! and by [`PackedSource`] for in-memory replays.

use crate::record::{MemAccess, Op, TraceInstr};
use crate::source::{SeekableSource, TraceSource};
use btbx_core::types::{BranchClass, BranchEvent};

const ADDR_BITS: u32 = 48;
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;
const SIZE_SHIFT: u32 = 48;
pub(crate) const KIND_SHIFT: u32 = 56;
const TAKEN_SHIFT: u32 = 60;
const KIND_OTHER: u64 = 0;
const KIND_LOAD: u64 = 1;
const KIND_STORE: u64 = 2;
const KIND_BRANCH0: u64 = 3;
pub(crate) const KIND_ESCAPE: u64 = 15;

/// One instruction packed into 16 bytes. See the module docs for the
/// bit layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedInstr {
    pub(crate) lo: u64,
    pub(crate) hi: u64,
}

impl PackedInstr {
    /// Pack `instr`, or `None` when an address exceeds the canonical
    /// 48-bit VA range (callers fall back to a side table).
    #[inline]
    pub fn encode(instr: &TraceInstr) -> Option<PackedInstr> {
        if instr.pc > ADDR_MASK {
            return None;
        }
        let base = instr.pc | (instr.size as u64) << SIZE_SHIFT;
        let (kind, taken, payload) = match instr.op {
            Op::Other => (KIND_OTHER, 0, 0),
            Op::Mem(MemAccess::Load(a)) => (KIND_LOAD, 0, a),
            Op::Mem(MemAccess::Store(a)) => (KIND_STORE, 0, a),
            // A branch event whose pc disagrees with the instruction pc
            // (possible in release builds: the invariant is only a debug
            // assertion in `TraceInstr::branch`) cannot be reconstructed
            // from the packed words — escape it instead of silently
            // rewriting its pc on decode.
            Op::Branch(ev) if ev.pc != instr.pc => return None,
            Op::Branch(ev) => (KIND_BRANCH0 + ev.class as u64, ev.taken as u64, ev.target),
        };
        if payload > ADDR_MASK {
            return None;
        }
        Some(PackedInstr {
            lo: base | kind << KIND_SHIFT | taken << TAKEN_SHIFT,
            hi: payload,
        })
    }

    /// Unpack back into the wide record. Exact inverse of
    /// [`encode`](Self::encode) (pinned by round-trip tests).
    #[inline]
    pub fn decode(self) -> TraceInstr {
        let pc = self.lo & ADDR_MASK;
        let size = (self.lo >> SIZE_SHIFT) as u8;
        let kind = (self.lo >> KIND_SHIFT) & 0xf;
        let op = match kind {
            KIND_OTHER => Op::Other,
            KIND_LOAD => Op::Mem(MemAccess::Load(self.hi)),
            KIND_STORE => Op::Mem(MemAccess::Store(self.hi)),
            k => Op::Branch(BranchEvent {
                pc,
                target: self.hi,
                class: BranchClass::ALL[(k - KIND_BRANCH0) as usize],
                taken: (self.lo >> TAKEN_SHIFT) & 1 != 0,
            }),
        };
        TraceInstr { pc, size, op }
    }
}

/// A growable packed event buffer: two SoA `u64` columns at 16 bytes per
/// event, plus a side table for records that do not pack (non-canonical
/// addresses — absent in every in-repo workload).
#[derive(Debug, Clone, Default)]
pub struct PackedBuf {
    lo: Vec<u64>,
    hi: Vec<u64>,
    /// Escaped wide records, indexed by the `hi` word of escape entries.
    overflow: Vec<TraceInstr>,
}

impl PackedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        PackedBuf::default()
    }

    /// An empty buffer with room for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        PackedBuf {
            lo: Vec::with_capacity(n),
            hi: Vec::with_capacity(n),
            overflow: Vec::new(),
        }
    }

    /// Events stored.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// `true` when no event is stored.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Append one instruction.
    #[inline]
    pub fn push(&mut self, instr: TraceInstr) {
        match PackedInstr::encode(&instr) {
            Some(p) => {
                self.lo.push(p.lo);
                self.hi.push(p.hi);
            }
            None => {
                self.lo.push(KIND_ESCAPE << KIND_SHIFT);
                self.hi.push(self.overflow.len() as u64);
                self.overflow.push(instr);
            }
        }
    }

    /// Decode the event at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> TraceInstr {
        let lo = self.lo[index];
        if lo >> KIND_SHIFT == KIND_ESCAPE {
            self.overflow[self.hi[index] as usize]
        } else {
            PackedInstr {
                lo,
                hi: self.hi[index],
            }
            .decode()
        }
    }

    /// Drop all events, keeping allocations.
    pub fn clear(&mut self) {
        self.lo.clear();
        self.hi.clear();
        self.overflow.clear();
    }

    /// Bytes of event storage currently allocated (columns plus side
    /// table).
    pub fn capacity_bytes(&self) -> u64 {
        (self.lo.capacity() + self.hi.capacity()) as u64 * 8
            + self.overflow.capacity() as u64 * std::mem::size_of::<TraceInstr>() as u64
    }

    /// Iterate the decoded events.
    pub fn iter(&self) -> impl Iterator<Item = TraceInstr> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Collect up to `max` instructions from `source` into a fresh
    /// buffer.
    pub fn collect_from<S: TraceSource>(source: &mut S, max: usize) -> Self {
        let mut buf = PackedBuf::with_capacity(max.min(1 << 20));
        source.fill_block(&mut buf, max);
        buf
    }

    /// Append events `start..end` of `src` to this buffer: a column
    /// memcpy when `src` has no escaped records (the universal case —
    /// every in-repo workload packs), element-wise otherwise so escape
    /// indices stay valid in the destination's own side table.
    pub fn extend_from_range(&mut self, src: &PackedBuf, start: usize, end: usize) {
        assert!(start <= end && end <= src.len(), "range within source");
        if src.overflow.is_empty() {
            self.lo.extend_from_slice(&src.lo[start..end]);
            self.hi.extend_from_slice(&src.hi[start..end]);
        } else {
            for i in start..end {
                self.push(src.get(i));
            }
        }
    }
}

impl FromIterator<TraceInstr> for PackedBuf {
    fn from_iter<I: IntoIterator<Item = TraceInstr>>(iter: I) -> Self {
        let mut buf = PackedBuf::new();
        for i in iter {
            buf.push(i);
        }
        buf
    }
}

/// A [`TraceSource`] replaying a [`PackedBuf`] — the 16-byte-per-event
/// replacement for buffering windows as `Vec<TraceInstr>`.
#[derive(Debug, Clone)]
pub struct PackedSource {
    name: String,
    buf: PackedBuf,
    pos: usize,
}

impl PackedSource {
    /// Replay `buf` under the given source name.
    pub fn new(name: impl Into<String>, buf: PackedBuf) -> Self {
        PackedSource {
            name: name.into(),
            buf,
            pos: 0,
        }
    }

    /// Borrow the underlying buffer.
    pub fn buffer(&self) -> &PackedBuf {
        &self.buf
    }
}

impl TraceSource for PackedSource {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let i = self.buf.get(self.pos);
        self.pos += 1;
        Some(i)
    }

    fn source_name(&self) -> &str {
        &self.name
    }

    fn advance(&mut self, n: u64) -> u64 {
        let left = (self.buf.len() - self.pos) as u64;
        let skipped = n.min(left);
        self.pos += skipped as usize;
        skipped
    }
}

impl SeekableSource for PackedSource {
    type Checkpoint = u64;

    fn position(&self) -> u64 {
        self.pos as u64
    }

    fn checkpoint(&self) -> u64 {
        self.pos as u64
    }

    fn restore(&mut self, cp: &u64) {
        assert!(
            *cp <= self.buf.len() as u64,
            "checkpoint beyond the buffer: not from this stream"
        );
        self.pos = *cp as usize;
    }

    fn seek(&mut self, n: u64) -> u64 {
        self.pos = (n as usize).min(self.buf.len());
        self.pos as u64
    }
}

/// A [`TraceSource`] replaying an [`Arc`](std::sync::Arc)-shared
/// [`PackedBuf`]: the batched executor's per-lane stream. Unlike
/// [`PackedSource`], cloning is O(1) — every lane of a batch group walks
/// the same decoded buffer — and [`fill_block`](TraceSource::fill_block)
/// bulk-copies packed columns instead of decoding and re-encoding each
/// event, so refilling a simulator's staging block is a memcpy.
#[derive(Debug, Clone)]
pub struct SharedSource {
    name: std::sync::Arc<str>,
    buf: std::sync::Arc<PackedBuf>,
    pos: usize,
}

impl SharedSource {
    /// Replay `buf` under the given source name.
    pub fn new(name: impl Into<String>, buf: std::sync::Arc<PackedBuf>) -> Self {
        SharedSource {
            name: name.into().into(),
            buf,
            pos: 0,
        }
    }

    /// Borrow the shared buffer.
    pub fn buffer(&self) -> &PackedBuf {
        &self.buf
    }
}

impl TraceSource for SharedSource {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let i = self.buf.get(self.pos);
        self.pos += 1;
        Some(i)
    }

    fn source_name(&self) -> &str {
        &self.name
    }

    fn advance(&mut self, n: u64) -> u64 {
        let left = (self.buf.len() - self.pos) as u64;
        let skipped = n.min(left);
        self.pos += skipped as usize;
        skipped
    }

    fn fill_block(&mut self, block: &mut PackedBuf, max: usize) -> usize {
        let end = (self.pos + max).min(self.buf.len());
        let n = end - self.pos;
        block.extend_from_range(&self.buf, self.pos, end);
        self.pos = end;
        n
    }
}

impl SeekableSource for SharedSource {
    type Checkpoint = u64;

    fn position(&self) -> u64 {
        self.pos as u64
    }

    fn checkpoint(&self) -> u64 {
        self.pos as u64
    }

    fn restore(&mut self, cp: &u64) {
        assert!(
            *cp <= self.buf.len() as u64,
            "checkpoint beyond the buffer: not from this stream"
        );
        self.pos = *cp as usize;
    }

    fn seek(&mut self, n: u64) -> u64 {
        self.pos = (n as usize).min(self.buf.len());
        self.pos as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<TraceInstr> {
        vec![
            TraceInstr::other(0x1000, 4),
            TraceInstr::other((1 << 48) - 4, 15),
            TraceInstr::mem(0x2000, 7, MemAccess::Load(0x7fff_ffff_fff8)),
            TraceInstr::mem(0x2010, 1, MemAccess::Store(8)),
            TraceInstr::branch(
                0x3000,
                4,
                BranchEvent::taken(0x3000, 0x7f00_0000_0040, BranchClass::CallIndirect),
            ),
            TraceInstr::branch(0x3004, 2, BranchEvent::not_taken(0x3004, 0x3100)),
            TraceInstr::branch(
                0x3010,
                4,
                BranchEvent::taken(0x3010, 0, BranchClass::Return),
            ),
        ]
    }

    #[test]
    fn every_class_round_trips() {
        for class in BranchClass::ALL {
            for taken in [true, false] {
                let i = TraceInstr::branch(
                    0xdead_0000,
                    4,
                    BranchEvent {
                        pc: 0xdead_0000,
                        target: 0xbeef_0000,
                        class,
                        taken,
                    },
                );
                let p = PackedInstr::encode(&i).expect("canonical");
                assert_eq!(p.decode(), i, "{class}/{taken}");
            }
        }
    }

    #[test]
    fn canonical_records_round_trip_through_the_buffer() {
        let instrs = sample_instrs();
        let buf: PackedBuf = instrs.iter().copied().collect();
        assert_eq!(buf.len(), instrs.len());
        assert!(buf.overflow.is_empty(), "all sample records pack");
        for (i, want) in instrs.iter().enumerate() {
            assert_eq!(buf.get(i), *want, "record {i}");
        }
    }

    #[test]
    fn non_canonical_records_escape_losslessly() {
        let weird = [
            TraceInstr::other(1 << 48, 4),
            TraceInstr::mem(0x40, 4, MemAccess::Load(u64::MAX)),
            TraceInstr::branch(
                0x40,
                4,
                BranchEvent::taken(0x40, 1 << 60, BranchClass::UncondDirect),
            ),
            // Mismatched event pc (constructible in release builds where
            // `TraceInstr::branch` only debug-asserts): must escape, not
            // silently decode with the instruction pc.
            TraceInstr {
                pc: 0x100,
                size: 4,
                op: Op::Branch(BranchEvent::taken(0x200, 0x300, BranchClass::CondDirect)),
            },
        ];
        let buf: PackedBuf = weird.iter().copied().collect();
        assert_eq!(buf.overflow.len(), 4);
        for (i, want) in weird.iter().enumerate() {
            assert_eq!(buf.get(i), *want, "escaped record {i}");
        }
    }

    #[test]
    fn packed_source_replays_in_order_and_seeks() {
        let instrs = sample_instrs();
        let mut s = PackedSource::new("packed", instrs.iter().copied().collect());
        assert_eq!(s.source_name(), "packed");
        let replay: Vec<TraceInstr> = s.clone().into_iter_instrs().collect();
        assert_eq!(replay, instrs);
        s.seek(3);
        assert_eq!(s.next_instr().unwrap(), instrs[3]);
        let cp = s.checkpoint();
        s.advance(2);
        s.restore(&cp);
        assert_eq!(s.next_instr().unwrap(), instrs[4]);
    }

    #[test]
    fn sixteen_bytes_per_packed_event() {
        assert_eq!(std::mem::size_of::<PackedInstr>(), 16);
        let mut buf = PackedBuf::with_capacity(64);
        for i in 0..64u64 {
            buf.push(TraceInstr::other(i * 4, 4));
        }
        assert_eq!(buf.capacity_bytes(), 64 * 16);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity_bytes(), 64 * 16, "allocations kept");
    }
}
