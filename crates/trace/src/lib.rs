//! Trace substrate for the BTB-X reproduction.
//!
//! The paper evaluates on proprietary Qualcomm traces (IPC-1 and CVP-1)
//! and on x86 server applications. Those inputs are not redistributable,
//! so this crate provides — per the reproduction's substitution policy —
//! everything needed to exercise the same code paths:
//!
//! * [`record`] — the instruction record every consumer shares
//!   ([`TraceInstr`]), carrying branch and memory semantics;
//! * [`source`] — the [`TraceSource`] streaming abstraction with
//!   combinators (`take`, `skip`) used by the simulator;
//! * [`champsim`] — a parser/writer for the 64-byte ChampSim
//!   `input_instr` format, including ChampSim's register-based branch
//!   classification, so real IPC-1 traces can be fed in when available,
//!   plus a seekable file-backed reader with typed truncation errors;
//! * [`codec`] — a compact varint-encoded native trace format with
//!   round-trip guarantees;
//! * [`packed`] — 16-byte-per-event SoA buffers ([`PackedBuf`]) for the
//!   few places that still buffer events, and [`PackedSource`] to replay
//!   them;
//! * [`container`] — the on-disk `.btbt` form of the packed format: an
//!   indexed block container whose [`PackedFileSource`] seeks in O(1),
//!   bringing file-backed traces onto the sharded streaming engine;
//! * [`any`] — [`AnySource`], the unified
//!   synthetic / ChampSim / packed-file entry point every consumer
//!   (sessions, sweeps, benches) builds its streams through;
//! * [`synth`] — the synthetic workload generator: a seeded program image
//!   (functions, basic blocks, calls across pages and library regions)
//!   plus a dynamic walker that emits instruction streams whose branch
//!   offset distribution matches the paper's Figure 4 and whose branch
//!   working sets range from client-small to server-huge;
//! * [`suite`] — named workload specs mirroring the paper's
//!   `client_001..008` / `server_001..039` sets, a CVP-1-like family, and
//!   the five x86 applications of Figure 13;
//! * [`stats`] — trace-level statistics (dynamic branch mix, working-set
//!   sizes, offset histogram feed).

pub mod any;
pub mod champsim;
pub mod codec;
pub mod container;
pub mod packed;
pub mod record;
pub mod source;
pub mod stats;
pub mod suite;
pub mod synth;

pub use any::{AnyCheckpoint, AnySource, TraceOpenError};
pub use container::{ContainerInfo, ContainerWriter, PackedFileSource};
pub use packed::{PackedBuf, PackedInstr, PackedSource};
pub use record::{MemAccess, Op, TraceInstr};
pub use source::{SeekableSource, TraceSource};
pub use stats::TraceStats;
pub use suite::{Suite, TraceRef, WorkloadSpec};
pub use synth::{SynthCheckpoint, SynthParams, SyntheticTrace};
