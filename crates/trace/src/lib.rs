//! Trace substrate for the BTB-X reproduction.
//!
//! The paper evaluates on proprietary Qualcomm traces (IPC-1 and CVP-1)
//! and on x86 server applications. Those inputs are not redistributable,
//! so this crate provides — per the reproduction's substitution policy —
//! everything needed to exercise the same code paths:
//!
//! * [`record`] — the instruction record every consumer shares
//!   ([`TraceInstr`]), carrying branch and memory semantics;
//! * [`source`] — the [`TraceSource`] streaming abstraction with
//!   combinators (`take`, `skip`) used by the simulator;
//! * [`champsim`] — a parser/writer for the 64-byte ChampSim
//!   `input_instr` format, including ChampSim's register-based branch
//!   classification, so real IPC-1 traces can be fed in when available;
//! * [`codec`] — a compact varint-encoded native trace format with
//!   round-trip guarantees;
//! * [`packed`] — 16-byte-per-event SoA buffers ([`PackedBuf`]) for the
//!   few places that still buffer events, and [`PackedSource`] to replay
//!   them;
//! * [`synth`] — the synthetic workload generator: a seeded program image
//!   (functions, basic blocks, calls across pages and library regions)
//!   plus a dynamic walker that emits instruction streams whose branch
//!   offset distribution matches the paper's Figure 4 and whose branch
//!   working sets range from client-small to server-huge;
//! * [`suite`] — named workload specs mirroring the paper's
//!   `client_001..008` / `server_001..039` sets, a CVP-1-like family, and
//!   the five x86 applications of Figure 13;
//! * [`stats`] — trace-level statistics (dynamic branch mix, working-set
//!   sizes, offset histogram feed).

pub mod champsim;
pub mod codec;
pub mod packed;
pub mod record;
pub mod source;
pub mod stats;
pub mod suite;
pub mod synth;

pub use packed::{PackedBuf, PackedInstr, PackedSource};
pub use record::{MemAccess, Op, TraceInstr};
pub use source::{SeekableSource, TraceSource};
pub use stats::TraceStats;
pub use suite::{Suite, WorkloadSpec};
pub use synth::{SynthCheckpoint, SynthParams, SyntheticTrace};
