//! Trace-level statistics: dynamic branch mix, taken-branch working sets,
//! and the offset-length histogram feed for Figures 4, 12 and 13.

use crate::record::{Op, TraceInstr};
use crate::source::TraceSource;
use btbx_core::offset::stored_offset_len;
use btbx_core::types::{Arch, BranchClass};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Aggregate statistics over a window of a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    /// Instructions observed.
    pub instructions: u64,
    /// Dynamic branches (taken + not taken).
    pub branches: u64,
    /// Dynamic taken branches.
    pub taken: u64,
    /// Dynamic count per branch class, indexed like [`BranchClass::ALL`].
    pub per_class: [u64; 6],
    /// Loads / stores observed.
    pub loads: u64,
    /// Stores observed.
    pub stores: u64,
    /// Histogram of stored offset lengths over *all* dynamic branches
    /// (returns count as 0 bits, Section III); index = stored bits,
    /// 0..=48.
    pub offset_hist: Vec<u64>,
    /// Distinct PCs of taken branches (the branch working set a BTB must
    /// capture).
    pub taken_branch_working_set: u64,
    /// Distinct 64-byte instruction blocks touched (L1-I pressure proxy).
    pub code_blocks: u64,
}

impl TraceStats {
    /// Collect statistics over the next `n` instructions of `source`.
    pub fn collect<S: TraceSource>(source: &mut S, n: u64, arch: Arch) -> Self {
        let mut stats = TraceStats {
            instructions: 0,
            branches: 0,
            taken: 0,
            per_class: [0; 6],
            loads: 0,
            stores: 0,
            offset_hist: vec![0; 49],
            taken_branch_working_set: 0,
            code_blocks: 0,
        };
        let mut taken_pcs: HashSet<u64> = HashSet::new();
        let mut blocks: HashSet<u64> = HashSet::new();
        for _ in 0..n {
            let Some(instr) = source.next_instr() else {
                break;
            };
            stats.observe(&instr, arch);
            blocks.insert(instr.pc >> 6);
            if let Some(ev) = instr.branch_event() {
                if ev.taken {
                    taken_pcs.insert(ev.pc);
                }
            }
        }
        stats.taken_branch_working_set = taken_pcs.len() as u64;
        stats.code_blocks = blocks.len() as u64;
        stats
    }

    /// Fold a single instruction into the aggregate (working sets are only
    /// tracked by [`TraceStats::collect`]).
    pub fn observe(&mut self, instr: &TraceInstr, arch: Arch) {
        self.instructions += 1;
        match &instr.op {
            Op::Other => {}
            Op::Mem(m) => {
                if m.is_load() {
                    self.loads += 1;
                } else {
                    self.stores += 1;
                }
            }
            Op::Branch(ev) => {
                self.branches += 1;
                if ev.taken {
                    self.taken += 1;
                }
                let ci = BranchClass::ALL
                    .iter()
                    .position(|&c| c == ev.class)
                    .unwrap();
                self.per_class[ci] += 1;
                // Returns read the RAS: 0 offset bits (Section III).
                let bits = if ev.class == BranchClass::Return {
                    0
                } else {
                    stored_offset_len(ev.pc, ev.target, arch).min(48)
                };
                self.offset_hist[bits as usize] += 1;
            }
        }
    }

    /// Fraction of dynamic branches of the given class.
    pub fn class_fraction(&self, class: BranchClass) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        let ci = BranchClass::ALL.iter().position(|&c| c == class).unwrap();
        self.per_class[ci] as f64 / self.branches as f64
    }

    /// Cumulative fraction of dynamic branches whose stored offsets fit in
    /// `bits` bits (a point on the Figure 4 curve).
    pub fn offset_cdf(&self, bits: u32) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        let sum: u64 = self.offset_hist[..=(bits as usize).min(48)].iter().sum();
        sum as f64 / self.branches as f64
    }

    /// Dynamic branches per kilo-instruction.
    pub fn branch_density(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branches as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MemAccess;
    use crate::source::VecSource;
    use btbx_core::types::BranchEvent;

    fn collect(instrs: Vec<TraceInstr>) -> TraceStats {
        let mut src = VecSource::new("t", instrs);
        TraceStats::collect(&mut src, u64::MAX, Arch::Arm64)
    }

    #[test]
    fn counts_basics() {
        let s = collect(vec![
            TraceInstr::other(0x100, 4),
            TraceInstr::mem(0x104, 4, MemAccess::Load(1)),
            TraceInstr::mem(0x108, 4, MemAccess::Store(2)),
            TraceInstr::branch(
                0x10c,
                4,
                BranchEvent::taken(0x10c, 0x100, BranchClass::CondDirect),
            ),
            TraceInstr::branch(0x100, 4, BranchEvent::not_taken(0x100, 0x200)),
        ]);
        assert_eq!(s.instructions, 5);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.taken_branch_working_set, 1);
    }

    #[test]
    fn returns_count_as_zero_bits() {
        let s = collect(vec![TraceInstr::branch(
            0x100,
            4,
            BranchEvent::taken(0x100, 0x7fff_0000, BranchClass::Return),
        )]);
        assert_eq!(s.offset_hist[0], 1);
        assert!((s.offset_cdf(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offset_cdf_is_monotone() {
        let s = collect(vec![
            TraceInstr::branch(
                0x100,
                4,
                BranchEvent::taken(0x100, 0x140, BranchClass::CondDirect),
            ),
            TraceInstr::branch(
                0x140,
                4,
                BranchEvent::taken(0x140, 0x90_0000, BranchClass::CallDirect),
            ),
        ]);
        let mut prev = 0.0;
        for b in 0..=46 {
            let c = s.offset_cdf(b);
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_fractions_sum_to_one() {
        let s = collect(vec![
            TraceInstr::branch(
                0x100,
                4,
                BranchEvent::taken(0x100, 0x140, BranchClass::CondDirect),
            ),
            TraceInstr::branch(
                0x140,
                4,
                BranchEvent::taken(0x140, 0x200, BranchClass::Return),
            ),
        ]);
        let total: f64 = BranchClass::ALL.iter().map(|&c| s.class_fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = collect(vec![]);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.offset_cdf(46), 0.0);
        assert_eq!(s.branch_density(), 0.0);
    }
}
