//! The dynamic walker: executes a [`ProgramImage`] and emits the
//! instruction stream as a [`TraceSource`].
//!
//! Execution mirrors a server's request loop: the dispatcher picks a
//! handler under the Zipf popularity law, the handler runs its body
//! (loops bounded by per-branch trip counters, forward conditionals
//! resolved by per-branch biases) and calls into deeper layers; returns
//! unwind the explicit call stack. Data addresses are synthesized from
//! stack-, heap-stream- and global-access mixtures so the cache hierarchy
//! sees realistic traffic.
//!
//! The walker is deterministic for a given image and seed.

use super::image::{ProgramImage, SInstr, SKind};
use crate::record::{MemAccess, TraceInstr};
use crate::source::{SeekableSource, TraceSource};
use btbx_core::types::{BranchClass, BranchEvent};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const STACK_BASE: u64 = 0x7fff_f000_0000;
const HEAP_BASE: u64 = 0x6000_0000_0000;
const GLOBAL_BASE: u64 = 0x0000_2000_0000;
/// Heap stream working set (wraps around): 4 MB.
const HEAP_WINDOW: u64 = 4 << 20;
/// Global data working set: 16 MB.
const GLOBAL_WINDOW: u64 = 16 << 20;

/// An infinite instruction stream over a program image.
///
/// The image is behind an [`Arc`][std::sync::Arc], so cloning a walker —
/// the way parallel shard replays hand every worker its own stream — is
/// O(dynamic state), not O(image).
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    image: std::sync::Arc<ProgramImage>,
    name: String,
    seed: u64,
    rng: SmallRng,
    /// Current global instruction index.
    cur: u32,
    /// Return-address stack of global instruction indices.
    stack: Vec<u32>,
    /// Per-loop-branch trip counters.
    loop_counters: Vec<u16>,
    /// Last chosen callee per indirect-target table: indirect branches
    /// show strong receiver locality, so targets are sticky.
    table_last: Vec<u32>,
    heap_off: u64,
    emitted: u64,
}

/// A snapshot of the walker's full dynamic state: restoring it resumes
/// the exact instruction stream from the captured position, without
/// re-stepping the prefix. Size is O(image state) — a few KB for the
/// largest server images — never O(position).
///
/// Pinned by the `seek(k) == step()×k` property suite in
/// `crates/trace/tests/synth_seek.rs`.
#[derive(Debug, Clone)]
pub struct SynthCheckpoint {
    seed: u64,
    rng: SmallRng,
    cur: u32,
    stack: Vec<u32>,
    loop_counters: Vec<u16>,
    table_last: Vec<u32>,
    heap_off: u64,
    emitted: u64,
}

impl SynthCheckpoint {
    /// Position (instructions emitted) at which this snapshot was taken.
    pub fn position(&self) -> u64 {
        self.emitted
    }
}

impl SyntheticTrace {
    /// Start executing `image` at its dispatcher with the given seed.
    pub fn new(image: ProgramImage, name: impl Into<String>, seed: u64) -> Self {
        Self::over(std::sync::Arc::new(image), name, seed)
    }

    /// [`new`](Self::new) over an already-shared image: walkers for the
    /// same workload (parallel shards, repeated runs) share one copy.
    pub fn over(image: std::sync::Arc<ProgramImage>, name: impl Into<String>, seed: u64) -> Self {
        let entry = image.funcs[image.dispatcher as usize].entry;
        let slots = image.loop_slots as usize;
        let tables = image.tables.len();
        SyntheticTrace {
            image,
            name: name.into(),
            seed,
            rng: SmallRng::seed_from_u64(seed ^ 0x7ace_c0de),
            cur: entry,
            stack: Vec::with_capacity(64),
            loop_counters: vec![0; slots],
            table_last: vec![u32::MAX; tables],
            heap_off: 0,
            emitted: 0,
        }
    }

    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Reset the dynamic state to position 0 (the state `new` builds).
    fn rewind(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed ^ 0x7ace_c0de);
        self.cur = self.image.funcs[self.image.dispatcher as usize].entry;
        self.stack.clear();
        self.loop_counters.fill(0);
        self.table_last.fill(u32::MAX);
        self.heap_off = 0;
        self.emitted = 0;
    }

    /// Borrow the underlying image.
    pub fn image(&self) -> &ProgramImage {
        &self.image
    }

    fn data_address(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        if u < 0.55 {
            // Stack frame access: hot, tiny footprint.
            let frame = self.stack.len() as u64 * 512;
            STACK_BASE - frame - (self.rng.gen_range(0..48u64) * 8)
        } else if u < 0.85 {
            // Sequential heap stream with a bounded working set.
            self.heap_off = (self.heap_off + self.rng.gen_range(1..9) * 8) % HEAP_WINDOW;
            HEAP_BASE + self.heap_off
        } else {
            // Scattered global access.
            GLOBAL_BASE + (self.rng.gen_range(0..GLOBAL_WINDOW / 8)) * 8
        }
    }

    fn pick_from_table(&mut self, table: u32) -> u32 {
        let last = self.table_last[table as usize];
        // Receiver locality: repeat the previous target most of the time.
        if last != u32::MAX && self.rng.gen_bool(0.85) {
            return last;
        }
        let t = &self.image.tables[table as usize];
        let pick = if t.len() == 1 || self.rng.gen_bool(0.55) {
            t[0]
        } else {
            t[self.rng.gen_range(1..t.len())]
        };
        self.table_last[table as usize] = pick;
        pick
    }

    /// Decide a conditional branch outcome.
    fn cond_taken(&mut self, bias_permille: u16, loop_id: u32, trips: u16) -> bool {
        if loop_id == u32::MAX {
            self.rng.gen_range(0..1000) < bias_permille as u32
        } else {
            let c = &mut self.loop_counters[loop_id as usize];
            *c += 1;
            if *c >= trips {
                *c = 0;
                false // exit the loop
            } else {
                true // keep iterating
            }
        }
    }

    fn step(&mut self) -> TraceInstr {
        let idx = self.cur as usize;
        let SInstr { pc, size, kind } = self.image.instrs[idx];
        match kind {
            SKind::Alu => {
                self.cur += 1;
                TraceInstr::other(pc, size)
            }
            SKind::Load => {
                self.cur += 1;
                let a = self.data_address();
                TraceInstr::mem(pc, size, MemAccess::Load(a))
            }
            SKind::Store => {
                self.cur += 1;
                let a = self.data_address();
                TraceInstr::mem(pc, size, MemAccess::Store(a))
            }
            SKind::Cond {
                target_idx,
                bias_permille,
                loop_id,
                trips,
            } => {
                let taken = self.cond_taken(bias_permille, loop_id, trips);
                let target = self.image.instrs[target_idx as usize].pc;
                self.cur = if taken { target_idx } else { self.cur + 1 };
                TraceInstr::branch(
                    pc,
                    size,
                    BranchEvent {
                        pc,
                        target,
                        class: BranchClass::CondDirect,
                        taken,
                    },
                )
            }
            SKind::Jump { target_idx } => {
                let target = self.image.instrs[target_idx as usize].pc;
                self.cur = target_idx;
                TraceInstr::branch(
                    pc,
                    size,
                    BranchEvent::taken(pc, target, BranchClass::UncondDirect),
                )
            }
            SKind::Call { callee } => {
                self.stack.push(self.cur + 1);
                let entry = self.image.funcs[callee as usize].entry;
                self.cur = entry;
                let target = self.image.instrs[entry as usize].pc;
                TraceInstr::branch(
                    pc,
                    size,
                    BranchEvent::taken(pc, target, BranchClass::CallDirect),
                )
            }
            SKind::IndirectCall { table } => {
                let callee = self.pick_from_table(table);
                self.stack.push(self.cur + 1);
                let entry = self.image.funcs[callee as usize].entry;
                self.cur = entry;
                let target = self.image.instrs[entry as usize].pc;
                TraceInstr::branch(
                    pc,
                    size,
                    BranchEvent::taken(pc, target, BranchClass::CallIndirect),
                )
            }
            SKind::IndirectJump { table } => {
                let callee = self.pick_from_table(table);
                let entry = self.image.funcs[callee as usize].entry;
                self.cur = entry;
                let target = self.image.instrs[entry as usize].pc;
                TraceInstr::branch(
                    pc,
                    size,
                    BranchEvent::taken(pc, target, BranchClass::UncondIndirect),
                )
            }
            SKind::DispatchCall => {
                let rank = self.image.zipf.sample(&mut self.rng);
                let handler = self.image.handlers[rank];
                self.stack.push(self.cur + 1);
                let entry = self.image.funcs[handler as usize].entry;
                self.cur = entry;
                let target = self.image.instrs[entry as usize].pc;
                TraceInstr::branch(
                    pc,
                    size,
                    BranchEvent::taken(pc, target, BranchClass::CallIndirect),
                )
            }
            SKind::Return => {
                let ret_idx = self.stack.pop().unwrap_or_else(|| {
                    // Safety net: restart the request loop.
                    self.image.funcs[self.image.dispatcher as usize].entry
                });
                self.cur = ret_idx;
                let target = self.image.instrs[ret_idx as usize].pc;
                TraceInstr::branch(
                    pc,
                    size,
                    BranchEvent::taken(pc, target, BranchClass::Return),
                )
            }
        }
    }
}

impl TraceSource for SyntheticTrace {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        self.emitted += 1;
        Some(self.step())
    }

    fn source_name(&self) -> &str {
        &self.name
    }

    fn advance(&mut self, n: u64) -> u64 {
        // Same state transitions as `next_instr`, but the emitted record
        // is dead on arrival: the compiler elides its construction, so a
        // skip-step costs only the RNG draws and control-flow updates.
        for _ in 0..n {
            self.emitted += 1;
            let _ = self.step();
        }
        n
    }
}

impl SeekableSource for SyntheticTrace {
    type Checkpoint = SynthCheckpoint;

    fn position(&self) -> u64 {
        self.emitted
    }

    fn checkpoint(&self) -> SynthCheckpoint {
        SynthCheckpoint {
            seed: self.seed,
            rng: self.rng.clone(),
            cur: self.cur,
            stack: self.stack.clone(),
            loop_counters: self.loop_counters.clone(),
            table_last: self.table_last.clone(),
            heap_off: self.heap_off,
            emitted: self.emitted,
        }
    }

    fn restore(&mut self, cp: &SynthCheckpoint) {
        assert_eq!(
            cp.seed, self.seed,
            "checkpoint from a different walker (seed mismatch)"
        );
        assert_eq!(
            cp.loop_counters.len(),
            self.loop_counters.len(),
            "checkpoint from a different image (loop-slot mismatch)"
        );
        assert_eq!(
            cp.table_last.len(),
            self.table_last.len(),
            "checkpoint from a different image (table mismatch)"
        );
        self.rng = cp.rng.clone();
        self.cur = cp.cur;
        self.stack.clone_from(&cp.stack);
        self.loop_counters.clone_from(&cp.loop_counters);
        self.table_last.clone_from(&cp.table_last);
        self.heap_off = cp.heap_off;
        self.emitted = cp.emitted;
    }

    fn seek(&mut self, n: u64) -> u64 {
        if n < self.emitted {
            self.rewind();
        }
        self.advance(n - self.emitted);
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::image::SynthParams;
    use btbx_core::types::BranchClass;
    use std::collections::HashMap;

    fn walker(funcs: usize, seed: u64) -> SyntheticTrace {
        let image = ProgramImage::generate(&SynthParams::server(funcs), seed);
        SyntheticTrace::new(image, "test", seed)
    }

    #[test]
    fn stream_is_infinite_and_deterministic() {
        let a: Vec<_> = walker(50, 3).into_iter_instrs().take(5_000).collect();
        let b: Vec<_> = walker(50, 3).into_iter_instrs().take(5_000).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn control_flow_is_consistent() {
        // Every instruction's PC must equal the previous instruction's
        // next_pc: the emitted stream is a real path through the image.
        let mut w = walker(80, 9);
        let mut prev: Option<TraceInstr> = None;
        for _ in 0..50_000 {
            let i = w.next_instr().unwrap();
            if let Some(p) = prev {
                assert_eq!(
                    p.next_pc(),
                    i.pc,
                    "discontinuity after {:#x} ({:?})",
                    p.pc,
                    p.op
                );
            }
            prev = Some(i);
        }
    }

    #[test]
    fn calls_and_returns_balance() {
        let mut w = walker(100, 5);
        let mut calls = 0i64;
        let mut rets = 0i64;
        for _ in 0..200_000 {
            let i = w.next_instr().unwrap();
            if let Some(ev) = i.branch_event() {
                match ev.class {
                    BranchClass::CallDirect | BranchClass::CallIndirect => calls += 1,
                    BranchClass::Return => rets += 1,
                    _ => {}
                }
            }
        }
        let diff = (calls - rets).abs();
        assert!(calls > 1000, "too few calls: {calls}");
        // The imbalance is bounded by the live stack depth.
        assert!(diff <= 64, "calls {calls} vs rets {rets}");
    }

    #[test]
    fn returns_match_call_sites() {
        // RAS discipline: every return target is the instruction after
        // some call. Track an explicit shadow stack.
        let mut w = walker(60, 21);
        let mut shadow: Vec<u64> = Vec::new();
        for _ in 0..100_000 {
            let i = w.next_instr().unwrap();
            if let Some(ev) = i.branch_event() {
                match ev.class {
                    BranchClass::CallDirect | BranchClass::CallIndirect => {
                        shadow.push(i.pc + i.size as u64);
                    }
                    BranchClass::Return => {
                        if let Some(expect) = shadow.pop() {
                            assert_eq!(ev.target, expect, "return to wrong site");
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn loops_terminate() {
        // 1M instructions must visit the dispatcher repeatedly (no stuck
        // loops): count dispatch calls.
        let mut w = walker(40, 13);
        let mut dispatches = 0u32;
        let dpc = {
            let d = w.image().funcs[w.image().dispatcher as usize];
            w.image().instrs[(d.entry + 2) as usize].pc
        };
        for _ in 0..1_000_000 {
            let i = w.next_instr().unwrap();
            if i.pc == dpc && i.branch_event().is_some() {
                dispatches += 1;
            }
        }
        assert!(dispatches > 100, "dispatcher starved: {dispatches}");
    }

    #[test]
    fn branch_kind_mix_is_plausible() {
        let mut w = walker(300, 17);
        let mut kinds: HashMap<&'static str, u64> = HashMap::new();
        let mut branches = 0u64;
        let total = 400_000;
        for _ in 0..total {
            let i = w.next_instr().unwrap();
            if let Some(ev) = i.branch_event() {
                branches += 1;
                let k = match ev.class {
                    BranchClass::CondDirect => "cond",
                    BranchClass::UncondDirect => "jump",
                    BranchClass::CallDirect | BranchClass::CallIndirect => "call",
                    BranchClass::UncondIndirect => "ijump",
                    BranchClass::Return => "ret",
                };
                *kinds.entry(k).or_default() += 1;
            }
        }
        let frac = |k: &str| *kinds.get(k).unwrap_or(&0) as f64 / branches as f64;
        // Returns near the paper's ~20 % (Section V-A); conds dominate.
        assert!(
            (0.12..0.30).contains(&frac("ret")),
            "ret fraction {}",
            frac("ret")
        );
        assert!(frac("cond") > 0.35, "cond fraction {}", frac("cond"));
        // Branch density sane (~1 branch per 4–8 instructions).
        let density = branches as f64 / total as f64;
        assert!((0.10..0.30).contains(&density), "density {density}");
    }

    /// Calibration probe: prints the dynamic branch mix and offset CDF
    /// anchors so the generator constants can be tuned against Figure 4.
    /// Run with `cargo test -p btbx-trace -- --ignored --nocapture calibration`.
    #[test]
    #[ignore = "manual calibration probe"]
    fn calibration_probe() {
        use crate::stats::TraceStats;
        for (label, funcs, client) in [("server", 800usize, false), ("client", 120, true)] {
            let params = if client {
                SynthParams::client(funcs)
            } else {
                SynthParams::server(funcs)
            };
            // Average over several seeds: single-workload mixes are noisy
            // because Zipf concentrates execution in a few handlers.
            let mut agg = TraceStats::collect(
                &mut SyntheticTrace::new(ProgramImage::generate(&params, 99), "c", 99),
                1_000_000,
                params.arch,
            );
            for seed in [7u64, 13, 29, 51] {
                let image = ProgramImage::generate(&params, seed);
                let mut w = SyntheticTrace::new(image, "cal", seed);
                let s = TraceStats::collect(&mut w, 1_000_000, params.arch);
                agg.instructions += s.instructions;
                agg.branches += s.branches;
                agg.taken += s.taken;
                for i in 0..6 {
                    agg.per_class[i] += s.per_class[i];
                }
                for i in 0..agg.offset_hist.len() {
                    agg.offset_hist[i] += s.offset_hist[i];
                }
            }
            let stats = agg;
            println!("--- {label} ---");
            println!("density {:.3}", stats.branch_density());
            for (i, c) in btbx_core::types::BranchClass::ALL.iter().enumerate() {
                println!(
                    "  {c}: {:.3}",
                    stats.per_class[i] as f64 / stats.branches as f64
                );
            }
            for bits in [0u32, 4, 5, 6, 7, 9, 10, 11, 19, 25] {
                println!("  cdf({bits}) = {:.3}", stats.offset_cdf(bits));
            }
            println!(
                "  taken-WS {}  blocks {}",
                stats.taken_branch_working_set, stats.code_blocks
            );
            // Per-class offset CDF to localize calibration error.
            let image = ProgramImage::generate(&params, 99);
            let mut w = SyntheticTrace::new(image, "cal2", 99);
            use btbx_core::offset::stored_offset_len;
            let mut hist: HashMap<&'static str, (u64, Vec<u64>)> = HashMap::new();
            for _ in 0..2_000_000u64 {
                let i = w.next_instr().unwrap();
                if let Some(ev) = i.branch_event() {
                    let k = match ev.class {
                        BranchClass::CondDirect => "cond",
                        BranchClass::UncondDirect => "jump",
                        BranchClass::CallDirect | BranchClass::CallIndirect => "call",
                        BranchClass::UncondIndirect => "ijump",
                        BranchClass::Return => continue,
                    };
                    let bits = stored_offset_len(ev.pc, ev.target, params.arch).min(48) as usize;
                    let e = hist.entry(k).or_insert_with(|| (0, vec![0u64; 49]));
                    e.0 += 1;
                    e.1[bits] += 1;
                }
            }
            for (k, (n, h)) in &hist {
                let cdf = |b: usize| h[..=b].iter().sum::<u64>() as f64 / *n as f64;
                println!(
                    "  {k}: n={n} cdf4={:.2} cdf7={:.2} cdf11={:.2} cdf19={:.2} cdf25={:.2}",
                    cdf(4),
                    cdf(7),
                    cdf(11),
                    cdf(19),
                    cdf(25)
                );
            }
        }
    }

    #[test]
    fn advance_matches_stepping() {
        let mut stepped = walker(60, 11);
        for _ in 0..12_345 {
            stepped.next_instr();
        }
        let mut advanced = walker(60, 11);
        assert_eq!(advanced.advance(12_345), 12_345);
        assert_eq!(advanced.position(), stepped.position());
        let a: Vec<_> = stepped.into_iter_instrs().take(2_000).collect();
        let b: Vec<_> = advanced.into_iter_instrs().take(2_000).collect();
        assert_eq!(a, b, "advance must be stream-equivalent to stepping");
    }

    #[test]
    fn checkpoint_restore_resumes_the_exact_stream() {
        let mut w = walker(70, 19);
        w.advance(5_000);
        let cp = w.checkpoint();
        assert_eq!(cp.position(), 5_000);
        let tail_a: Vec<_> = (0..3_000).map(|_| w.next_instr().unwrap()).collect();
        w.restore(&cp);
        assert_eq!(w.position(), 5_000);
        let tail_b: Vec<_> = (0..3_000).map(|_| w.next_instr().unwrap()).collect();
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn restore_works_across_instances() {
        let mut a = walker(50, 29);
        a.advance(7_777);
        let cp = a.checkpoint();
        let mut b = walker(50, 29);
        b.restore(&cp);
        for _ in 0..2_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn seek_rewinds_and_fast_forwards() {
        let reference: Vec<_> = walker(40, 37).into_iter_instrs().take(9_000).collect();
        let mut w = walker(40, 37);
        w.seek(6_000);
        assert_eq!(w.next_instr().unwrap(), reference[6_000]);
        w.seek(100); // behind the cursor: must rewind
        assert_eq!(w.position(), 100);
        assert_eq!(w.next_instr().unwrap(), reference[100]);
    }

    #[test]
    #[should_panic(expected = "different")]
    fn foreign_checkpoint_is_rejected() {
        let cp = walker(50, 1).checkpoint();
        walker(50, 2).restore(&cp);
    }

    #[test]
    fn data_addresses_are_canonical() {
        let mut w = walker(50, 23);
        for _ in 0..50_000 {
            let i = w.next_instr().unwrap();
            if let crate::record::Op::Mem(m) = i.op {
                assert!(m.address() < 1u64 << 48);
                assert!(m.address() > 0);
            }
        }
    }

    #[test]
    fn stack_depth_stays_bounded() {
        let mut w = walker(200, 31);
        for _ in 0..300_000 {
            w.next_instr();
            assert!(w.stack.len() <= 16, "runaway stack depth");
        }
    }
}
