//! Synthetic workload generation (the substitution for the proprietary
//! IPC-1 / CVP-1 traces).
//!
//! Split into three stages:
//!
//! 1. [`profile`] — the calibrated statistical profiles: per-branch-kind
//!    offset-length distributions (paper Figures 4/12/13), the branch-kind
//!    mix, x86 instruction lengths, Zipf popularity;
//! 2. [`image`] — building a static [`ProgramImage`]: function sizes and
//!    layout across library regions, layered call graph, intra-function
//!    control flow;
//! 3. [`exec`] — the [`SyntheticTrace`] walker that executes the image and
//!    implements [`crate::TraceSource`].
//!
//! ```
//! use btbx_trace::synth::{ProgramImage, SynthParams, SyntheticTrace};
//! use btbx_trace::TraceSource;
//!
//! let image = ProgramImage::generate(&SynthParams::server(200), 42);
//! let mut trace = SyntheticTrace::new(image, "demo", 42);
//! let first = trace.next_instr().unwrap();
//! assert!(first.pc > 0);
//! ```

pub mod exec;
pub mod image;
pub mod profile;

pub use exec::{SynthCheckpoint, SyntheticTrace};
pub use image::{FuncMeta, ProgramImage, SInstr, SKind, SynthParams};
pub use profile::{BranchKindMix, OffsetLengthDist, OffsetProfile, Zipf};
