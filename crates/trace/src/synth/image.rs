//! Static program-image generation.
//!
//! A [`ProgramImage`] is a synthetic code layout: functions with realistic
//! size distributions packed into a few library-like address regions, each
//! function a straight-line body with conditional branches (intra-function
//! targets, loop back-edges), unconditional jumps, direct/indirect calls
//! along a layered (acyclic) call graph, indirect tail-call dispatch, and
//! a final return. A small dispatcher function models the server's request
//! loop, invoking handler functions under a Zipf popularity law.
//!
//! Branch *targets* are chosen distance-first: each branch samples a
//! stored-offset length from its kind's [`OffsetLengthDist`] and the
//! builder finds a concrete target at (approximately) that byte distance.
//! This is what calibrates the trace's offset distribution to the paper's
//! Figure 4 / 12 / 13.

use super::profile::{sample_geometric, sample_x86_len, BranchKindMix, OffsetProfile, Zipf};
use btbx_core::types::Arch;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Maximum call-graph depth (layers); calls always go to a strictly
/// deeper layer, so recursion is impossible and stack depth is bounded.
pub const MAX_LAYERS: usize = 7;

/// Tuning knobs for the synthetic workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthParams {
    /// Instruction-set flavour (drives alignment and instruction sizes).
    pub arch: Arch,
    /// Number of generated functions (excluding the dispatcher). Controls
    /// the instruction and branch working-set size: ~100 for client-like,
    /// thousands for server-like workloads.
    pub num_funcs: usize,
    /// Mean instruction count of small/medium/large functions and their
    /// mix fractions (small, medium; large is the remainder).
    pub func_size_means: [f64; 3],
    /// Fractions of functions that are small and medium.
    pub func_size_mix: [f64; 2],
    /// Number of address regions code is mapped into (1–4; the app image
    /// plus shared libraries). PDede's Region-BTB holds 4 entries.
    pub regions: usize,
    /// Zipf exponent of handler popularity (higher ⇒ hotter head).
    pub zipf_s: f64,
    /// Fraction of instruction slots that are branches (~0.17 for typical
    /// server code).
    pub branch_density: f64,
    /// Branch-kind mix over branch slots.
    pub kind_mix: BranchKindMix,
    /// Fraction of conditional branches that are loop back-edges.
    pub loop_fraction: f64,
    /// Mean loop trip count.
    pub mean_loop_trips: f64,
    /// Fraction of branch slots converted into early returns.
    pub early_return_fraction: f64,
    /// Probability a non-branch slot is a load / store.
    pub load_fraction: f64,
    /// Probability a non-branch slot is a store.
    pub store_fraction: f64,
    /// Code spread: probability of a large inter-function gap, making the
    /// image span many pages (drives Page-BTB pressure in PDede).
    pub big_gap_fraction: f64,
    /// Offset-length profiles per branch kind.
    #[serde(skip, default = "OffsetProfile::server_default")]
    pub offsets: OffsetProfile,
}

impl PartialEq for OffsetProfile {
    fn eq(&self, _other: &Self) -> bool {
        true // profiles are calibration constants; treat as equal
    }
}

impl SynthParams {
    /// Server-like defaults (large footprint, deep software stack).
    pub fn server(num_funcs: usize) -> Self {
        SynthParams {
            arch: Arch::Arm64,
            num_funcs,
            func_size_means: [26.0, 120.0, 700.0],
            func_size_mix: [0.45, 0.38],
            regions: 3,
            zipf_s: 0.55,
            branch_density: 0.17,
            kind_mix: BranchKindMix::server_default(),
            loop_fraction: 0.10,
            mean_loop_trips: 3.5,
            early_return_fraction: 0.08,
            load_fraction: 0.27,
            store_fraction: 0.11,
            big_gap_fraction: 0.05,
            offsets: OffsetProfile::server_default(),
        }
    }

    /// Client-like defaults (small footprint, shallow stacks, hotter
    /// loops).
    pub fn client(num_funcs: usize) -> Self {
        SynthParams {
            zipf_s: 1.05,
            loop_fraction: 0.22,
            mean_loop_trips: 9.0,
            big_gap_fraction: 0.02,
            regions: 2,
            ..Self::server(num_funcs)
        }
    }
}

/// One static instruction of the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SInstr {
    /// Virtual address.
    pub pc: u64,
    /// Size in bytes.
    pub size: u8,
    /// Kind and operands.
    pub kind: SKind,
}

/// Static instruction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SKind {
    /// Non-branch, non-memory.
    Alu,
    /// Data load (address synthesized at execution time).
    Load,
    /// Data store.
    Store,
    /// Conditional direct branch.
    Cond {
        /// Global index of the target instruction.
        target_idx: u32,
        /// Taken probability in permille (Bernoulli branches).
        bias_permille: u16,
        /// Loop-counter slot, or `u32::MAX` for Bernoulli behaviour.
        loop_id: u32,
        /// Trip count for loop branches (taken `trips - 1` times, then
        /// falls through).
        trips: u16,
    },
    /// Unconditional direct jump (intra-function).
    Jump {
        /// Global index of the target instruction.
        target_idx: u32,
    },
    /// Direct call.
    Call {
        /// Callee function index.
        callee: u32,
    },
    /// Indirect call through a target table.
    IndirectCall {
        /// Index into [`ProgramImage::tables`].
        table: u32,
    },
    /// Indirect tail-call dispatch (no return push).
    IndirectJump {
        /// Index into [`ProgramImage::tables`].
        table: u32,
    },
    /// The dispatcher's Zipf-weighted handler call.
    DispatchCall,
    /// Function return.
    Return,
}

/// Per-function metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncMeta {
    /// Global index of the entry instruction.
    pub entry: u32,
    /// Global index one past the return instruction.
    pub end: u32,
    /// Call-graph layer (0 = handler; calls go to strictly deeper layers).
    pub layer: u8,
    /// Entry virtual address.
    pub base: u64,
}

/// A fully generated static program image.
#[derive(Debug, Clone)]
pub struct ProgramImage {
    /// Instruction-set flavour.
    pub arch: Arch,
    /// All instructions, functions concatenated.
    pub instrs: Vec<SInstr>,
    /// Function table; the dispatcher is the last entry.
    pub funcs: Vec<FuncMeta>,
    /// Indirect-call / tail-call target tables (function indices).
    pub tables: Vec<Vec<u32>>,
    /// Handler function indices in Zipf popularity order.
    pub handlers: Vec<u32>,
    /// Zipf sampler over `handlers`.
    pub zipf: Zipf,
    /// Number of loop-counter slots used by `Cond` instructions.
    pub loop_slots: u32,
    /// Dispatcher function index.
    pub dispatcher: u32,
}

impl ProgramImage {
    /// Generate an image from parameters and a seed. Deterministic:
    /// identical inputs yield identical images.
    pub fn generate(params: &SynthParams, seed: u64) -> Self {
        Builder::new(params.clone(), seed).build()
    }

    /// Total static code footprint in bytes (max PC − min PC is
    /// meaningless across regions; this sums per-instruction sizes).
    pub fn code_bytes(&self) -> u64 {
        self.instrs.iter().map(|i| i.size as u64).sum()
    }

    /// Number of static branch instructions.
    pub fn static_branches(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| !matches!(i.kind, SKind::Alu | SKind::Load | SKind::Store))
            .count()
    }

    /// Function index containing the given global instruction index.
    pub fn func_of(&self, idx: u32) -> u32 {
        match self.funcs.binary_search_by(|f| f.entry.cmp(&idx)) {
            Ok(i) => i as u32,
            Err(i) => (i - 1) as u32,
        }
    }
}

struct Builder {
    p: SynthParams,
    rng: SmallRng,
}

/// Intra-function branch slot kinds for [`Builder::intra_hop`].
#[derive(Debug, Clone, Copy)]
enum BranchSlot {
    Cond,
    Jump,
}

struct Skeleton {
    /// Per function: per-instruction sizes.
    sizes: Vec<Vec<u8>>,
    layers: Vec<u8>,
    bases: Vec<u64>,
    /// (base, func index), sorted by base — for distance-targeted callee
    /// search.
    by_base: Vec<(u64, u32)>,
}

/// Region base addresses (< 2^48). Region numbers (bits 47..28) differ, so
/// cross-region branches exceed 25 stored bits and exercise BTB-XC.
const REGION_BASES: [u64; 4] = [
    0x0000_4000_0000, // application image
    0x7f00_0000_0000, // shared library region A
    0x7f80_0000_0000, // shared library region B
    0x5500_0000_0000, // JIT-like region
];

impl Builder {
    fn new(p: SynthParams, seed: u64) -> Self {
        Builder {
            rng: SmallRng::seed_from_u64(seed ^ 0x5eed_b16b_00b5),
            p,
        }
    }

    fn sample_func_len(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        let mean = if u < self.p.func_size_mix[0] {
            self.p.func_size_means[0]
        } else if u < self.p.func_size_mix[0] + self.p.func_size_mix[1] {
            self.p.func_size_means[1]
        } else {
            self.p.func_size_means[2]
        };
        sample_geometric(&mut self.rng, mean, 4000).max(6) as usize
    }

    fn sample_layer(&mut self) -> u8 {
        // Layer weights: handlers (0) are common, utility layers thin out.
        const W: [f64; MAX_LAYERS] = [0.34, 0.24, 0.16, 0.11, 0.07, 0.05, 0.03];
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (l, w) in W.iter().enumerate() {
            acc += w;
            if u <= acc {
                return l as u8;
            }
        }
        (MAX_LAYERS - 1) as u8
    }

    fn sample_gap(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        if u < self.p.big_gap_fraction {
            // Large gap: 64 KB – 512 KB, spreads code across many pages.
            self.rng.gen_range(1u64 << 16..1u64 << 19)
        } else if u < self.p.big_gap_fraction + 0.35 {
            // Medium: 2 KB – 16 KB. A large share of functions start on
            // fresh pages, so branch targets touch many distinct pages —
            // the Page-BTB pressure the paper attributes to server
            // instruction footprints (Section IV-B).
            self.rng.gen_range(1u64 << 11..1u64 << 14)
        } else {
            // Tight packing with alignment padding.
            self.rng.gen_range(0..48)
        }
    }

    fn instr_size(&mut self) -> u8 {
        match self.p.arch {
            Arch::Arm64 => 4,
            Arch::X86 => sample_x86_len(&mut self.rng),
        }
    }

    fn build_skeleton(&mut self) -> Skeleton {
        let n = self.p.num_funcs;
        let mut sizes = Vec::with_capacity(n + 1);
        let mut layers = Vec::with_capacity(n + 1);
        for _ in 0..n {
            let len = self.sample_func_len();
            let s: Vec<u8> = (0..len).map(|_| self.instr_size()).collect();
            sizes.push(s);
            layers.push(self.sample_layer());
        }
        // Dispatcher: 8 fixed instructions, layer is a marker value.
        sizes.push((0..8).map(|_| self.instr_size()).collect());
        layers.push(u8::MAX);

        // Region assignment: app-heavy, libraries get the rest.
        let regions = self.p.regions.clamp(1, REGION_BASES.len());
        let mut region_of = vec![0usize; n + 1];
        for r in region_of.iter_mut().take(n) {
            let u: f64 = self.rng.gen();
            *r = if u < 0.60 || regions == 1 {
                0
            } else {
                1 + (self.rng.gen_range(0..regions.max(2) - 1))
            };
        }
        region_of[n] = 0; // dispatcher lives in the app image

        // Layout: pack each region in function order with sampled gaps.
        let mut cursors: Vec<u64> = (0..regions).map(|r| REGION_BASES[r]).collect();
        let mut bases = vec![0u64; n + 1];
        for f in 0..=n {
            let r = region_of[f];
            let cursor = &mut cursors[r];
            // 16-byte alignment like a real linker.
            *cursor = (*cursor + 15) & !15;
            bases[f] = *cursor;
            let bytes: u64 = sizes[f].iter().map(|&b| b as u64).sum();
            *cursor += bytes + self.sample_gap();
        }

        let mut by_base: Vec<(u64, u32)> = (0..n as u32).map(|f| (bases[f as usize], f)).collect();
        by_base.sort_unstable();

        Skeleton {
            sizes,
            layers,
            bases,
            by_base,
        }
    }

    /// Find a callee function at approximately `distance` bytes from
    /// `from_pc`, restricted to layers strictly deeper than `layer`.
    ///
    /// Candidates farther than 2^28 bytes (a cross-region hop, > 25 stored
    /// bits) are only accepted when the sampled distance itself crossed
    /// that threshold: the > 25-bit population must stay the deliberate
    /// ~1 % tail, not an artifact of sparse layouts.
    fn find_callee(
        &mut self,
        sk: &Skeleton,
        from_pc: u64,
        distance: u64,
        layer: u8,
    ) -> Option<u32> {
        if sk.by_base.is_empty() {
            return None;
        }
        let max_dist = if distance >= (1 << 28) {
            u64::MAX
        } else {
            1u64 << 28
        };
        let forward = self.rng.gen_bool(0.5);
        let desired = if forward {
            from_pc.saturating_add(distance)
        } else {
            from_pc.saturating_sub(distance)
        };
        let start = sk.by_base.partition_point(|&(base, _)| base < desired);
        // Scan outward from the insertion point for the nearest deeper-
        // layer function; remember an out-of-range fallback separately.
        let mut best: Option<(u64, u32)> = None;
        let mut fallback: Option<(u64, u32)> = None;
        let lim = 128usize;
        let n = sk.by_base.len();
        for step in 0..lim {
            let mut consider = |i: usize| {
                let (base, f) = sk.by_base[i];
                if sk.layers[f as usize] > layer && sk.layers[f as usize] != u8::MAX {
                    let err = base.abs_diff(desired);
                    if base.abs_diff(from_pc) <= max_dist {
                        if best.is_none_or(|(e, _)| err < e) {
                            best = Some((err, f));
                        }
                    } else if fallback.is_none_or(|(e, _)| err < e) {
                        fallback = Some((err, f));
                    }
                }
            };
            if start + step < n {
                consider(start + step);
            }
            if step > 0 && start >= step {
                consider(start - step);
            }
            if best.is_some() && step > 8 {
                break;
            }
        }
        if best.is_none() {
            // Nothing within range near the desired point: take the
            // nearest in-range candidate around the call site itself.
            let home = sk.by_base.partition_point(|&(base, _)| base < from_pc);
            for step in 0..lim {
                let mut consider = |i: usize| {
                    let (base, f) = sk.by_base[i];
                    if sk.layers[f as usize] > layer
                        && sk.layers[f as usize] != u8::MAX
                        && base.abs_diff(from_pc) <= max_dist
                    {
                        let err = base.abs_diff(from_pc);
                        if best.is_none_or(|(e, _)| err < e) {
                            best = Some((err, f));
                        }
                    }
                };
                if home + step < n {
                    consider(home + step);
                }
                if step > 0 && home >= step {
                    consider(home - step);
                }
                if best.is_some() && step > 8 {
                    break;
                }
            }
        }
        best.or(fallback).map(|(_, f)| f)
    }

    fn build(mut self) -> ProgramImage {
        let sk = self.build_skeleton();
        let n = self.p.num_funcs;

        // Per-function PC arrays (prefix sums of sizes).
        let mut pcs: Vec<Vec<u64>> = Vec::with_capacity(n + 1);
        for f in 0..=n {
            let mut pc = sk.bases[f];
            let mut v = Vec::with_capacity(sk.sizes[f].len());
            for &s in &sk.sizes[f] {
                v.push(pc);
                pc += s as u64;
            }
            pcs.push(v);
        }

        let mut instrs: Vec<SInstr> = Vec::new();
        let mut funcs: Vec<FuncMeta> = Vec::with_capacity(n + 1);
        let mut tables: Vec<Vec<u32>> = Vec::new();
        let mut loop_slots = 0u32;

        #[allow(clippy::needless_range_loop)]
        for f in 0..n {
            let entry = instrs.len() as u32;
            let len = sk.sizes[f].len();
            let layer = sk.layers[f];
            for i in 0..len {
                let pc = pcs[f][i];
                let size = sk.sizes[f][i];
                let kind = if i == len - 1 {
                    SKind::Return
                } else if self.rng.gen_bool(self.p.branch_density) && i + 2 < len {
                    self.branch_kind(
                        &sk,
                        f,
                        i,
                        entry,
                        len,
                        pc,
                        layer,
                        &mut tables,
                        &mut loop_slots,
                    )
                } else {
                    let u: f64 = self.rng.gen();
                    if u < self.p.load_fraction {
                        SKind::Load
                    } else if u < self.p.load_fraction + self.p.store_fraction {
                        SKind::Store
                    } else {
                        SKind::Alu
                    }
                };
                instrs.push(SInstr { pc, size, kind });
            }
            funcs.push(FuncMeta {
                entry,
                end: instrs.len() as u32,
                layer,
                base: sk.bases[f],
            });
        }

        // Dispatcher: Load, Alu, DispatchCall, Alu, Store, Alu,
        // always-taken back-edge, Return (unreachable).
        let entry = instrs.len() as u32;
        let dk = [
            SKind::Load,
            SKind::Alu,
            SKind::DispatchCall,
            SKind::Alu,
            SKind::Store,
            SKind::Alu,
            SKind::Cond {
                target_idx: entry,
                bias_permille: 1000,
                loop_id: u32::MAX,
                trips: 0,
            },
            SKind::Return,
        ];
        for (i, kind) in dk.into_iter().enumerate() {
            instrs.push(SInstr {
                pc: pcs[n][i],
                size: sk.sizes[n][i],
                kind,
            });
        }
        funcs.push(FuncMeta {
            entry,
            end: instrs.len() as u32,
            layer: u8::MAX,
            base: sk.bases[n],
        });

        // Handlers: layer-0 functions, shuffled so popularity is not
        // correlated with address; fall back to every function if layering
        // left none at layer 0.
        let mut handlers: Vec<u32> = (0..n as u32)
            .filter(|&f| sk.layers[f as usize] == 0)
            .collect();
        if handlers.is_empty() {
            handlers = (0..n as u32).collect();
        }
        handlers.shuffle(&mut self.rng);
        let zipf = Zipf::new(handlers.len(), self.p.zipf_s);

        ProgramImage {
            arch: self.p.arch,
            instrs,
            funcs,
            tables,
            handlers,
            zipf,
            loop_slots,
            dispatcher: n as u32,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn branch_kind(
        &mut self,
        sk: &Skeleton,
        _f: usize,
        i: usize,
        entry: u32,
        len: usize,
        pc: u64,
        layer: u8,
        tables: &mut Vec<Vec<u32>>,
        loop_slots: &mut u32,
    ) -> SKind {
        if self.rng.gen_bool(self.p.early_return_fraction) {
            return SKind::Return;
        }
        let mix = self.p.kind_mix;
        let u: f64 = self.rng.gen_range(0.0..mix.total());
        if u < mix.cond {
            // Conditional: backward loop or forward skip. Loop back-edges
            // only appear once the body is deep enough to host a 5-bit-ish
            // hop (hot loops live in non-trivial bodies); the probability
            // is scaled up to keep the overall dynamic loop share.
            let backward = i >= 20 && self.rng.gen_bool((self.p.loop_fraction * 2.2).min(1.0));
            if backward {
                let hop = self.intra_hop(BranchSlot::Cond, i).max(12.min(i - 1));
                let target_local = i - hop;
                let trips = sample_geometric(&mut self.rng, self.p.mean_loop_trips, 48) as u16 + 1;
                let loop_id = *loop_slots;
                *loop_slots += 1;
                SKind::Cond {
                    target_idx: entry + target_local as u32,
                    bias_permille: 0, // unused for loop branches
                    loop_id,
                    trips,
                }
            } else {
                self.forward_cond(entry, i, len)
            }
        } else if u < mix.cond + mix.jump {
            let hop = self.intra_hop(BranchSlot::Jump, len - 1 - i);
            SKind::Jump {
                target_idx: entry + (i + hop) as u32,
            }
        } else if u < mix.cond + mix.jump + mix.call {
            // Clamp to the region span so only deliberately sampled tails
            // cross regions (the paper's >25-bit branches are ~1 %).
            let dist = self
                .p
                .offsets
                .call
                .sample_distance(&mut self.rng)
                .min(1 << 27);
            match self.find_callee(sk, pc, dist, layer) {
                Some(callee) => SKind::Call { callee },
                // Leaf layer: degrade to a conditional (leaf code is
                // branchy, not jumpy; this also keeps the dynamic kind mix
                // stable when a leaf becomes hot).
                None => self.forward_cond(entry, i, len),
            }
        } else if u < mix.cond + mix.jump + mix.call + mix.icall {
            match self.make_table(sk, pc, layer, 2, 6) {
                Some(t) => {
                    tables.push(t);
                    SKind::IndirectCall {
                        table: (tables.len() - 1) as u32,
                    }
                }
                None => self.forward_cond(entry, i, len),
            }
        } else {
            match self.make_table(sk, pc, layer, 2, 8) {
                Some(t) => {
                    tables.push(t);
                    SKind::IndirectJump {
                        table: (tables.len() - 1) as u32,
                    }
                }
                None => self.forward_cond(entry, i, len),
            }
        }
    }

    /// A forward conditional with realistic bias: most conditionals are
    /// strongly biased (real direction predictors reach 95 %+ accuracy);
    /// a small fraction are genuinely data-dependent.
    fn forward_cond(&mut self, entry: u32, i: usize, len: usize) -> SKind {
        let hop = self.intra_hop(BranchSlot::Cond, len - 1 - i);
        let u: f64 = self.rng.gen();
        let bias = if u < 0.42 {
            // Guard/loop-like: almost always taken.
            self.rng.gen_range(935..=997)
        } else if u < 0.92 {
            // Error/slow-path skip: almost never taken.
            self.rng.gen_range(3..=90)
        } else {
            // Data-dependent: hard to predict.
            self.rng.gen_range(300..=700)
        };
        SKind::Cond {
            target_idx: entry + (i + hop) as u32,
            bias_permille: bias,
            loop_id: u32::MAX,
            trips: 0,
        }
    }

    /// Pick an intra-function hop (in instructions) toward a target at a
    /// distance sampled from the kind's offset profile, *truncated* to the
    /// `avail` instructions the function can host: over-long samples are
    /// re-drawn in the achievable window so small functions do not
    /// collapse every branch to a 1–4-bit offset.
    fn intra_hop(&mut self, slot: BranchSlot, avail: usize) -> usize {
        if avail <= 2 {
            return avail.max(1);
        }
        let avg_size = match self.p.arch {
            Arch::Arm64 => 4.0,
            Arch::X86 => 4.1,
        };
        let dist = match slot {
            BranchSlot::Cond => self.p.offsets.cond.sample_distance(&mut self.rng),
            BranchSlot::Jump => self.p.offsets.jump.sample_distance(&mut self.rng),
        };
        let hop = (dist as f64 / avg_size).round() as usize;
        if hop <= avail {
            return hop.max(2).min(avail);
        }
        // The sampled distance exceeds what this function can host. Real
        // code in that situation spans "as far as the function allows"
        // (skip-to-exit, loop-over-body), so redraw in the top half of the
        // achievable range rather than collapsing to a short hop — this is
        // what keeps small functions from flooding the 1–4-bit buckets.
        let lo = (avail / 2).max(2);
        self.rng.gen_range(lo..=avail)
    }

    fn make_table(
        &mut self,
        sk: &Skeleton,
        pc: u64,
        layer: u8,
        min: usize,
        max: usize,
    ) -> Option<Vec<u32>> {
        let k = self.rng.gen_range(min..=max);
        let mut t = Vec::with_capacity(k);
        for _ in 0..k {
            let dist = self.p.offsets.ijump.sample_distance(&mut self.rng);
            t.push(self.find_callee(sk, pc, dist, layer)?);
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_image() -> ProgramImage {
        ProgramImage::generate(&SynthParams::server(80), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ProgramImage::generate(&SynthParams::server(60), 7);
        let b = ProgramImage::generate(&SynthParams::server(60), 7);
        assert_eq!(a.instrs, b.instrs);
        assert_eq!(a.funcs, b.funcs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramImage::generate(&SynthParams::server(60), 7);
        let b = ProgramImage::generate(&SynthParams::server(60), 8);
        assert_ne!(a.instrs, b.instrs);
    }

    #[test]
    fn every_function_ends_with_return() {
        let img = small_image();
        for f in &img.funcs {
            assert_eq!(
                img.instrs[(f.end - 1) as usize].kind,
                SKind::Return,
                "function at {:#x}",
                f.base
            );
        }
    }

    #[test]
    fn pcs_are_monotone_within_functions() {
        let img = small_image();
        for f in &img.funcs {
            let mut prev = None;
            for i in f.entry..f.end {
                let pc = img.instrs[i as usize].pc;
                if let Some(p) = prev {
                    assert!(pc > p);
                }
                prev = Some(pc);
            }
        }
    }

    #[test]
    fn all_pcs_fit_48_bit_va() {
        let img = small_image();
        for i in &img.instrs {
            assert!(i.pc < 1u64 << 48);
        }
    }

    #[test]
    fn cond_targets_stay_in_function() {
        let img = small_image();
        for f in &img.funcs {
            for i in f.entry..f.end {
                if let SKind::Cond { target_idx, .. } | SKind::Jump { target_idx } =
                    img.instrs[i as usize].kind
                {
                    assert!(
                        (f.entry..f.end).contains(&target_idx),
                        "target escapes function"
                    );
                }
            }
        }
    }

    #[test]
    fn calls_go_to_deeper_layers() {
        let img = small_image();
        for f in &img.funcs {
            if f.layer == u8::MAX {
                continue;
            }
            for i in f.entry..f.end {
                if let SKind::Call { callee } = img.instrs[i as usize].kind {
                    assert!(
                        img.funcs[callee as usize].layer > f.layer,
                        "call edge violates layering"
                    );
                }
            }
        }
    }

    #[test]
    fn tables_reference_deeper_layers() {
        let img = small_image();
        for f in &img.funcs {
            if f.layer == u8::MAX {
                continue;
            }
            for i in f.entry..f.end {
                let table = match img.instrs[i as usize].kind {
                    SKind::IndirectCall { table } | SKind::IndirectJump { table } => table,
                    _ => continue,
                };
                for &callee in &img.tables[table as usize] {
                    assert!(img.funcs[callee as usize].layer > f.layer);
                }
            }
        }
    }

    #[test]
    fn dispatcher_is_last_function() {
        let img = small_image();
        let d = img.funcs[img.dispatcher as usize];
        assert_eq!(d.layer, u8::MAX);
        assert!(matches!(
            img.instrs[(d.entry + 2) as usize].kind,
            SKind::DispatchCall
        ));
    }

    #[test]
    fn handlers_are_layer_zero() {
        let img = small_image();
        for &h in &img.handlers {
            assert_eq!(img.funcs[h as usize].layer, 0);
        }
        assert!(!img.handlers.is_empty());
    }

    #[test]
    fn server_footprint_scales_with_funcs() {
        let small = ProgramImage::generate(&SynthParams::server(50), 3);
        let large = ProgramImage::generate(&SynthParams::server(500), 3);
        assert!(large.code_bytes() > 4 * small.code_bytes());
        assert!(large.static_branches() > 4 * small.static_branches());
    }

    #[test]
    fn func_of_maps_indices_back() {
        let img = small_image();
        for (fi, f) in img.funcs.iter().enumerate() {
            assert_eq!(img.func_of(f.entry), fi as u32);
            assert_eq!(img.func_of(f.end - 1), fi as u32);
        }
    }

    #[test]
    fn x86_images_have_variable_sizes() {
        let mut p = SynthParams::server(60);
        p.arch = Arch::X86;
        let img = ProgramImage::generate(&p, 11);
        let distinct: std::collections::HashSet<u8> = img.instrs.iter().map(|i| i.size).collect();
        assert!(distinct.len() > 4, "x86 sizes should vary");
    }

    #[test]
    fn code_spans_multiple_regions() {
        let img = ProgramImage::generate(&SynthParams::server(300), 5);
        let regions: std::collections::HashSet<u64> = img
            .funcs
            .iter()
            .map(|f| btbx_core::offset::region_number(f.base))
            .collect();
        assert!(regions.len() >= 2, "expected multi-region layout");
        assert!(
            regions.len() <= 4,
            "PDede's 4-entry Region-BTB should suffice"
        );
    }
}
