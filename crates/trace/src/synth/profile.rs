//! Statistical profiles that shape synthetic workloads.
//!
//! The generator is calibrated against the paper's measured properties of
//! the IPC-1/CVP-1 traces (Figures 4, 12, 13 and the Section III
//! discussion):
//!
//! * ~20 % of dynamic branches are returns (0 offset bits);
//! * 54 % of dynamic branches need ≤ 6 stored offset bits, 22 % need 7–10,
//!   23 % need 11–25, and ~1 % need more (Arm64);
//! * conditionals dominate and have short intra-function offsets; calls
//!   span pages and library regions.
//!
//! [`OffsetLengthDist`] samples a *stored offset length* per branch kind;
//! the image builder then picks a concrete target whose byte distance
//! falls in the corresponding window.

use btbx_core::types::Arch;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Discrete distribution over Arm64 stored-offset lengths (bits).
///
/// Lengths are expressed in *Arm64 stored bits* (the byte-distance window
/// for length `L` is `[2^(L+1), 2^(L+2))`); x86 workloads reuse the same
/// byte-distance windows, which automatically costs them the two extra
/// stored bits the paper reports in Section VI-G.
#[derive(Debug, Clone)]
pub struct OffsetLengthDist {
    /// `(length, cumulative weight)` pairs, cumulative weights ending at
    /// 1.0.
    cdf: Vec<(u32, f64)>,
}

impl OffsetLengthDist {
    /// Build from `(length, weight)` pairs; weights are normalized.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[(u32, f64)]) -> Self {
        assert!(!weights.is_empty(), "empty offset distribution");
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "zero-mass offset distribution");
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|&(l, w)| {
                acc += w / total;
                (l, acc)
            })
            .collect();
        OffsetLengthDist { cdf }
    }

    /// Sample a stored-offset length.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let u: f64 = rng.gen();
        for &(l, c) in &self.cdf {
            if u <= c {
                return l;
            }
        }
        self.cdf.last().unwrap().0
    }

    /// Byte-distance window `[lo, hi)` that yields approximately `len`
    /// stored bits on Arm64 (and `len + 2` on x86).
    pub fn distance_window(len: u32) -> (u64, u64) {
        // Stored length L ⇒ raw msb position L + 2 ⇒ the XOR of PC and
        // target has its top bit at position L + 2 ⇒ byte distance in
        // [2^(L+1), 2^(L+2)). L = 0 degenerates to distance 0.
        if len == 0 {
            (0, 1)
        } else {
            (1u64 << (len + 1), 1u64 << (len + 2))
        }
    }

    /// Sample a byte distance for this distribution.
    pub fn sample_distance(&self, rng: &mut SmallRng) -> u64 {
        let len = self.sample(rng);
        let (lo, hi) = Self::distance_window(len);
        rng.gen_range(lo..hi)
    }
}

/// Per-kind offset-length distributions.
#[derive(Debug, Clone)]
pub struct OffsetProfile {
    /// Conditional branches: short, intra-function (Section III: small
    /// functions keep conditional offsets short).
    pub cond: OffsetLengthDist,
    /// Unconditional direct jumps: short-to-medium, intra-function.
    pub jump: OffsetLengthDist,
    /// Calls: cross-function, page- and region-crossing.
    pub call: OffsetLengthDist,
    /// Indirect jumps (switch tables, PLT-like): medium-to-long.
    pub ijump: OffsetLengthDist,
}

impl OffsetProfile {
    /// The calibration used for all IPC-1-like and CVP-1-like workloads.
    ///
    /// The per-kind weights were fit so the resulting *dynamic* mixture —
    /// with the default branch-kind mix and loop amplification — lands on
    /// the Figure 4 anchor points (see `synth::tests` and the `fig04`
    /// harness).
    pub fn server_default() -> Self {
        OffsetProfile {
            cond: OffsetLengthDist::new(&[
                (1, 0.020),
                (2, 0.040),
                (3, 0.080),
                (4, 0.120),
                (5, 0.220),
                (6, 0.110),
                (7, 0.090),
                (8, 0.080),
                (9, 0.070),
                (10, 0.060),
                (11, 0.060),
                (12, 0.0063),
                (13, 0.0063),
                (14, 0.0063),
                (15, 0.0063),
                (16, 0.0063),
                (17, 0.0062),
                (18, 0.0062),
                (19, 0.0062),
            ]),
            jump: OffsetLengthDist::new(&[
                (1, 0.015),
                (2, 0.015),
                (3, 0.015),
                (4, 0.015),
                (5, 0.10),
                (6, 0.10),
                (7, 0.10),
                (8, 0.09),
                (9, 0.09),
                (10, 0.08),
                (11, 0.08),
                (12, 0.05),
                (13, 0.05),
                (14, 0.05),
                (15, 0.03),
                (16, 0.03),
                (17, 0.02),
                (18, 0.01),
                (19, 0.01),
            ]),
            call: OffsetLengthDist::new(&[
                (5, 0.020),
                (6, 0.020),
                (7, 0.020),
                (8, 0.015),
                (9, 0.015),
                (10, 0.045),
                (11, 0.045),
                (12, 0.042),
                (13, 0.042),
                (14, 0.042),
                (15, 0.042),
                (16, 0.042),
                (17, 0.042),
                (18, 0.042),
                (19, 0.042),
                (20, 0.075),
                (21, 0.075),
                (22, 0.075),
                (23, 0.075),
                (24, 0.075),
                (25, 0.075),
                (26, 0.003),
                (27, 0.003),
            ]),
            ijump: OffsetLengthDist::new(&[
                (12, 0.0625),
                (13, 0.0625),
                (14, 0.0625),
                (15, 0.0625),
                (16, 0.0625),
                (17, 0.0625),
                (18, 0.0625),
                (19, 0.0625),
                (20, 0.0833),
                (21, 0.0833),
                (22, 0.0833),
                (23, 0.0833),
                (24, 0.0833),
                (25, 0.0835),
            ]),
        }
    }
}

/// Static branch-kind mix used when assigning instruction slots inside
/// generated functions; fractions of *branch slots* (non-branch density is
/// a separate knob). Returns are implicit (one per function) and the
/// dispatcher adds its own loop, so the *dynamic* mix differs — the
/// defaults were tuned so dynamic returns land near the paper's ~20 %.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchKindMix {
    /// Conditional direct branches.
    pub cond: f64,
    /// Unconditional direct jumps.
    pub jump: f64,
    /// Direct calls.
    pub call: f64,
    /// Indirect calls (as a fraction of all branch slots).
    pub icall: f64,
    /// Indirect jumps.
    pub ijump: f64,
}

impl BranchKindMix {
    /// Default mix for server-like code.
    pub fn server_default() -> Self {
        BranchKindMix {
            cond: 0.60,
            jump: 0.07,
            call: 0.27,
            icall: 0.04,
            ijump: 0.02,
        }
    }

    /// Sum of all fractions (should be 1.0 within rounding).
    pub fn total(&self) -> f64 {
        self.cond + self.jump + self.call + self.icall + self.ijump
    }
}

/// Sample an x86 instruction length (bytes); mean ≈ 4.1, range 1–15.
pub fn sample_x86_len(rng: &mut SmallRng) -> u8 {
    const CDF: [(u8, f64); 13] = [
        (1, 0.05),
        (2, 0.17),
        (3, 0.39),
        (4, 0.57),
        (5, 0.71),
        (6, 0.81),
        (7, 0.89),
        (8, 0.94),
        (9, 0.97),
        (10, 0.985),
        (11, 0.993),
        (13, 0.998),
        (15, 1.0),
    ];
    let u: f64 = rng.gen();
    for &(len, c) in &CDF {
        if u <= c {
            return len;
        }
    }
    15
}

/// Draw from a truncated geometric distribution with the given mean,
/// clamped to `[1, max]`. Used for loop trip counts and block lengths.
pub fn sample_geometric(rng: &mut SmallRng, mean: f64, max: u64) -> u64 {
    debug_assert!(mean >= 1.0);
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let v = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
    v.clamp(1, max)
}

/// A Zipf sampler over `n` items with exponent `s` (item 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the cumulative distribution for `n ≥ 1` items.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample an item index in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Stored-offset length that `distance_window` would produce, for checking
/// calibration: the inverse mapping on Arm64.
pub fn arm64_len_for_distance(d: u64) -> u32 {
    if d == 0 {
        0
    } else {
        (64 - d.leading_zeros()).saturating_sub(2)
    }
}

/// Convenience: does this architecture store alignment bits?
pub fn stored_bits_for(arch: Arch, arm64_len: u32) -> u32 {
    match arch {
        Arch::Arm64 => arm64_len,
        Arch::X86 => arm64_len + 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn distance_window_round_trips_length() {
        use btbx_core::offset::stored_offset_len;
        let mut r = rng();
        for len in 1..=25u32 {
            let (lo, hi) = OffsetLengthDist::distance_window(len);
            for _ in 0..50 {
                let d = r.gen_range(lo..hi);
                // Construct an aligned pc/target pair at distance d and
                // verify the stored length is close to the request (carry
                // effects may shift by one).
                let pc = 0x10_0000_0000u64;
                let got = stored_offset_len(pc, pc + (d & !3), btbx_core::Arch::Arm64);
                assert!(
                    (got as i64 - len as i64).abs() <= 1,
                    "len {len} d {d} got {got}"
                );
            }
        }
    }

    #[test]
    fn offset_dist_samples_only_declared_lengths() {
        let d = OffsetLengthDist::new(&[(3, 0.5), (7, 0.5)]);
        let mut r = rng();
        for _ in 0..100 {
            let l = d.sample(&mut r);
            assert!(l == 3 || l == 7);
        }
    }

    #[test]
    fn offset_dist_respects_weights() {
        let d = OffsetLengthDist::new(&[(1, 0.9), (20, 0.1)]);
        let mut r = rng();
        let n = 10_000;
        let short = (0..n).filter(|_| d.sample(&mut r) == 1).count();
        let frac = short as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn kind_mix_sums_to_one() {
        assert!((BranchKindMix::server_default().total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn x86_lengths_in_range_and_mean_plausible() {
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let l = sample_x86_len(&mut r);
            assert!((1..=15).contains(&l));
            sum += l as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((3.5..5.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = rng();
        let n = 50_000;
        let mean = 6.0;
        let sum: u64 = (0..n).map(|_| sample_geometric(&mut r, mean, 1000)).sum();
        let got = sum as f64 / n as f64;
        assert!((got - mean).abs() < 0.3, "got {got}");
    }

    #[test]
    fn zipf_is_monotonically_popular() {
        let z = Zipf::new(100, 0.9);
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[60]);
    }

    #[test]
    fn zipf_single_item() {
        let z = Zipf::new(1, 1.0);
        assert_eq!(z.sample(&mut rng()), 0);
    }

    #[test]
    fn arm64_len_inverse() {
        for len in 1..=25u32 {
            let (lo, hi) = OffsetLengthDist::distance_window(len);
            assert_eq!(arm64_len_for_distance(lo), len);
            assert_eq!(arm64_len_for_distance(hi - 1), len);
        }
    }

    #[test]
    fn x86_costs_two_more_bits() {
        assert_eq!(stored_bits_for(Arch::X86, 5), 7);
        assert_eq!(stored_bits_for(Arch::Arm64, 5), 5);
    }
}
