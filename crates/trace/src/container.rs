//! The `.btbt` indexed packed trace container: the on-disk form of
//! [`crate::packed`]'s 16-byte-per-event SoA blocks, built so file-backed
//! workloads replay through the sharded streaming engine exactly like
//! synthetic ones.
//!
//! A container holds one instruction stream as fixed-size packed blocks
//! plus two side sections: a **block index** mapping start-instruction
//! offsets to byte offsets (so `seek` is an index binary-search plus one
//! block read, never a scan) and an **escape table** holding the rare
//! records that do not fit the canonical 48-bit packing — the same
//! lossless escape mechanism [`PackedBuf`](crate::packed::PackedBuf)
//! uses in memory.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header (64 bytes, then the stream name):
//!   0..4    magic "BTBT"
//!   4..6    version u16 (currently 1)
//!   6       arch u8 (0 = Arm64, 1 = x86)
//!   7       reserved
//!   8..16   total_events u64
//!   16..20  block_events u32   events per full block (last may be short)
//!   20..24  block_count u32
//!   24..32  escape_count u64
//!   32..40  content_hash u64   FNV-1a over the event stream (see below)
//!   40..48  index_offset u64   byte offset of the index section
//!   48..56  escape_offset u64  byte offset of the escape table
//!   56..58  name_len u16
//!   58..64  reserved
//!   64..    name bytes (UTF-8)
//! blocks:  per block, the lo column then the hi column (u64 each)
//! escapes: escape_count records of 32 bytes:
//!          pc u64 | payload u64 | event_pc u64 | size u8 | kind u8 |
//!          taken u8 | 5 reserved bytes
//! index:   block_count entries of 24 bytes:
//!          start_instr u64 | byte_offset u64 | events u32 | reserved u32
//! ```
//!
//! The **content hash** folds every event's canonical bytes (packed words
//! for canonical records, the 32-byte escape record otherwise) into a
//! seeded FNV-1a. It identifies the *stream*, not the file: two
//! containers written from the same events hash identically wherever
//! they live on disk, which is what lets the sweep cache key on it (see
//! `btbx_bench::sweep`).
//!
//! [`PackedFileSource`] replays a container as a
//! [`TraceSource`] + [`SeekableSource`]: a checkpoint is just the
//! absolute instruction position (block id and intra-block offset are
//! derived from the index), so `checkpoint`/`restore`/`seek` are all
//! O(1) plus one lazy block read — cheaper than the synthetic walker's
//! O(state) snapshots. Clones share the file handle and the loaded index
//! behind `Arc`s, so handing every shard of a
//! `btbx_uarch::ParallelSession` its own source is allocation-cheap and
//! never re-reads the header.

use crate::packed::{PackedInstr, KIND_ESCAPE, KIND_SHIFT};
use crate::record::{MemAccess, Op, TraceInstr};
use crate::source::{SeekableSource, TraceSource};
use btbx_core::faults;
use btbx_core::types::{Arch, BranchClass, BranchEvent};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Magic bytes identifying a packed trace container.
pub const MAGIC: &[u8; 4] = b"BTBT";
/// Current container format version.
pub const VERSION: u16 = 1;
/// Events per full block: 4096 × 16 B = 64 KiB of payload, the unit a
/// [`PackedFileSource`] reads and a seek decodes.
pub const BLOCK_EVENTS: usize = 4096;

const HEADER_BYTES: usize = 64;
const ESCAPE_BYTES: usize = 32;
const INDEX_ENTRY_BYTES: usize = 24;

const KIND_OTHER: u8 = 0;
const KIND_LOAD: u8 = 1;
const KIND_STORE: u8 = 2;
const KIND_BRANCH0: u8 = 3;

/// Why a container cannot be opened or trusted.
#[derive(Debug)]
pub enum ContainerError {
    /// An I/O failure from the underlying file.
    Io(io::Error),
    /// The file does not start with the `BTBT` magic.
    BadMagic,
    /// A container version this build does not understand.
    BadVersion(u16),
    /// An architecture byte outside the known set.
    BadArch(u8),
    /// A structural invariant does not hold (truncated sections,
    /// non-monotonic index, event counts that do not add up, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Io(e) => write!(f, "container I/O error: {e}"),
            ContainerError::BadMagic => write!(f, "not a .btbt container (bad magic)"),
            ContainerError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            ContainerError::BadArch(a) => write!(f, "unknown architecture byte {a}"),
            ContainerError::Corrupt(what) => write!(f, "corrupt container: {what}"),
        }
    }
}

impl std::error::Error for ContainerError {}

impl From<io::Error> for ContainerError {
    fn from(e: io::Error) -> Self {
        ContainerError::Io(e)
    }
}

/// Everything the fixed header records about a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerInfo {
    /// Stream name recorded at write time (workload name or file stem).
    pub name: String,
    /// Instruction-set architecture of the trace.
    pub arch: Arch,
    /// Total instructions stored.
    pub total_events: u64,
    /// Events per full block.
    pub block_events: u32,
    /// Number of blocks.
    pub block_count: u32,
    /// Records in the escape table.
    pub escape_count: u64,
    /// Seeded FNV-1a over the event stream; the container's identity.
    pub content_hash: u64,
}

/// What [`ContainerWriter::finish`] reports about the written file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerSummary {
    /// Instructions written.
    pub events: u64,
    /// Blocks written.
    pub blocks: u32,
    /// Escape records written.
    pub escapes: u64,
    /// Content hash of the stream.
    pub content_hash: u64,
    /// Total file bytes including header, sections and name.
    pub bytes: u64,
}

/// Seeded 64-bit FNV-1a, fed incrementally. Same constants as the sweep
/// cache's hasher so the two stay recognizably one family.
#[derive(Debug, Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        // Seed folded like `btbx_bench::sweep::fnv1a(bytes, seed)` with
        // the container version as the seed.
        Fnv1a(0xcbf2_9ce4_8422_2325 ^ (VERSION as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn arch_to_byte(arch: Arch) -> u8 {
    match arch {
        Arch::Arm64 => 0,
        Arch::X86 => 1,
    }
}

fn arch_from_byte(b: u8) -> Result<Arch, ContainerError> {
    match b {
        0 => Ok(Arch::Arm64),
        1 => Ok(Arch::X86),
        other => Err(ContainerError::BadArch(other)),
    }
}

/// Encode one non-packable record as a 32-byte escape entry.
fn encode_escape(instr: &TraceInstr) -> [u8; ESCAPE_BYTES] {
    let mut rec = [0u8; ESCAPE_BYTES];
    rec[0..8].copy_from_slice(&instr.pc.to_le_bytes());
    let (kind, taken, payload, event_pc) = match instr.op {
        Op::Other => (KIND_OTHER, 0u8, 0u64, 0u64),
        Op::Mem(MemAccess::Load(a)) => (KIND_LOAD, 0, a, 0),
        Op::Mem(MemAccess::Store(a)) => (KIND_STORE, 0, a, 0),
        Op::Branch(ev) => (
            KIND_BRANCH0 + ev.class as u8,
            ev.taken as u8,
            ev.target,
            ev.pc,
        ),
    };
    rec[8..16].copy_from_slice(&payload.to_le_bytes());
    rec[16..24].copy_from_slice(&event_pc.to_le_bytes());
    rec[24] = instr.size;
    rec[25] = kind;
    rec[26] = taken;
    rec
}

fn decode_escape(rec: &[u8; ESCAPE_BYTES]) -> Result<TraceInstr, ContainerError> {
    let u64le = |o: usize| u64::from_le_bytes(rec[o..o + 8].try_into().unwrap());
    let pc = u64le(0);
    let payload = u64le(8);
    let event_pc = u64le(16);
    let size = rec[24];
    let op = match rec[25] {
        KIND_OTHER => Op::Other,
        KIND_LOAD => Op::Mem(MemAccess::Load(payload)),
        KIND_STORE => Op::Mem(MemAccess::Store(payload)),
        k => {
            let class = (k - KIND_BRANCH0) as usize;
            if class >= BranchClass::ALL.len() {
                return Err(ContainerError::Corrupt("escape record kind out of range"));
            }
            Op::Branch(BranchEvent {
                pc: event_pc,
                target: payload,
                class: BranchClass::ALL[class],
                taken: rec[26] != 0,
            })
        }
    };
    Ok(TraceInstr { pc, size, op })
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    start_instr: u64,
    byte_offset: u64,
    events: u32,
}

/// Streaming `.btbt` writer over any `Write + Seek` sink.
///
/// Events are appended with [`push`](Self::push); the header is written
/// as a placeholder up front and patched by [`finish`](Self::finish)
/// once the block index and escape table are known, so arbitrarily long
/// traces stream through in O(block) memory.
pub struct ContainerWriter<W: Write + Seek> {
    out: W,
    arch: Arch,
    /// Stream name; also the fault-seam site for this sink, which writes
    /// through a generic `Write + Seek` and has no filesystem path.
    name: String,
    lo: Vec<u64>,
    hi: Vec<u64>,
    index: Vec<IndexEntry>,
    escapes: Vec<u8>,
    escape_count: u64,
    total: u64,
    hash: Fnv1a,
    byte_offset: u64,
}

impl<W: Write + Seek> ContainerWriter<W> {
    /// Start a container: writes the placeholder header and the name.
    ///
    /// # Errors
    ///
    /// Any I/O error from the sink; names longer than `u16::MAX` bytes
    /// are rejected as `InvalidInput`.
    pub fn create(mut out: W, name: &str, arch: Arch) -> io::Result<Self> {
        if name.len() > u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "container name longer than 65535 bytes",
            ));
        }
        out.write_all(&[0u8; HEADER_BYTES])?;
        out.write_all(name.as_bytes())?;
        Ok(ContainerWriter {
            out,
            arch,
            name: name.to_string(),
            lo: Vec::with_capacity(BLOCK_EVENTS),
            hi: Vec::with_capacity(BLOCK_EVENTS),
            index: Vec::new(),
            escapes: Vec::new(),
            escape_count: 0,
            total: 0,
            hash: Fnv1a::new(),
            byte_offset: (HEADER_BYTES + name.len()) as u64,
        })
    }

    /// Append one instruction.
    ///
    /// # Errors
    ///
    /// Any I/O error from flushing a completed block.
    pub fn push(&mut self, instr: TraceInstr) -> io::Result<()> {
        match PackedInstr::encode(&instr) {
            Some(p) => {
                self.hash.update(&p.lo.to_le_bytes());
                self.hash.update(&p.hi.to_le_bytes());
                self.lo.push(p.lo);
                self.hi.push(p.hi);
            }
            None => {
                let rec = encode_escape(&instr);
                self.hash.update(&rec);
                self.lo.push(KIND_ESCAPE << KIND_SHIFT);
                self.hi.push(self.escape_count);
                self.escapes.extend_from_slice(&rec);
                self.escape_count += 1;
            }
        }
        self.total += 1;
        if self.lo.len() == BLOCK_EVENTS {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.lo.is_empty() {
            return Ok(());
        }
        faults::check_write(&self.name)?;
        let events = self.lo.len() as u32;
        self.index.push(IndexEntry {
            start_instr: self.total - events as u64,
            byte_offset: self.byte_offset,
            events,
        });
        for word in self.lo.drain(..).chain(self.hi.drain(..)) {
            self.out.write_all(&word.to_le_bytes())?;
        }
        self.byte_offset += events as u64 * 16;
        Ok(())
    }

    /// Flush the trailing block, write the escape table and index, and
    /// patch the header.
    ///
    /// # Errors
    ///
    /// Any I/O error from the sink; more than `u32::MAX` blocks is
    /// rejected as `InvalidInput` (that is > 17 × 10¹² events).
    pub fn finish(mut self) -> io::Result<ContainerSummary> {
        self.flush_block()?;
        faults::check_write(&self.name)?;
        if self.index.len() > u32::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "container exceeds u32::MAX blocks",
            ));
        }
        let escape_offset = self.byte_offset;
        self.out.write_all(&self.escapes)?;
        let index_offset = escape_offset + self.escapes.len() as u64;
        for e in &self.index {
            self.out.write_all(&e.start_instr.to_le_bytes())?;
            self.out.write_all(&e.byte_offset.to_le_bytes())?;
            self.out.write_all(&e.events.to_le_bytes())?;
            self.out.write_all(&0u32.to_le_bytes())?;
        }
        let bytes = index_offset + (self.index.len() * INDEX_ENTRY_BYTES) as u64;

        let mut header = [0u8; HEADER_BYTES];
        header[0..4].copy_from_slice(MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        header[6] = arch_to_byte(self.arch);
        header[8..16].copy_from_slice(&self.total.to_le_bytes());
        header[16..20].copy_from_slice(&(BLOCK_EVENTS as u32).to_le_bytes());
        header[20..24].copy_from_slice(&(self.index.len() as u32).to_le_bytes());
        header[24..32].copy_from_slice(&self.escape_count.to_le_bytes());
        header[32..40].copy_from_slice(&self.hash.0.to_le_bytes());
        header[40..48].copy_from_slice(&index_offset.to_le_bytes());
        header[48..56].copy_from_slice(&escape_offset.to_le_bytes());
        header[56..58].copy_from_slice(&(self.name.len() as u16).to_le_bytes());
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&header)?;
        self.out.flush()?;
        Ok(ContainerSummary {
            events: self.total,
            blocks: self.index.len() as u32,
            escapes: self.escape_count,
            content_hash: self.hash.0,
            bytes,
        })
    }
}

/// Drain up to `limit` instructions from `source` into a container on
/// `out`. Returns the summary of the written file.
///
/// # Errors
///
/// Any I/O error from the sink.
pub fn write_container<W: Write + Seek, S: TraceSource + ?Sized>(
    out: W,
    name: &str,
    arch: Arch,
    source: &mut S,
    limit: u64,
) -> io::Result<ContainerSummary> {
    let mut writer = ContainerWriter::create(out, name, arch)?;
    let mut remaining = limit;
    while remaining > 0 {
        match source.next_instr() {
            Some(i) => writer.push(i)?,
            None => break,
        }
        remaining -= 1;
    }
    writer.finish()
}

/// Read just the header of a container file (cheap: one small read).
///
/// # Errors
///
/// [`ContainerError`] when the file is unreadable or not a valid
/// container.
pub fn read_info(path: &Path) -> Result<ContainerInfo, ContainerError> {
    let mut file = faults::open(path)?;
    read_header(&mut file).map(|(info, _, _)| info)
}

/// Parse the fixed header + name; returns the info and the two section
/// offsets (index, escapes).
fn read_header<R: Read>(input: &mut R) -> Result<(ContainerInfo, u64, u64), ContainerError> {
    let mut header = [0u8; HEADER_BYTES];
    input
        .read_exact(&mut header)
        .map_err(|_| ContainerError::BadMagic)?;
    if &header[0..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let u64le = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().unwrap());
    let u32le = |o: usize| u32::from_le_bytes(header[o..o + 4].try_into().unwrap());
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let arch = arch_from_byte(header[6])?;
    let name_len = u16::from_le_bytes([header[56], header[57]]) as usize;
    let mut name = vec![0u8; name_len];
    input
        .read_exact(&mut name)
        .map_err(|_| ContainerError::Corrupt("name truncated"))?;
    let name = String::from_utf8(name).map_err(|_| ContainerError::Corrupt("name not UTF-8"))?;
    let info = ContainerInfo {
        name,
        arch,
        total_events: u64le(8),
        block_events: u32le(16),
        block_count: u32le(20),
        escape_count: u64le(24),
        content_hash: u64le(32),
    };
    Ok((info, u64le(40), u64le(48)))
}

/// A [`TraceSource`] + [`SeekableSource`] replaying a `.btbt` container
/// straight off disk, one 64 KiB block at a time.
///
/// The index and escape table live in memory behind `Arc`s; the file
/// handle is shared (`Arc<Mutex<File>>`) so clones — one per shard of a
/// sharded run — cost an allocation, not an `open(2)`, and position
/// independently. Peak event memory is one decoded block per live
/// instance, whatever the trace length.
#[derive(Debug)]
pub struct PackedFileSource {
    file: Arc<Mutex<File>>,
    info: ContainerInfo,
    index: Arc<[IndexEntry]>,
    escapes: Arc<[TraceInstr]>,
    pos: u64,
    /// Index of the loaded block, or `usize::MAX` when none is.
    block: usize,
    block_start: u64,
    lo: Vec<u64>,
    hi: Vec<u64>,
}

/// Snapshot of a [`PackedFileSource`]: the absolute instruction position
/// plus the container's content hash, so restoring onto a source over a
/// *different* container is detected instead of silently replaying the
/// wrong trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileCheckpoint {
    pos: u64,
    content_hash: u64,
}

impl PackedFileSource {
    /// Open a container file: reads and validates the header, index and
    /// escape table, then streams blocks on demand.
    ///
    /// # Errors
    ///
    /// [`ContainerError`] when the file is unreadable, not a container,
    /// or structurally inconsistent.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ContainerError> {
        let mut file = faults::open(path.as_ref())?;
        let (info, index_offset, escape_offset) = read_header(&mut file)?;

        file.seek(SeekFrom::Start(escape_offset))?;
        let mut escapes = Vec::with_capacity(info.escape_count as usize);
        let mut rec = [0u8; ESCAPE_BYTES];
        for _ in 0..info.escape_count {
            file.read_exact(&mut rec)
                .map_err(|_| ContainerError::Corrupt("escape table truncated"))?;
            escapes.push(decode_escape(&rec)?);
        }

        file.seek(SeekFrom::Start(index_offset))?;
        let mut index = Vec::with_capacity(info.block_count as usize);
        let mut entry = [0u8; INDEX_ENTRY_BYTES];
        let mut covered = 0u64;
        for _ in 0..info.block_count {
            file.read_exact(&mut entry)
                .map_err(|_| ContainerError::Corrupt("index truncated"))?;
            let e = IndexEntry {
                start_instr: u64::from_le_bytes(entry[0..8].try_into().unwrap()),
                byte_offset: u64::from_le_bytes(entry[8..16].try_into().unwrap()),
                events: u32::from_le_bytes(entry[16..20].try_into().unwrap()),
            };
            if e.start_instr != covered || e.events == 0 {
                return Err(ContainerError::Corrupt("index is not a partition"));
            }
            covered += e.events as u64;
            index.push(e);
        }
        if covered != info.total_events {
            return Err(ContainerError::Corrupt("index does not cover the stream"));
        }
        Ok(PackedFileSource {
            file: Arc::new(Mutex::new(file)),
            info,
            index: index.into(),
            escapes: escapes.into(),
            pos: 0,
            block: usize::MAX,
            block_start: 0,
            lo: Vec::new(),
            hi: Vec::new(),
        })
    }

    /// The container header this source replays.
    pub fn info(&self) -> &ContainerInfo {
        &self.info
    }

    /// `true` when the loaded block covers absolute position `pos`.
    #[inline]
    fn block_loaded_for(&self, pos: u64) -> bool {
        self.block != usize::MAX
            && pos >= self.block_start
            && pos - self.block_start < self.lo.len() as u64
    }

    /// Load the block containing absolute position `pos` (which must be
    /// in range). One seek + one contiguous read under the shared lock.
    ///
    /// # Panics
    ///
    /// Panics when a block read fails *after* open (the file shrank or
    /// the device errored): the index promised these bytes, replay
    /// cannot continue soundly without them, and `TraceSource` has no
    /// error channel — so external interference is loud by design.
    /// Inside a sharded run the runner converts the panic into a failed
    /// run labelled with the shard.
    fn load_block_for(&mut self, pos: u64) {
        let block = self.index.partition_point(|e| e.start_instr <= pos) - 1;
        if block == self.block {
            return;
        }
        let entry = self.index[block];
        let n = entry.events as usize;
        let mut payload = vec![0u8; n * 16];
        faults::check_read(&self.info.name).expect("reading a mapped container block");
        {
            let mut file = self.file.lock().unwrap();
            file.seek(SeekFrom::Start(entry.byte_offset))
                .expect("seeking a mapped container block");
            file.read_exact(&mut payload)
                .expect("reading a mapped container block");
        }
        let word = |i: usize| u64::from_le_bytes(payload[i * 8..i * 8 + 8].try_into().unwrap());
        self.lo.clear();
        self.hi.clear();
        self.lo.extend((0..n).map(word));
        self.hi.extend((n..2 * n).map(word));
        self.block = block;
        self.block_start = entry.start_instr;
    }

    /// Decode the event at the cursor; the containing block must be
    /// loaded.
    #[inline]
    fn decode_at(&self, pos: u64) -> TraceInstr {
        let i = (pos - self.block_start) as usize;
        let lo = self.lo[i];
        if lo >> KIND_SHIFT == KIND_ESCAPE {
            self.escapes[self.hi[i] as usize]
        } else {
            PackedInstr { lo, hi: self.hi[i] }.decode()
        }
    }
}

impl Clone for PackedFileSource {
    /// Clones share the file handle, index and escape table; the cursor
    /// is copied but the block cache starts empty (the clone reloads its
    /// own block on first read).
    fn clone(&self) -> Self {
        PackedFileSource {
            file: Arc::clone(&self.file),
            info: self.info.clone(),
            index: Arc::clone(&self.index),
            escapes: Arc::clone(&self.escapes),
            pos: self.pos,
            block: usize::MAX,
            block_start: 0,
            lo: Vec::new(),
            hi: Vec::new(),
        }
    }
}

impl TraceSource for PackedFileSource {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        if self.pos >= self.info.total_events {
            return None;
        }
        if !self.block_loaded_for(self.pos) {
            self.load_block_for(self.pos);
        }
        let i = self.decode_at(self.pos);
        self.pos += 1;
        Some(i)
    }

    fn source_name(&self) -> &str {
        &self.info.name
    }

    fn advance(&mut self, n: u64) -> u64 {
        let left = self.info.total_events - self.pos;
        let skipped = n.min(left);
        self.pos += skipped;
        skipped
    }

    fn fill_block(&mut self, block: &mut crate::packed::PackedBuf, max: usize) -> usize {
        let mut filled = 0;
        while filled < max && self.pos < self.info.total_events {
            if !self.block_loaded_for(self.pos) {
                self.load_block_for(self.pos);
            }
            let block_end = self.block_start + self.lo.len() as u64;
            let run = (max - filled).min((block_end - self.pos) as usize);
            for _ in 0..run {
                block.push(self.decode_at(self.pos));
                self.pos += 1;
            }
            filled += run;
        }
        filled
    }
}

impl SeekableSource for PackedFileSource {
    type Checkpoint = FileCheckpoint;

    fn position(&self) -> u64 {
        self.pos
    }

    fn checkpoint(&self) -> FileCheckpoint {
        FileCheckpoint {
            pos: self.pos,
            content_hash: self.info.content_hash,
        }
    }

    fn restore(&mut self, cp: &FileCheckpoint) {
        assert_eq!(
            cp.content_hash, self.info.content_hash,
            "checkpoint from a different container (content hash mismatch)"
        );
        assert!(
            cp.pos <= self.info.total_events,
            "checkpoint beyond the container: not from this stream"
        );
        self.pos = cp.pos;
    }

    fn seek(&mut self, n: u64) -> u64 {
        self.pos = n.min(self.info.total_events);
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("btbx-container-{tag}-{}", std::process::id()))
    }

    /// A stream crossing several block boundaries, with escapes mixed in.
    fn mixed_stream(n: u64) -> Vec<TraceInstr> {
        (0..n)
            .map(|i| match i % 7 {
                0 => TraceInstr::mem(0x1000 + i * 4, 4, MemAccess::Load(0x9000 + i)),
                1 => TraceInstr::branch(
                    0x2000 + i * 4,
                    4,
                    BranchEvent::taken(0x2000 + i * 4, 0x3000, BranchClass::CallDirect),
                ),
                // Non-canonical: 56-bit pc, must escape.
                2 if i % 63 == 2 => TraceInstr::other((1 << 55) + i, 4),
                _ => TraceInstr::other(0x1000 + i * 4, 4),
            })
            .collect()
    }

    fn write_to(path: &Path, instrs: &[TraceInstr], name: &str) -> ContainerSummary {
        let file = File::create(path).unwrap();
        let mut source = VecSource::new(name, instrs.to_vec());
        write_container(file, name, Arch::Arm64, &mut source, u64::MAX).unwrap()
    }

    #[test]
    fn round_trips_across_block_boundaries() {
        let instrs = mixed_stream(BLOCK_EVENTS as u64 * 2 + 500);
        let path = temp_path("roundtrip");
        let summary = write_to(&path, &instrs, "mix");
        assert_eq!(summary.events, instrs.len() as u64);
        assert_eq!(summary.blocks, 3);
        assert!(summary.escapes > 0, "the stream plants escape records");

        let source = PackedFileSource::open(&path).unwrap();
        assert_eq!(source.source_name(), "mix");
        assert_eq!(source.info().total_events, instrs.len() as u64);
        assert_eq!(source.info().content_hash, summary.content_hash);
        let back: Vec<TraceInstr> = source.into_iter_instrs().collect();
        assert_eq!(back, instrs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn seek_restore_match_stepping() {
        let instrs = mixed_stream(BLOCK_EVENTS as u64 + 100);
        let path = temp_path("seek");
        write_to(&path, &instrs, "seek");
        let mut s = PackedFileSource::open(&path).unwrap();

        // Seek into the second block, behind the cursor, and past the end.
        s.seek(BLOCK_EVENTS as u64 + 3);
        assert_eq!(s.next_instr().unwrap(), instrs[BLOCK_EVENTS + 3]);
        s.seek(5);
        assert_eq!(s.next_instr().unwrap(), instrs[5], "seek rewinds");
        assert_eq!(s.seek(u64::MAX), instrs.len() as u64, "clamped to end");
        assert!(s.next_instr().is_none());

        let mut t = PackedFileSource::open(&path).unwrap();
        t.advance(40);
        let cp = t.checkpoint();
        let tail_a: Vec<TraceInstr> = t.clone().into_iter_instrs().take(50).collect();
        t.advance(500);
        t.restore(&cp);
        let tail_b: Vec<TraceInstr> = t.into_iter_instrs().take(50).collect();
        assert_eq!(tail_a, tail_b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn clones_share_the_file_but_not_the_cursor() {
        let instrs = mixed_stream(600);
        let path = temp_path("clone");
        write_to(&path, &instrs, "clone");
        let mut a = PackedFileSource::open(&path).unwrap();
        a.advance(100);
        let mut b = a.clone();
        assert_eq!(a.next_instr(), b.next_instr());
        a.advance(50);
        assert_eq!(b.position(), 101);
        assert_eq!(a.position(), 151);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn content_hash_identifies_the_stream_not_the_name() {
        let instrs = mixed_stream(300);
        let path_a = temp_path("hash-a");
        let path_b = temp_path("hash-b");
        let a = write_to(&path_a, &instrs, "name-one");
        let b = write_to(&path_b, &instrs, "name-two");
        assert_eq!(a.content_hash, b.content_hash, "same events, same hash");

        let mut changed = instrs.clone();
        changed[17] = TraceInstr::other(0xdead, 4);
        let path_c = temp_path("hash-c");
        let c = write_to(&path_c, &changed, "name-one");
        assert_ne!(a.content_hash, c.content_hash, "one event differs");
        for p in [path_a, path_b, path_c] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    #[should_panic(expected = "content hash mismatch")]
    fn foreign_checkpoints_are_rejected() {
        let path_a = temp_path("foreign-a");
        let path_b = temp_path("foreign-b");
        write_to(&path_a, &mixed_stream(100), "a");
        write_to(&path_b, &mixed_stream(101), "b");
        let a = PackedFileSource::open(&path_a).unwrap();
        let mut b = PackedFileSource::open(&path_b).unwrap();
        let cp = a.checkpoint();
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        b.restore(&cp);
    }

    #[test]
    fn malformed_files_are_typed_errors() {
        let path = temp_path("bad");
        std::fs::write(&path, b"definitely not a container").unwrap();
        assert!(matches!(
            PackedFileSource::open(&path),
            Err(ContainerError::BadMagic)
        ));

        // A valid container with a corrupted version field.
        let instrs = mixed_stream(10);
        write_to(&path, &instrs, "v");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 0xEE;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            PackedFileSource::open(&path),
            Err(ContainerError::BadVersion(_))
        ));

        // Truncated mid-index.
        write_to(&path, &instrs, "v");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(matches!(
            PackedFileSource::open(&path),
            Err(ContainerError::Corrupt(_))
        ));
        let _ = std::fs::remove_file(&path);

        assert!(matches!(
            PackedFileSource::open(temp_path("missing")),
            Err(ContainerError::Io(_))
        ));
    }

    #[test]
    fn writer_streams_through_cursor_sinks() {
        // `Cursor<Vec<u8>>` satisfies Write + Seek: the header patch at
        // finish() must land at offset 0.
        let instrs = mixed_stream(50);
        let mut sink = Cursor::new(Vec::new());
        let mut src = VecSource::new("cursor", instrs.clone());
        let summary = write_container(&mut sink, "cursor", Arch::X86, &mut src, 30).unwrap();
        assert_eq!(summary.events, 30, "limit respected");
        let bytes = sink.into_inner();
        assert_eq!(&bytes[0..4], MAGIC);
        assert_eq!(bytes.len() as u64, summary.bytes);

        let path = temp_path("cursor");
        std::fs::write(&path, &bytes).unwrap();
        let info = read_info(&path).unwrap();
        assert_eq!(info.arch, Arch::X86);
        assert_eq!(info.total_events, 30);
        let back: Vec<TraceInstr> = PackedFileSource::open(&path)
            .unwrap()
            .into_iter_instrs()
            .collect();
        assert_eq!(&back[..], &instrs[..30]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fill_block_crosses_container_blocks() {
        let instrs = mixed_stream(BLOCK_EVENTS as u64 + 64);
        let path = temp_path("fill");
        write_to(&path, &instrs, "fill");
        let mut s = PackedFileSource::open(&path).unwrap();
        s.advance(BLOCK_EVENTS as u64 - 10);
        let mut buf = crate::packed::PackedBuf::new();
        assert_eq!(s.fill_block(&mut buf, 40), 40, "spans the block boundary");
        for (i, want) in instrs[BLOCK_EVENTS - 10..BLOCK_EVENTS + 30]
            .iter()
            .enumerate()
        {
            assert_eq!(buf.get(i), *want, "event {i}");
        }
        assert_eq!(s.fill_block(&mut buf, 1 << 20), 34, "trace end");
        let _ = std::fs::remove_file(&path);
    }
}
