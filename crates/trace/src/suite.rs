//! Named workload suites mirroring the paper's evaluation inputs.
//!
//! * [`Suite::Ipc1Client`] / [`Suite::Ipc1Server`] — stand-ins for the
//!   Qualcomm IPC-1 traces. The paper evaluates 8 client and 35 server
//!   traces named `client_001..008` and `server_001..004,009..039`
//!   (server_005–008 do not exist in IPC-1; the naming gap is preserved).
//!   Server footprints vary widely; traces `server_023..035` are the very
//!   large ones that dominate Figure 9's right half.
//! * [`Suite::Cvp1`] — a 48-member family standing in for the 750+ CVP-1
//!   server traces of Figure 12 (only offset CDFs are needed there).
//! * [`Suite::X86Apps`] — the five x86 server applications of Figure 13:
//!   Wordpress, Mediawiki, Drupal, Kafka and Finagle-HTTP.

use crate::any::{AnySource, TraceOpenError};
use crate::container::{self, PackedFileSource};
use crate::synth::{ProgramImage, SynthParams, SyntheticTrace};
use btbx_core::types::Arch;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The four workload families of the paper, plus on-disk trace files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// IPC-1 client traces (small footprints).
    Ipc1Client,
    /// IPC-1 server traces (large footprints).
    Ipc1Server,
    /// CVP-1 server traces (offset-distribution study, Figure 12).
    Cvp1,
    /// x86 server applications (Figure 13).
    X86Apps,
    /// A real trace file (`.btbt` container) rather than a synthetic
    /// family — how genuine IPC-1-style traces enter the harness.
    TraceFile,
}

impl Suite {
    /// Human-readable suite name.
    pub const fn name(self) -> &'static str {
        match self {
            Suite::Ipc1Client => "ipc1-client",
            Suite::Ipc1Server => "ipc1-server",
            Suite::Cvp1 => "cvp1",
            Suite::X86Apps => "x86-apps",
            Suite::TraceFile => "trace-file",
        }
    }
}

/// Reference to an on-disk `.btbt` trace container.
///
/// The `content_hash` (from the container header) is the trace's
/// identity: result caches key on it, never on `path`, so moving or
/// renaming a container keeps its cached results, while swapping the
/// file's contents under the same path invalidates them (and is caught
/// at open by [`WorkloadSpec::build_source`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRef {
    /// Where the container currently lives. Not part of the trace's
    /// identity. May be a `store://` URL form (see
    /// [`TraceRef::store_only`]) for references that are resolvable
    /// only by fetching the container from a content-addressed store.
    pub path: PathBuf,
    /// Content hash from the container header.
    pub content_hash: u64,
}

impl TraceRef {
    /// The content-addressed blob key this container publishes under in
    /// a store (`trace-<hash>.btbt`) — the name a serve node asks a
    /// peer's `/blob` endpoint for.
    pub fn blob_key(&self) -> String {
        format!("trace-{:016x}.btbt", self.content_hash)
    }

    /// A reference with no local path: the `store://` URL form. Opening
    /// it directly fails; a consumer with a store backend resolves it
    /// by fetching [`blob_key`](TraceRef::blob_key) and rewriting
    /// `path` to the spooled file.
    pub fn store_only(content_hash: u64) -> TraceRef {
        TraceRef {
            path: PathBuf::from(format!("store://trace-{content_hash:016x}.btbt")),
            content_hash,
        }
    }

    /// Whether this reference carries no usable local path (empty, or
    /// the `store://` URL form) and must be resolved through a store.
    pub fn is_store_only(&self) -> bool {
        self.path.as_os_str().is_empty() || self.path.to_string_lossy().starts_with("store://")
    }
}

/// A fully specified workload: a synthetic generator configuration, or a
/// reference to a trace container when [`trace`](Self::trace) is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (`server_032`, `wordpress`, a trace's stream name…).
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Generator seed (image and walker derive from it; unused for
    /// file-backed workloads).
    pub seed: u64,
    /// Generator parameters. For file-backed workloads only
    /// `params.arch` is meaningful (taken from the container header).
    pub params: SynthParams,
    /// Set for file-backed workloads: the container this spec replays.
    #[serde(default)]
    pub trace: Option<TraceRef>,
}

impl WorkloadSpec {
    /// Describe the `.btbt` container at `path` as a workload: reads the
    /// header for the stream name, architecture and content hash.
    ///
    /// # Errors
    ///
    /// [`TraceOpenError`] when the file is not a readable container.
    pub fn from_container(path: impl AsRef<Path>) -> Result<WorkloadSpec, TraceOpenError> {
        let path = path.as_ref();
        let info = container::read_info(path).map_err(TraceOpenError::Container)?;
        let mut params = SynthParams::server(100);
        params.arch = info.arch;
        Ok(WorkloadSpec {
            name: info.name,
            suite: Suite::TraceFile,
            seed: 0,
            params,
            trace: Some(TraceRef {
                path: path.to_path_buf(),
                content_hash: info.content_hash,
            }),
        })
    }

    /// Generate the program image for this workload.
    ///
    /// # Panics
    ///
    /// Panics for file-backed workloads, which have no generator image.
    pub fn build_image(&self) -> ProgramImage {
        assert!(
            self.trace.is_none(),
            "file-backed workload `{}` has no synthetic image",
            self.name
        );
        ProgramImage::generate(&self.params, self.seed)
    }

    /// Generate the executable trace for this workload.
    ///
    /// # Panics
    ///
    /// Panics for file-backed workloads; use
    /// [`build_source`](Self::build_source), which covers both kinds.
    pub fn build_trace(&self) -> SyntheticTrace {
        SyntheticTrace::new(self.build_image(), self.name.clone(), self.seed)
    }

    /// Build the trace stream for this workload — the entry point that
    /// covers synthetic and file-backed workloads alike, and the one
    /// sharded sessions clone per shard.
    ///
    /// # Errors
    ///
    /// [`TraceOpenError`] when a referenced container is missing,
    /// invalid, or its content hash no longer matches the reference
    /// (the file was swapped since the spec was made).
    pub fn build_source(&self) -> Result<AnySource, TraceOpenError> {
        match &self.trace {
            None => Ok(AnySource::Synth(self.build_trace())),
            Some(tref) => {
                let source =
                    PackedFileSource::open(&tref.path).map_err(TraceOpenError::Container)?;
                if source.info().content_hash != tref.content_hash {
                    return Err(TraceOpenError::Container(
                        crate::container::ContainerError::Corrupt(
                            "container content changed since the workload spec was made \
                             (content hash mismatch)",
                        ),
                    ));
                }
                Ok(AnySource::Packed(source))
            }
        }
    }

    /// `true` for server-class workloads (used when aggregating figures
    /// into server/client groups). File-backed traces count as server
    /// workloads: the paper's trace-driven inputs are server traces.
    pub fn is_server(&self) -> bool {
        matches!(
            self.suite,
            Suite::Ipc1Server | Suite::Cvp1 | Suite::X86Apps | Suite::TraceFile
        )
    }
}

/// The 8 IPC-1 client workloads.
pub fn ipc1_client() -> Vec<WorkloadSpec> {
    (1..=8u64)
        .map(|i| {
            let funcs = 55 + (i as usize) * 16; // 71..183 functions
            let mut params = SynthParams::client(funcs);
            // Slight per-trace personality: loopier vs callier clients.
            params.mean_loop_trips = 6.0 + (i % 4) as f64 * 2.0;
            params.zipf_s = 0.95 + (i % 3) as f64 * 0.08;
            WorkloadSpec {
                name: format!("client_{i:03}"),
                suite: Suite::Ipc1Client,
                seed: 0xC11E_0000 + i,
                params,
                trace: None,
            }
        })
        .collect()
}

/// IPC-1 server trace numbers: 001–004 and 009–039 (035 total).
pub const IPC1_SERVER_IDS: [u32; 35] = [
    1, 2, 3, 4, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29,
    30, 31, 32, 33, 34, 35, 36, 37, 38, 39,
];

/// Footprint class for one server trace id, shaping Figure 9's profile:
/// moderate working sets for 001–022, very large for 023–035, medium for
/// 036–039.
fn server_funcs(id: u32) -> usize {
    match id {
        1..=4 => 500 + (id as usize * 157) % 400,
        9..=22 => 600 + ((id as usize * 83) % 13) * 70,
        23..=35 => 1600 + (id as usize - 23) * 130,
        _ => 900 + ((id as usize * 31) % 7) * 70,
    }
}

/// The 35 IPC-1 server workloads.
pub fn ipc1_server() -> Vec<WorkloadSpec> {
    IPC1_SERVER_IDS
        .iter()
        .map(|&id| {
            let mut params = SynthParams::server(server_funcs(id));
            // Big-footprint traces touch more pages (harder for PDede)
            // and spread execution across more handlers.
            if (23..=35).contains(&id) {
                params.big_gap_fraction = 0.08;
                params.zipf_s = 0.35;
            }
            WorkloadSpec {
                name: format!("server_{id:03}"),
                suite: Suite::Ipc1Server,
                seed: 0x5E4E_0000 + id as u64,
                params,
                trace: None,
            }
        })
        .collect()
}

/// All 43 IPC-1 workloads in the paper's figure order (clients first).
pub fn ipc1_all() -> Vec<WorkloadSpec> {
    let mut v = ipc1_client();
    v.extend(ipc1_server());
    v
}

/// A CVP-1-like family of `n` server workloads (default 48) used for the
/// Figure 12 offset study.
pub fn cvp1(n: usize) -> Vec<WorkloadSpec> {
    (0..n as u64)
        .map(|i| {
            let funcs = 220 + ((i * 97) % 29) as usize * 74; // 220..2293
            let mut params = SynthParams::server(funcs);
            params.zipf_s = 0.6 + (i % 5) as f64 * 0.1;
            WorkloadSpec {
                name: format!("cvp_{:03}", i + 1),
                suite: Suite::Cvp1,
                seed: 0xC4B1_0000 + i,
                params,
                trace: None,
            }
        })
        .collect()
}

/// The five x86 server applications of Figure 13.
pub fn x86_apps() -> Vec<WorkloadSpec> {
    let spec = |name: &str, seed: u64, funcs: usize, zipf: f64| {
        let mut params = SynthParams::server(funcs);
        params.arch = Arch::X86;
        params.zipf_s = zipf;
        WorkloadSpec {
            name: name.to_string(),
            suite: Suite::X86Apps,
            seed,
            params,
            trace: None,
        }
    };
    vec![
        spec("wordpress", 0x8600_0001, 1500, 0.72),
        spec("mediawiki", 0x8600_0002, 1350, 0.75),
        spec("drupal", 0x8600_0003, 1600, 0.70),
        spec("kafka", 0x8600_0004, 1100, 0.82),
        spec("finagle-http", 0x8600_0005, 900, 0.85),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSource;

    #[test]
    fn client_suite_has_eight_named_traces() {
        let c = ipc1_client();
        assert_eq!(c.len(), 8);
        assert_eq!(c[0].name, "client_001");
        assert_eq!(c[7].name, "client_008");
        assert!(c.iter().all(|w| !w.is_server()));
    }

    #[test]
    fn server_suite_matches_paper_numbering() {
        let s = ipc1_server();
        assert_eq!(s.len(), 35);
        assert_eq!(s[0].name, "server_001");
        assert_eq!(s[4].name, "server_009", "ids 005–008 do not exist");
        assert_eq!(s[34].name, "server_039");
    }

    #[test]
    fn big_servers_have_bigger_footprints() {
        // server_023..035 must dwarf server_001..004 (Figure 9 shape).
        assert!(server_funcs(30) > 2 * server_funcs(2));
    }

    #[test]
    fn seeds_are_unique_across_ipc1() {
        let all = ipc1_all();
        let mut seeds: Vec<u64> = all.iter().map(|w| w.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), all.len());
    }

    #[test]
    fn cvp_family_size_is_configurable() {
        assert_eq!(cvp1(48).len(), 48);
        assert_eq!(cvp1(3).len(), 3);
    }

    #[test]
    fn x86_apps_are_x86() {
        let apps = x86_apps();
        assert_eq!(apps.len(), 5);
        for a in &apps {
            assert_eq!(a.params.arch, Arch::X86);
        }
        assert!(apps.iter().any(|a| a.name == "wordpress"));
        assert!(apps.iter().any(|a| a.name == "finagle-http"));
    }

    #[test]
    fn specs_build_running_traces() {
        let spec = &ipc1_client()[0];
        let mut t = spec.build_trace();
        for _ in 0..1000 {
            assert!(t.next_instr().is_some());
        }
        assert_eq!(t.source_name(), "client_001");
    }

    #[test]
    fn file_backed_specs_describe_and_replay_containers() {
        use crate::container::write_container;
        use crate::record::TraceInstr;
        use crate::source::VecSource;

        let path = std::env::temp_dir().join(format!("btbx-suite-file-{}", std::process::id()));
        let instrs: Vec<TraceInstr> = (0..300).map(|i| TraceInstr::other(i * 4, 4)).collect();
        let mut src = VecSource::new("real_server_trace", instrs.clone());
        let summary = write_container(
            std::fs::File::create(&path).unwrap(),
            "real_server_trace",
            Arch::X86,
            &mut src,
            u64::MAX,
        )
        .unwrap();

        let spec = WorkloadSpec::from_container(&path).unwrap();
        assert_eq!(spec.name, "real_server_trace");
        assert_eq!(spec.suite, Suite::TraceFile);
        assert_eq!(spec.params.arch, Arch::X86);
        assert!(spec.is_server());
        let tref = spec.trace.as_ref().unwrap();
        assert_eq!(tref.content_hash, summary.content_hash);

        let mut source = spec.build_source().unwrap();
        assert_eq!(source.source_name(), "real_server_trace");
        assert_eq!(source.next_instr().unwrap(), instrs[0]);

        // Survives serde (how sweeps persist specs).
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);

        // A swapped file under the same path is refused.
        let mut other = VecSource::new("real_server_trace", instrs[..100].to_vec());
        write_container(
            std::fs::File::create(&path).unwrap(),
            "real_server_trace",
            Arch::X86,
            &mut other,
            u64::MAX,
        )
        .unwrap();
        assert!(spec.build_source().is_err(), "content hash must mismatch");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn synthetic_specs_parse_without_a_trace_field() {
        // Pre-container sweeps serialized WorkloadSpec without `trace`;
        // they must keep parsing (defaulted to None).
        let spec = &ipc1_client()[0];
        let mut json = serde_json::to_string(spec).unwrap();
        json = json
            .replace("\"trace\":null,", "")
            .replace(",\"trace\":null", "");
        assert!(!json.contains("trace"), "legacy form: {json}");
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, *spec);
        assert!(matches!(
            back.build_source().unwrap(),
            crate::any::AnySource::Synth(_)
        ));
    }

    #[test]
    #[should_panic(expected = "no synthetic image")]
    fn file_backed_specs_refuse_to_build_images() {
        let spec = WorkloadSpec {
            name: "f".into(),
            suite: Suite::TraceFile,
            seed: 0,
            params: SynthParams::server(100),
            trace: Some(TraceRef {
                path: PathBuf::from("/nonexistent.btbt"),
                content_hash: 1,
            }),
        };
        let _ = spec.build_image();
    }

    #[test]
    fn client_footprint_smaller_than_server() {
        let c = ipc1_client()[4].build_image();
        let s = ipc1_server()[20].build_image();
        assert!(s.static_branches() > 4 * c.static_branches());
    }
}
