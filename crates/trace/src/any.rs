//! [`AnySource`]: the one trace entry point every consumer shards
//! through.
//!
//! Before this module, only the synthetic walker implemented
//! [`SeekableSource`], so `btbx_uarch::ParallelSession`'s streaming
//! shards were synthetic-only. `AnySource` closes that gap: it unifies
//! the three replayable stream kinds — the synthetic walker, raw
//! ChampSim files, and `.btbt` packed containers — behind one concrete
//! type that is `Clone + Send` and fully seekable, so a shard factory
//! (`Fn() -> AnySource`) works identically for every workload kind and
//! one [`CheckpointLadder`](../../btbx_uarch/parallel) type
//! ([`AnyCheckpoint`]) serves them all.
//!
//! [`AnySource::open`] sniffs the file kind by magic: `BTBT` means a
//! packed container; anything else whose length is a whole number of
//! 64-byte records is treated as a raw ChampSim trace (the `BTBX` codec
//! magic is recognized and redirected — varint streams have no random
//! access, so they must be converted first).

use crate::champsim::{ChampSimCheckpoint, ChampSimError, ChampSimFileSource};
use crate::container::{ContainerError, FileCheckpoint, PackedFileSource};
use crate::packed::PackedBuf;
use crate::record::TraceInstr;
use crate::source::{SeekableSource, TraceSource};
use crate::synth::{SynthCheckpoint, SyntheticTrace};
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// A trace stream of any replayable kind; see the module docs.
#[derive(Debug, Clone)]
pub enum AnySource {
    /// The synthetic walker.
    Synth(SyntheticTrace),
    /// A raw 64-byte-record ChampSim trace file.
    ChampSim(ChampSimFileSource),
    /// A `.btbt` indexed packed container.
    Packed(PackedFileSource),
}

/// Snapshot of an [`AnySource`], tagged by stream kind. Restoring a
/// checkpoint onto a source of a different kind is a logic error and
/// panics, mirroring each inner source's foreign-checkpoint guards.
#[derive(Debug, Clone)]
pub enum AnyCheckpoint {
    /// Snapshot of a synthetic walker.
    Synth(SynthCheckpoint),
    /// Snapshot of a ChampSim file source.
    ChampSim(ChampSimCheckpoint),
    /// Snapshot of a packed container source.
    Packed(FileCheckpoint),
}

/// Why a trace file could not be opened as an [`AnySource`].
#[derive(Debug)]
pub enum TraceOpenError {
    /// An I/O failure while sniffing or opening.
    Io(std::io::Error),
    /// The file is a varint `BTBX` codec stream, which has no random
    /// access; convert it to a `.btbt` container first.
    CodecNotSeekable,
    /// A `.btbt` container that failed to open or validate.
    Container(ContainerError),
    /// A ChampSim file that failed to open (typically a truncated tail).
    ChampSim(ChampSimError),
}

impl std::fmt::Display for TraceOpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceOpenError::Io(e) => write!(f, "opening trace: {e}"),
            TraceOpenError::CodecNotSeekable => write!(
                f,
                "BTBX codec streams are not seekable; convert to a .btbt \
                 container first (btbx trace convert)"
            ),
            TraceOpenError::Container(e) => write!(f, "{e}"),
            TraceOpenError::ChampSim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceOpenError {}

impl From<std::io::Error> for TraceOpenError {
    fn from(e: std::io::Error) -> Self {
        TraceOpenError::Io(e)
    }
}

impl AnySource {
    /// Open a trace file, sniffing its kind by magic bytes: `.btbt`
    /// containers and raw ChampSim traces are accepted; varint codec
    /// streams are rejected with a conversion hint.
    ///
    /// # Errors
    ///
    /// [`TraceOpenError`] when the file is unreadable, unseekable by
    /// design, or structurally invalid for its detected kind.
    pub fn open(path: impl AsRef<Path>) -> Result<AnySource, TraceOpenError> {
        let path = path.as_ref();
        let mut magic = [0u8; 4];
        let n = File::open(path)?.read(&mut magic)?;
        if n >= 4 && &magic == crate::container::MAGIC {
            return PackedFileSource::open(path)
                .map(AnySource::Packed)
                .map_err(TraceOpenError::Container);
        }
        if n >= 4 && &magic == crate::codec::MAGIC {
            return Err(TraceOpenError::CodecNotSeekable);
        }
        ChampSimFileSource::open(path)
            .map(AnySource::ChampSim)
            .map_err(TraceOpenError::ChampSim)
    }

    /// Remaining instructions for finite sources; `None` for the
    /// infinite synthetic walker.
    pub fn len_instrs(&self) -> Option<u64> {
        match self {
            AnySource::Synth(_) => None,
            AnySource::ChampSim(s) => Some(s.len_instrs()),
            AnySource::Packed(s) => Some(s.info().total_events),
        }
    }
}

impl From<SyntheticTrace> for AnySource {
    fn from(s: SyntheticTrace) -> Self {
        AnySource::Synth(s)
    }
}

impl From<ChampSimFileSource> for AnySource {
    fn from(s: ChampSimFileSource) -> Self {
        AnySource::ChampSim(s)
    }
}

impl From<PackedFileSource> for AnySource {
    fn from(s: PackedFileSource) -> Self {
        AnySource::Packed(s)
    }
}

impl TraceSource for AnySource {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        match self {
            AnySource::Synth(s) => s.next_instr(),
            AnySource::ChampSim(s) => s.next_instr(),
            AnySource::Packed(s) => s.next_instr(),
        }
    }

    fn source_name(&self) -> &str {
        match self {
            AnySource::Synth(s) => s.source_name(),
            AnySource::ChampSim(s) => s.source_name(),
            AnySource::Packed(s) => s.source_name(),
        }
    }

    fn advance(&mut self, n: u64) -> u64 {
        match self {
            AnySource::Synth(s) => s.advance(n),
            AnySource::ChampSim(s) => s.advance(n),
            AnySource::Packed(s) => s.advance(n),
        }
    }

    fn fill_block(&mut self, block: &mut PackedBuf, max: usize) -> usize {
        // One dispatch per block refill; the concrete fill loops stay
        // monomorphic, so per-event cost is unchanged.
        match self {
            AnySource::Synth(s) => s.fill_block(block, max),
            AnySource::ChampSim(s) => s.fill_block(block, max),
            AnySource::Packed(s) => s.fill_block(block, max),
        }
    }
}

impl SeekableSource for AnySource {
    type Checkpoint = AnyCheckpoint;

    fn position(&self) -> u64 {
        match self {
            AnySource::Synth(s) => s.position(),
            AnySource::ChampSim(s) => SeekableSource::position(s),
            AnySource::Packed(s) => SeekableSource::position(s),
        }
    }

    fn checkpoint(&self) -> AnyCheckpoint {
        match self {
            AnySource::Synth(s) => AnyCheckpoint::Synth(s.checkpoint()),
            AnySource::ChampSim(s) => AnyCheckpoint::ChampSim(s.checkpoint()),
            AnySource::Packed(s) => AnyCheckpoint::Packed(s.checkpoint()),
        }
    }

    fn restore(&mut self, cp: &AnyCheckpoint) {
        match (self, cp) {
            (AnySource::Synth(s), AnyCheckpoint::Synth(c)) => s.restore(c),
            (AnySource::ChampSim(s), AnyCheckpoint::ChampSim(c)) => s.restore(c),
            (AnySource::Packed(s), AnyCheckpoint::Packed(c)) => s.restore(c),
            _ => panic!("checkpoint from a different source kind"),
        }
    }

    fn seek(&mut self, n: u64) -> u64 {
        match self {
            AnySource::Synth(s) => s.seek(n),
            AnySource::ChampSim(s) => s.seek(n),
            AnySource::Packed(s) => s.seek(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::champsim::write_champsim;
    use crate::container::write_container;
    use crate::source::VecSource;
    use crate::synth::{ProgramImage, SynthParams};
    use btbx_core::types::Arch;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("btbx-any-{tag}-{}", std::process::id()))
    }

    fn sample() -> Vec<TraceInstr> {
        (0..500u64).map(|i| TraceInstr::other(i * 4, 4)).collect()
    }

    #[test]
    fn open_sniffs_containers_and_champsim() {
        let instrs = sample();

        let btbt = temp_path("sniff.btbt");
        let mut src = VecSource::new("w", instrs.clone());
        write_container(
            File::create(&btbt).unwrap(),
            "w",
            Arch::Arm64,
            &mut src,
            u64::MAX,
        )
        .unwrap();
        let opened = AnySource::open(&btbt).unwrap();
        assert!(matches!(opened, AnySource::Packed(_)));
        assert_eq!(opened.len_instrs(), Some(500));

        let champ = temp_path("sniff.champsim");
        let mut bytes = Vec::new();
        write_champsim(&mut bytes, instrs).unwrap();
        std::fs::write(&champ, &bytes).unwrap();
        let opened = AnySource::open(&champ).unwrap();
        assert!(matches!(opened, AnySource::ChampSim(_)));
        assert_eq!(opened.len_instrs(), Some(500));

        let codec = temp_path("sniff.codec");
        std::fs::write(&codec, b"BTBX rest does not matter").unwrap();
        assert!(matches!(
            AnySource::open(&codec),
            Err(TraceOpenError::CodecNotSeekable)
        ));

        for p in [btbt, champ, codec] {
            let _ = std::fs::remove_file(&p);
        }
        assert!(matches!(
            AnySource::open(temp_path("gone")),
            Err(TraceOpenError::Io(_))
        ));
    }

    #[test]
    fn seek_contract_holds_for_every_kind() {
        // seek(k) == step()×k across all variants, including the synth
        // walker wrapped in AnySource.
        let instrs = sample();
        let btbt = temp_path("contract.btbt");
        let mut src = VecSource::new("w", instrs.clone());
        write_container(
            File::create(&btbt).unwrap(),
            "w",
            Arch::Arm64,
            &mut src,
            u64::MAX,
        )
        .unwrap();
        let champ = temp_path("contract.champsim");
        let mut bytes = Vec::new();
        write_champsim(&mut bytes, instrs).unwrap();
        std::fs::write(&champ, &bytes).unwrap();

        let params = SynthParams::client(40);
        let synth = SyntheticTrace::new(ProgramImage::generate(&params, 7), "synth", 7);

        for mut source in [
            AnySource::from(synth),
            AnySource::open(&btbt).unwrap(),
            AnySource::open(&champ).unwrap(),
        ] {
            let mut stepped = source.clone();
            for _ in 0..123 {
                stepped.next_instr();
            }
            source.seek(123);
            assert_eq!(SeekableSource::position(&source), 123);
            let cp = source.checkpoint();
            let a = source.next_instr();
            assert_eq!(a, stepped.next_instr(), "{}", source.source_name());
            source.restore(&cp);
            assert_eq!(source.next_instr(), a, "restore rewinds one step");
        }
        let _ = std::fs::remove_file(&btbt);
        let _ = std::fs::remove_file(&champ);
    }

    #[test]
    #[should_panic(expected = "different source kind")]
    fn cross_kind_checkpoints_panic() {
        let params = SynthParams::client(40);
        let synth = AnySource::from(SyntheticTrace::new(
            ProgramImage::generate(&params, 7),
            "synth",
            7,
        ));
        let champ = temp_path("cross.champsim");
        let mut bytes = Vec::new();
        write_champsim(&mut bytes, sample()).unwrap();
        std::fs::write(&champ, &bytes).unwrap();
        let mut file_backed = AnySource::open(&champ).unwrap();
        let cp = synth.checkpoint();
        let _ = std::fs::remove_file(&champ);
        file_backed.restore(&cp);
    }
}
