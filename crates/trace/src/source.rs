//! Streaming abstraction over instruction traces.
//!
//! [`TraceSource`] is the interface the simulator pulls from. Synthetic
//! generators are infinite sources; file-backed traces are finite. The
//! combinators mirror the paper's methodology: `skip` the warm-up window,
//! `take` the measurement window (Section VI-A warms for 50 M and measures
//! 50 M instructions).
//!
//! Two extensions exist for cheap, massively repeated replay:
//!
//! * [`TraceSource::advance`] skips records without yielding them, letting
//!   sources with cheap repositioning (an index bump for [`VecSource`], a
//!   materialization-free skip loop for the synthetic walker) fast-forward
//!   past a shard's prefix;
//! * [`SeekableSource`] adds snapshot/restore of the full generator state,
//!   so a position reached once — by anyone — never has to be re-derived
//!   by stepping again. `btbx_uarch::parallel` builds its checkpoint
//!   ladder on top of this.

use crate::packed::PackedBuf;
use crate::record::TraceInstr;
use std::sync::Arc;

/// A stream of dynamic instructions.
pub trait TraceSource {
    /// Produce the next instruction, or `None` at end of trace.
    fn next_instr(&mut self) -> Option<TraceInstr>;

    /// Descriptive name (workload name or file stem).
    fn source_name(&self) -> &str;

    /// Skip up to `n` instructions without yielding them; returns the
    /// number actually skipped (less than `n` only at end of trace).
    ///
    /// The default steps the stream and discards the records; sources
    /// with cheaper repositioning override it.
    fn advance(&mut self, n: u64) -> u64 {
        for skipped in 0..n {
            if self.next_instr().is_none() {
                return skipped;
            }
        }
        n
    }

    /// Append up to `max` instructions to `block`; returns how many were
    /// appended (less than `max` only at end of trace). The block is the
    /// packed staging buffer the simulator's hot loop consumes — one
    /// refill amortizes the per-event pull over a whole batch.
    fn fill_block(&mut self, block: &mut PackedBuf, max: usize) -> usize {
        for filled in 0..max {
            match self.next_instr() {
                Some(i) => block.push(i),
                None => return filled,
            }
        }
        max
    }

    /// Limit the stream to `n` instructions.
    fn take_instrs(self, n: u64) -> Take<Self>
    where
        Self: Sized,
    {
        Take {
            inner: self,
            remaining: n,
        }
    }

    /// Drop the first `n` instructions (warm-up style fast-forward is the
    /// caller's business; this just discards records).
    fn skip_instrs(self, n: u64) -> Skip<Self>
    where
        Self: Sized,
    {
        Skip {
            inner: self,
            to_skip: n,
        }
    }

    /// Adapt into a standard [`Iterator`].
    fn into_iter_instrs(self) -> IntoIterInstrs<Self>
    where
        Self: Sized,
    {
        IntoIterInstrs { inner: self }
    }
}

/// A trace source whose full dynamic state can be snapshotted and
/// restored, making any previously visited position reachable in O(state)
/// instead of O(position).
///
/// The contract, pinned by `synth_seek.rs` property tests: for any
/// checkpoint taken at position `k`, a source restored from it emits
/// exactly the instructions a fresh source emits after `k` calls to
/// [`TraceSource::next_instr`] — `seek(k)` ≡ `step()×k`.
pub trait SeekableSource: TraceSource {
    /// Opaque snapshot of the source's dynamic state.
    type Checkpoint: Clone + Send + 'static;

    /// Instructions emitted so far (0 for a fresh source).
    fn position(&self) -> u64;

    /// Snapshot the current state; `position()` is part of the snapshot.
    fn checkpoint(&self) -> Self::Checkpoint;

    /// Restore a state previously captured by [`checkpoint`]
    /// (`Self::checkpoint`) on a source over the same underlying stream.
    /// Restoring a foreign checkpoint is a logic error; implementations
    /// detect shape mismatches on a best-effort basis.
    fn restore(&mut self, cp: &Self::Checkpoint);

    /// Reposition to absolute instruction index `n`: rewind by restoring
    /// the start-of-stream state when `n` is behind the cursor, then
    /// [`advance`](TraceSource::advance). Returns the resulting position
    /// (short of `n` only at end of trace).
    fn seek(&mut self, n: u64) -> u64;
}

/// A source backed by a shared, immutable instruction buffer (used by
/// tests and by in-memory replays). Cloning and checkpointing are O(1):
/// the buffer is behind an [`Arc`] and only the cursor is per-instance.
#[derive(Debug, Clone)]
pub struct VecSource {
    name: String,
    instrs: Arc<[TraceInstr]>,
    pos: usize,
}

impl VecSource {
    /// Wrap a vector of instructions.
    pub fn new(name: impl Into<String>, instrs: Vec<TraceInstr>) -> Self {
        VecSource {
            name: name.into(),
            instrs: instrs.into(),
            pos: 0,
        }
    }
}

impl TraceSource for VecSource {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        let i = self.instrs.get(self.pos).copied()?;
        self.pos += 1;
        Some(i)
    }

    fn source_name(&self) -> &str {
        &self.name
    }

    fn advance(&mut self, n: u64) -> u64 {
        let left = (self.instrs.len() - self.pos) as u64;
        let skipped = n.min(left);
        self.pos += skipped as usize;
        skipped
    }
}

impl SeekableSource for VecSource {
    type Checkpoint = u64;

    fn position(&self) -> u64 {
        self.pos as u64
    }

    fn checkpoint(&self) -> u64 {
        self.pos as u64
    }

    fn restore(&mut self, cp: &u64) {
        assert!(
            *cp <= self.instrs.len() as u64,
            "checkpoint beyond the buffer: not from this stream"
        );
        self.pos = *cp as usize;
    }

    fn seek(&mut self, n: u64) -> u64 {
        self.pos = (n as usize).min(self.instrs.len());
        self.pos as u64
    }
}

/// See [`TraceSource::take_instrs`].
#[derive(Debug, Clone)]
pub struct Take<S> {
    inner: S,
    remaining: u64,
}

impl<S: TraceSource> TraceSource for Take<S> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_instr()
    }

    fn source_name(&self) -> &str {
        self.inner.source_name()
    }

    fn advance(&mut self, n: u64) -> u64 {
        let skipped = self.inner.advance(n.min(self.remaining));
        self.remaining -= skipped;
        skipped
    }
}

/// See [`TraceSource::skip_instrs`].
#[derive(Debug, Clone)]
pub struct Skip<S> {
    inner: S,
    to_skip: u64,
}

impl<S: TraceSource> TraceSource for Skip<S> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        if self.to_skip > 0 {
            self.inner.advance(self.to_skip);
            self.to_skip = 0;
        }
        self.inner.next_instr()
    }

    fn source_name(&self) -> &str {
        self.inner.source_name()
    }

    fn advance(&mut self, n: u64) -> u64 {
        let prefix = std::mem::take(&mut self.to_skip);
        let skipped = self.inner.advance(prefix + n);
        // The prefix never counts toward the caller's skip.
        skipped.saturating_sub(prefix)
    }
}

/// See [`TraceSource::into_iter_instrs`].
#[derive(Debug, Clone)]
pub struct IntoIterInstrs<S> {
    inner: S,
}

impl<S: TraceSource> Iterator for IntoIterInstrs<S> {
    type Item = TraceInstr;

    fn next(&mut self) -> Option<TraceInstr> {
        self.inner.next_instr()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        (**self).next_instr()
    }

    fn source_name(&self) -> &str {
        (**self).source_name()
    }

    fn advance(&mut self, n: u64) -> u64 {
        (**self).advance(n)
    }

    fn fill_block(&mut self, block: &mut PackedBuf, max: usize) -> usize {
        (**self).fill_block(block, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: u64) -> VecSource {
        VecSource::new("seq", (0..n).map(|i| TraceInstr::other(i * 4, 4)).collect())
    }

    #[test]
    fn vec_source_streams_in_order() {
        let mut s = seq(3);
        assert_eq!(s.next_instr().unwrap().pc, 0);
        assert_eq!(s.next_instr().unwrap().pc, 4);
        assert_eq!(s.next_instr().unwrap().pc, 8);
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn take_limits() {
        let mut s = seq(10).take_instrs(2);
        assert!(s.next_instr().is_some());
        assert!(s.next_instr().is_some());
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn skip_discards_prefix() {
        let mut s = seq(10).skip_instrs(4);
        assert_eq!(s.next_instr().unwrap().pc, 16);
    }

    #[test]
    fn skip_take_compose_like_the_methodology() {
        // Warm up 3, measure 2.
        let collected: Vec<u64> = seq(10)
            .skip_instrs(3)
            .take_instrs(2)
            .into_iter_instrs()
            .map(|i| i.pc)
            .collect();
        assert_eq!(collected, vec![12, 16]);
    }

    #[test]
    fn skip_past_end_yields_none() {
        let mut s = seq(2).skip_instrs(5);
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn boxed_source_works() {
        let mut s: Box<dyn TraceSource> = Box::new(seq(1));
        assert!(s.next_instr().is_some());
        assert_eq!(s.source_name(), "seq");
    }

    #[test]
    fn advance_skips_and_reports_shortfall() {
        let mut s = seq(10);
        assert_eq!(s.advance(4), 4);
        assert_eq!(s.next_instr().unwrap().pc, 16);
        assert_eq!(s.advance(100), 5, "only 5 instructions remained");
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn advance_through_take_counts_against_the_limit() {
        let mut s = seq(10).take_instrs(5);
        assert_eq!(s.advance(3), 3);
        assert_eq!(s.next_instr().unwrap().pc, 12);
        assert_eq!(s.advance(10), 1, "take window exhausted");
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn advance_through_skip_excludes_the_prefix() {
        let mut s = seq(10).skip_instrs(3);
        assert_eq!(s.advance(2), 2, "prefix skip does not count");
        assert_eq!(s.next_instr().unwrap().pc, 20);
    }

    #[test]
    fn vec_source_checkpoint_restore_round_trips() {
        let mut s = seq(8);
        s.advance(3);
        let cp = s.checkpoint();
        assert_eq!(s.position(), 3);
        let tail_a: Vec<u64> = s.clone().into_iter_instrs().map(|i| i.pc).collect();
        s.advance(4);
        s.restore(&cp);
        let tail_b: Vec<u64> = s.into_iter_instrs().map(|i| i.pc).collect();
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn vec_source_seek_is_absolute() {
        let mut s = seq(8);
        s.seek(5);
        assert_eq!(s.next_instr().unwrap().pc, 20);
        s.seek(1);
        assert_eq!(s.next_instr().unwrap().pc, 4, "seek rewinds");
        assert_eq!(s.seek(100), 8, "clamped to end");
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn clones_share_the_buffer_but_not_the_cursor() {
        let mut a = seq(6);
        a.advance(2);
        let mut b = a.clone();
        assert_eq!(a.next_instr().unwrap().pc, b.next_instr().unwrap().pc);
        a.advance(2);
        assert_eq!(b.position(), 3);
        assert_eq!(a.position(), 5);
    }

    #[test]
    fn fill_block_batches_and_stops_at_end() {
        let mut s = seq(5);
        let mut block = PackedBuf::new();
        assert_eq!(s.fill_block(&mut block, 3), 3);
        assert_eq!(block.len(), 3);
        assert_eq!(block.get(2).pc, 8);
        assert_eq!(s.fill_block(&mut block, 10), 2, "trace end");
        assert_eq!(block.len(), 5);
    }
}
