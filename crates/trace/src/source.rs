//! Streaming abstraction over instruction traces.
//!
//! [`TraceSource`] is the interface the simulator pulls from. Synthetic
//! generators are infinite sources; file-backed traces are finite. The
//! combinators mirror the paper's methodology: `skip` the warm-up window,
//! `take` the measurement window (Section VI-A warms for 50 M and measures
//! 50 M instructions).

use crate::record::TraceInstr;

/// A stream of dynamic instructions.
pub trait TraceSource {
    /// Produce the next instruction, or `None` at end of trace.
    fn next_instr(&mut self) -> Option<TraceInstr>;

    /// Descriptive name (workload name or file stem).
    fn source_name(&self) -> &str;

    /// Limit the stream to `n` instructions.
    fn take_instrs(self, n: u64) -> Take<Self>
    where
        Self: Sized,
    {
        Take {
            inner: self,
            remaining: n,
        }
    }

    /// Drop the first `n` instructions (warm-up style fast-forward is the
    /// caller's business; this just discards records).
    fn skip_instrs(self, n: u64) -> Skip<Self>
    where
        Self: Sized,
    {
        Skip {
            inner: self,
            to_skip: n,
        }
    }

    /// Adapt into a standard [`Iterator`].
    fn into_iter_instrs(self) -> IntoIterInstrs<Self>
    where
        Self: Sized,
    {
        IntoIterInstrs { inner: self }
    }
}

/// A source backed by any iterator of instructions (used by tests and by
/// in-memory replays).
#[derive(Debug, Clone)]
pub struct VecSource {
    name: String,
    instrs: std::vec::IntoIter<TraceInstr>,
}

impl VecSource {
    /// Wrap a vector of instructions.
    pub fn new(name: impl Into<String>, instrs: Vec<TraceInstr>) -> Self {
        VecSource {
            name: name.into(),
            instrs: instrs.into_iter(),
        }
    }
}

impl TraceSource for VecSource {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        self.instrs.next()
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

/// See [`TraceSource::take_instrs`].
#[derive(Debug, Clone)]
pub struct Take<S> {
    inner: S,
    remaining: u64,
}

impl<S: TraceSource> TraceSource for Take<S> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_instr()
    }

    fn source_name(&self) -> &str {
        self.inner.source_name()
    }
}

/// See [`TraceSource::skip_instrs`].
#[derive(Debug, Clone)]
pub struct Skip<S> {
    inner: S,
    to_skip: u64,
}

impl<S: TraceSource> TraceSource for Skip<S> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        while self.to_skip > 0 {
            self.to_skip -= 1;
            self.inner.next_instr()?;
        }
        self.inner.next_instr()
    }

    fn source_name(&self) -> &str {
        self.inner.source_name()
    }
}

/// See [`TraceSource::into_iter_instrs`].
#[derive(Debug, Clone)]
pub struct IntoIterInstrs<S> {
    inner: S,
}

impl<S: TraceSource> Iterator for IntoIterInstrs<S> {
    type Item = TraceInstr;

    fn next(&mut self) -> Option<TraceInstr> {
        self.inner.next_instr()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        (**self).next_instr()
    }

    fn source_name(&self) -> &str {
        (**self).source_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: u64) -> VecSource {
        VecSource::new("seq", (0..n).map(|i| TraceInstr::other(i * 4, 4)).collect())
    }

    #[test]
    fn vec_source_streams_in_order() {
        let mut s = seq(3);
        assert_eq!(s.next_instr().unwrap().pc, 0);
        assert_eq!(s.next_instr().unwrap().pc, 4);
        assert_eq!(s.next_instr().unwrap().pc, 8);
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn take_limits() {
        let mut s = seq(10).take_instrs(2);
        assert!(s.next_instr().is_some());
        assert!(s.next_instr().is_some());
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn skip_discards_prefix() {
        let mut s = seq(10).skip_instrs(4);
        assert_eq!(s.next_instr().unwrap().pc, 16);
    }

    #[test]
    fn skip_take_compose_like_the_methodology() {
        // Warm up 3, measure 2.
        let collected: Vec<u64> = seq(10)
            .skip_instrs(3)
            .take_instrs(2)
            .into_iter_instrs()
            .map(|i| i.pc)
            .collect();
        assert_eq!(collected, vec![12, 16]);
    }

    #[test]
    fn skip_past_end_yields_none() {
        let mut s = seq(2).skip_instrs(5);
        assert!(s.next_instr().is_none());
    }

    #[test]
    fn boxed_source_works() {
        let mut s: Box<dyn TraceSource> = Box::new(seq(1));
        assert!(s.next_instr().is_some());
        assert_eq!(s.source_name(), "seq");
    }
}
