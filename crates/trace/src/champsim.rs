//! ChampSim `input_instr` trace format: parsing, writing, and ChampSim's
//! register-pattern branch classification.
//!
//! The paper's artifact runs on ChampSim with the Qualcomm IPC-1 traces,
//! which are distributed as streams of 64-byte `input_instr` records:
//!
//! ```c
//! struct input_instr {
//!     unsigned long long ip;                     //  8 bytes
//!     unsigned char is_branch;                   //  1
//!     unsigned char branch_taken;                //  1
//!     unsigned char destination_registers[2];    //  2
//!     unsigned char source_registers[4];         //  4
//!     unsigned long long destination_memory[2];  // 16
//!     unsigned long long source_memory[4];       // 32
//! };                                             // 64 bytes, no padding
//! ```
//!
//! Branch *class* is not stored; ChampSim infers it from which special
//! registers (stack pointer, instruction pointer, flags) the instruction
//! reads and writes, and derives the *target* from the next record's `ip`.
//! This module reproduces both conventions so genuine IPC-1 traces can be
//! replayed through the simulator, and can also serialize our synthetic
//! traces into the same format for interoperability.

use crate::record::{MemAccess, Op, TraceInstr};
use crate::source::{SeekableSource, TraceSource};
use btbx_core::types::{BranchClass, BranchEvent};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Size of one `input_instr` record in bytes.
pub const RECORD_BYTES: usize = 64;

/// Why a ChampSim byte stream stopped being parseable, pinned to the
/// byte offset where the damage starts.
#[derive(Debug)]
pub enum ChampSimError {
    /// The stream ended inside a record: `got` of the 64 bytes arrived.
    /// Typical of interrupted downloads and truncated conversions.
    TruncatedRecord {
        /// Byte offset of the partial record.
        offset: u64,
        /// Bytes of it that were present.
        got: usize,
    },
    /// The underlying reader failed at the given byte offset.
    Io {
        /// Byte offset where the read failed.
        offset: u64,
        /// The underlying error.
        error: io::Error,
    },
}

impl std::fmt::Display for ChampSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChampSimError::TruncatedRecord { offset, got } => write!(
                f,
                "truncated ChampSim record at byte {offset}: {got} of {RECORD_BYTES} bytes"
            ),
            ChampSimError::Io { offset, error } => {
                write!(f, "I/O error at byte {offset} of ChampSim stream: {error}")
            }
        }
    }
}

impl std::error::Error for ChampSimError {}

/// ChampSim's special register numbers (x86 translation convention).
pub mod reg {
    /// Stack pointer.
    pub const SP: u8 = 6;
    /// Flags register.
    pub const FLAGS: u8 = 25;
    /// Instruction pointer.
    pub const IP: u8 = 26;
    /// A generic non-special register used by our writer.
    pub const GPR: u8 = 10;
}

/// A raw 64-byte ChampSim record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InputInstr {
    /// Instruction pointer.
    pub ip: u64,
    /// Non-zero when the instruction is a branch.
    pub is_branch: u8,
    /// Non-zero when a branch was taken.
    pub branch_taken: u8,
    /// Destination registers (0 = unused).
    pub destination_registers: [u8; 2],
    /// Source registers (0 = unused).
    pub source_registers: [u8; 4],
    /// Store addresses (0 = unused).
    pub destination_memory: [u64; 2],
    /// Load addresses (0 = unused).
    pub source_memory: [u64; 4],
}

impl InputInstr {
    /// Decode from a 64-byte little-endian buffer.
    pub fn from_bytes(buf: &[u8; RECORD_BYTES]) -> Self {
        let u64le = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        InputInstr {
            ip: u64le(0),
            is_branch: buf[8],
            branch_taken: buf[9],
            destination_registers: [buf[10], buf[11]],
            source_registers: [buf[12], buf[13], buf[14], buf[15]],
            destination_memory: [u64le(16), u64le(24)],
            source_memory: [u64le(32), u64le(40), u64le(48), u64le(56)],
        }
    }

    /// Encode to the 64-byte little-endian layout.
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..8].copy_from_slice(&self.ip.to_le_bytes());
        buf[8] = self.is_branch;
        buf[9] = self.branch_taken;
        buf[10] = self.destination_registers[0];
        buf[11] = self.destination_registers[1];
        buf[12..16].copy_from_slice(&self.source_registers);
        buf[16..24].copy_from_slice(&self.destination_memory[0].to_le_bytes());
        buf[24..32].copy_from_slice(&self.destination_memory[1].to_le_bytes());
        for (i, m) in self.source_memory.iter().enumerate() {
            buf[32 + i * 8..40 + i * 8].copy_from_slice(&m.to_le_bytes());
        }
        buf
    }

    fn reads(&self, r: u8) -> bool {
        self.source_registers.contains(&r)
    }

    fn writes(&self, r: u8) -> bool {
        self.destination_registers.contains(&r)
    }

    fn reads_other(&self) -> bool {
        self.source_registers
            .iter()
            .any(|&r| r != 0 && r != reg::SP && r != reg::IP && r != reg::FLAGS)
    }

    /// ChampSim's branch classification from register read/write patterns
    /// (mirrors `ooo_cpu.cc`).
    pub fn classify(&self) -> Option<BranchClass> {
        if self.is_branch == 0 {
            return None;
        }
        let reads_sp = self.reads(reg::SP);
        let reads_ip = self.reads(reg::IP);
        let reads_flags = self.reads(reg::FLAGS);
        let writes_sp = self.writes(reg::SP);
        let writes_ip = self.writes(reg::IP);
        let reads_other = self.reads_other();

        let class = if reads_ip && !reads_sp && !reads_flags && !reads_other && writes_ip {
            BranchClass::UncondDirect
        } else if reads_ip && reads_flags && !reads_sp && !reads_other && writes_ip {
            BranchClass::CondDirect
        } else if reads_ip && reads_sp && writes_ip && writes_sp && !reads_other {
            BranchClass::CallDirect
        } else if reads_sp && writes_ip && writes_sp && reads_other {
            BranchClass::CallIndirect
        } else if reads_sp && writes_ip && writes_sp && !reads_ip && !reads_other {
            BranchClass::Return
        } else if writes_ip && reads_other && !reads_sp {
            BranchClass::UncondIndirect
        } else {
            // ChampSim's BRANCH_OTHER: treat as conditional so the
            // direction bit is honoured.
            BranchClass::CondDirect
        };
        Some(class)
    }

    /// Build the canonical register pattern for a branch class (used when
    /// writing traces).
    pub fn registers_for(class: BranchClass) -> ([u8; 2], [u8; 4]) {
        match class {
            BranchClass::UncondDirect => ([reg::IP, 0], [reg::IP, 0, 0, 0]),
            BranchClass::CondDirect => ([reg::IP, 0], [reg::IP, reg::FLAGS, 0, 0]),
            BranchClass::CallDirect => ([reg::IP, reg::SP], [reg::IP, reg::SP, 0, 0]),
            BranchClass::CallIndirect => ([reg::IP, reg::SP], [reg::SP, reg::GPR, 0, 0]),
            BranchClass::Return => ([reg::IP, reg::SP], [reg::SP, 0, 0, 0]),
            BranchClass::UncondIndirect => ([reg::IP, 0], [reg::GPR, 0, 0, 0]),
        }
    }
}

/// Streaming reader turning ChampSim records into [`TraceInstr`]s.
///
/// Targets are derived with one record of lookahead, exactly as ChampSim
/// does: the target of a taken branch is the `ip` of the next record; for
/// a not-taken branch no target is recoverable from the trace, so the
/// (unknown) taken target is reported as `ip + size` — such events carry
/// `taken = false` and never allocate BTB entries (Section VI-A).
pub struct ChampSimReader<R> {
    input: R,
    name: String,
    pending: Option<InputInstr>,
    /// Fixed instruction size assumed when reconstructing fall-through
    /// addresses (IPC-1 traces are Arm64: 4 bytes).
    pub instr_size: u8,
    eof: bool,
    /// Bytes consumed from `input` so far.
    offset: u64,
    error: Option<ChampSimError>,
}

impl<R: Read> ChampSimReader<R> {
    /// Wrap a byte stream of `input_instr` records.
    pub fn new(input: R, name: impl Into<String>) -> Self {
        ChampSimReader {
            input,
            name: name.into(),
            pending: None,
            instr_size: 4,
            eof: false,
            offset: 0,
            error: None,
        }
    }

    /// Why the stream stopped, if it stopped on damage rather than a
    /// clean end. `next_instr` returning `None` means *either* end of
    /// trace or an error; callers that must distinguish (converters,
    /// strict replays) check here afterwards. The reader never resumes
    /// past an error.
    pub fn error(&self) -> Option<&ChampSimError> {
        self.error.as_ref()
    }

    /// Consume the reader, surfacing any stream damage as `Err`.
    ///
    /// # Errors
    ///
    /// The [`ChampSimError`] that stopped the stream, if any.
    pub fn into_result(self) -> Result<(), ChampSimError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn read_record(&mut self) -> Option<InputInstr> {
        if self.eof {
            return None;
        }
        let mut buf = [0u8; RECORD_BYTES];
        let mut filled = 0;
        while filled < RECORD_BYTES {
            match self.input.read(&mut buf[filled..]) {
                Ok(0) => {
                    self.eof = true;
                    if filled > 0 {
                        // A partial record is damage, not end-of-trace:
                        // report where it starts instead of dropping it
                        // silently.
                        self.error = Some(ChampSimError::TruncatedRecord {
                            offset: self.offset,
                            got: filled,
                        });
                    }
                    return None;
                }
                Ok(n) => filled += n,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.eof = true;
                    self.error = Some(ChampSimError::Io {
                        offset: self.offset + filled as u64,
                        error: e,
                    });
                    return None;
                }
            }
        }
        self.offset += RECORD_BYTES as u64;
        Some(InputInstr::from_bytes(&buf))
    }

    fn convert(&self, cur: InputInstr, next: Option<&InputInstr>) -> TraceInstr {
        convert_record(cur, next, self.instr_size)
    }
}

/// Turn one ChampSim record into a [`TraceInstr`], deriving the taken
/// target from the next record's `ip` exactly as ChampSim does (see the
/// [`ChampSimReader`] docs for the not-taken convention).
fn convert_record(cur: InputInstr, next: Option<&InputInstr>, size: u8) -> TraceInstr {
    if let Some(class) = cur.classify() {
        let fallthrough = cur.ip + size as u64;
        let taken = cur.branch_taken != 0;
        let target = if taken {
            next.map_or(fallthrough, |n| n.ip)
        } else {
            fallthrough
        };
        return TraceInstr::branch(
            cur.ip,
            size,
            BranchEvent {
                pc: cur.ip,
                target,
                class,
                taken,
            },
        );
    }
    if cur.source_memory[0] != 0 {
        return TraceInstr::mem(cur.ip, size, MemAccess::Load(cur.source_memory[0]));
    }
    if cur.destination_memory[0] != 0 {
        return TraceInstr::mem(cur.ip, size, MemAccess::Store(cur.destination_memory[0]));
    }
    TraceInstr::other(cur.ip, size)
}

impl<R: Read> TraceSource for ChampSimReader<R> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        let cur = match self.pending.take() {
            Some(c) => c,
            None => self.read_record()?,
        };
        self.pending = self.read_record();
        Some(self.convert(cur, self.pending.as_ref()))
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

/// Serialize a stream of [`TraceInstr`]s as ChampSim records.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_champsim<W: Write>(
    mut out: W,
    instrs: impl IntoIterator<Item = TraceInstr>,
) -> io::Result<u64> {
    let mut written = 0u64;
    for instr in instrs {
        let mut rec = InputInstr {
            ip: instr.pc,
            ..InputInstr::default()
        };
        match instr.op {
            Op::Other => {}
            Op::Mem(MemAccess::Load(a)) => rec.source_memory[0] = a,
            Op::Mem(MemAccess::Store(a)) => rec.destination_memory[0] = a,
            Op::Branch(ev) => {
                rec.is_branch = 1;
                rec.branch_taken = ev.taken as u8;
                let (dst, src) = InputInstr::registers_for(ev.class);
                rec.destination_registers = dst;
                rec.source_registers = src;
            }
        }
        out.write_all(&rec.to_bytes())?;
        written += 1;
    }
    Ok(written)
}

/// A seekable [`TraceSource`] over an *uncompressed* ChampSim trace
/// file: because records are fixed 64-byte cells, instruction `i` lives
/// at byte `i × 64` and a checkpoint is just the instruction index —
/// `checkpoint`/`restore`/`seek` are O(1) plus one buffered re-read.
/// This is the `champsim` arm of [`crate::any::AnySource`]; prefer
/// converting to a `.btbt` container (`btbx trace convert`) for
/// repeated runs, which decodes ~4× fewer bytes per event.
///
/// Malformed tails are rejected *at open* (the file length exposes a
/// partial trailing record immediately), so replay never silently drops
/// records the way a forward-only stream reader has to.
#[derive(Debug)]
pub struct ChampSimFileSource {
    file: Arc<Mutex<File>>,
    name: String,
    /// Whole records in the file.
    records: u64,
    /// Instructions emitted (= index of the next record to convert).
    pos: u64,
    /// Buffered window of raw records: covers indices
    /// `[buf_first, buf_first + buf.len()/64)`.
    buf: Vec<u8>,
    buf_first: u64,
    instr_size: u8,
}

/// Snapshot of a [`ChampSimFileSource`]: the instruction index plus the
/// record count as a cheap foreign-stream guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChampSimCheckpoint {
    pos: u64,
    records: u64,
}

/// Records buffered per read window (64 KiB of file bytes).
const FILE_CHUNK_RECORDS: u64 = 1024;

impl ChampSimFileSource {
    /// Open an uncompressed ChampSim trace file.
    ///
    /// # Errors
    ///
    /// [`ChampSimError::Io`] when the file cannot be opened or sized;
    /// [`ChampSimError::TruncatedRecord`] when the length is not a
    /// multiple of [`RECORD_BYTES`] (a partial trailing record).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ChampSimError> {
        let path = path.as_ref();
        let io_err = |error| ChampSimError::Io { offset: 0, error };
        let file = File::open(path).map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        let partial = len % RECORD_BYTES as u64;
        if partial != 0 {
            return Err(ChampSimError::TruncatedRecord {
                offset: len - partial,
                got: partial as usize,
            });
        }
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "champsim".to_string());
        Ok(ChampSimFileSource {
            file: Arc::new(Mutex::new(file)),
            name,
            records: len / RECORD_BYTES as u64,
            pos: 0,
            buf: Vec::new(),
            buf_first: 0,
            instr_size: 4,
        })
    }

    /// Total instructions in the trace.
    pub fn len_instrs(&self) -> u64 {
        self.records
    }

    /// Override the fixed instruction size assumed when reconstructing
    /// fall-through addresses (default 4, the Arm64/IPC-1 convention —
    /// ChampSim records carry no size field, so x86 streams need an
    /// explicit, necessarily approximate choice).
    pub fn with_instr_size(mut self, size: u8) -> Self {
        self.instr_size = size;
        self
    }

    /// Fetch record `i`, reading a fresh 64 KiB window when the buffer
    /// does not cover it.
    ///
    /// # Panics
    ///
    /// Panics when the file shrinks or a read fails *after* open
    /// (open-time validation sized the whole file): replay cannot
    /// continue soundly past missing bytes, and `TraceSource` has no
    /// error channel, so external interference is loud by design —
    /// inside a sharded run the runner converts the panic into a failed
    /// run labelled with the shard.
    fn record_at(&mut self, i: u64) -> Option<InputInstr> {
        if i >= self.records {
            return None;
        }
        let buffered = (self.buf.len() / RECORD_BYTES) as u64;
        if i < self.buf_first || i >= self.buf_first + buffered {
            let first = i;
            let count = FILE_CHUNK_RECORDS.min(self.records - first);
            self.buf.resize(count as usize * RECORD_BYTES, 0);
            let mut file = self.file.lock().unwrap();
            file.seek(SeekFrom::Start(first * RECORD_BYTES as u64))
                .expect("seeking a sized ChampSim trace");
            file.read_exact(&mut self.buf)
                .expect("reading a sized ChampSim trace");
            self.buf_first = first;
        }
        let at = (i - self.buf_first) as usize * RECORD_BYTES;
        let cell: &[u8; RECORD_BYTES] = self.buf[at..at + RECORD_BYTES].try_into().unwrap();
        Some(InputInstr::from_bytes(cell))
    }
}

impl Clone for ChampSimFileSource {
    /// Clones share the file handle; cursor and read buffer are
    /// per-instance.
    fn clone(&self) -> Self {
        ChampSimFileSource {
            file: Arc::clone(&self.file),
            name: self.name.clone(),
            records: self.records,
            pos: self.pos,
            buf: Vec::new(),
            buf_first: 0,
            instr_size: self.instr_size,
        }
    }
}

impl TraceSource for ChampSimFileSource {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        let cur = self.record_at(self.pos)?;
        let next = self.record_at(self.pos + 1);
        self.pos += 1;
        Some(convert_record(cur, next.as_ref(), self.instr_size))
    }

    fn source_name(&self) -> &str {
        &self.name
    }

    fn advance(&mut self, n: u64) -> u64 {
        let left = self.records - self.pos;
        let skipped = n.min(left);
        self.pos += skipped;
        skipped
    }
}

impl SeekableSource for ChampSimFileSource {
    type Checkpoint = ChampSimCheckpoint;

    fn position(&self) -> u64 {
        self.pos
    }

    fn checkpoint(&self) -> ChampSimCheckpoint {
        ChampSimCheckpoint {
            pos: self.pos,
            records: self.records,
        }
    }

    fn restore(&mut self, cp: &ChampSimCheckpoint) {
        assert_eq!(
            cp.records, self.records,
            "checkpoint from a different trace (record count mismatch)"
        );
        self.pos = cp.pos;
    }

    fn seek(&mut self, n: u64) -> u64 {
        self.pos = n.min(self.records);
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_layout_is_64_bytes_and_round_trips() {
        let rec = InputInstr {
            ip: 0xdead_beef_1234,
            is_branch: 1,
            branch_taken: 1,
            destination_registers: [reg::IP, reg::SP],
            source_registers: [reg::IP, reg::SP, 0, 0],
            destination_memory: [0x10, 0],
            source_memory: [0x20, 0x28, 0, 0],
        };
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), RECORD_BYTES);
        assert_eq!(InputInstr::from_bytes(&bytes), rec);
    }

    #[test]
    fn classification_covers_all_classes() {
        for class in BranchClass::ALL {
            let (dst, src) = InputInstr::registers_for(class);
            let rec = InputInstr {
                ip: 0x1000,
                is_branch: 1,
                branch_taken: 1,
                destination_registers: dst,
                source_registers: src,
                ..InputInstr::default()
            };
            assert_eq!(rec.classify(), Some(class), "{class}");
        }
    }

    #[test]
    fn non_branch_has_no_class() {
        assert_eq!(InputInstr::default().classify(), None);
    }

    #[test]
    fn reader_derives_target_from_next_ip() {
        let recs = vec![
            // taken direct jump at 0x1000 …
            InputInstr {
                ip: 0x1000,
                is_branch: 1,
                branch_taken: 1,
                destination_registers: InputInstr::registers_for(BranchClass::UncondDirect).0,
                source_registers: InputInstr::registers_for(BranchClass::UncondDirect).1,
                ..InputInstr::default()
            },
            // … lands at 0x2000.
            InputInstr {
                ip: 0x2000,
                ..InputInstr::default()
            },
        ];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.to_bytes());
        }
        let mut reader = ChampSimReader::new(&bytes[..], "t");
        let b = reader.next_instr().unwrap();
        let ev = b.branch_event().unwrap();
        assert_eq!(ev.target, 0x2000);
        assert!(ev.taken);
        let plain = reader.next_instr().unwrap();
        assert_eq!(plain.pc, 0x2000);
        assert!(reader.next_instr().is_none());
    }

    #[test]
    fn writer_reader_round_trip_preserves_semantics() {
        use btbx_core::types::BranchClass;
        let original = vec![
            TraceInstr::other(0x100, 4),
            TraceInstr::mem(0x104, 4, MemAccess::Load(0x9000)),
            TraceInstr::branch(
                0x108,
                4,
                BranchEvent::taken(0x108, 0x200, BranchClass::CallDirect),
            ),
            TraceInstr::other(0x200, 4),
            TraceInstr::branch(0x204, 4, BranchEvent::not_taken(0x204, 0x300)),
            TraceInstr::other(0x208, 4),
        ];
        let mut bytes = Vec::new();
        write_champsim(&mut bytes, original.clone()).unwrap();
        let reader = ChampSimReader::new(&bytes[..], "rt");
        let back: Vec<TraceInstr> = reader.into_iter_instrs().collect();
        assert_eq!(back.len(), original.len());
        for (a, b) in original.iter().zip(&back) {
            assert_eq!(a.pc, b.pc);
            match (a.branch_event(), b.branch_event()) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.class, y.class);
                    assert_eq!(x.taken, y.taken);
                    if x.taken {
                        assert_eq!(x.target, y.target, "taken targets recoverable");
                    }
                }
                (None, None) => {}
                _ => panic!("branchness changed in round trip"),
            }
        }
    }

    #[test]
    fn truncated_trailing_record_is_a_typed_error() {
        let rec = InputInstr {
            ip: 0x1000,
            ..InputInstr::default()
        };
        let mut bytes = rec.to_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]); // partial second record
        let mut reader = ChampSimReader::new(&bytes[..], "trunc");
        assert_eq!(reader.next_instr().unwrap().pc, 0x1000);
        assert!(reader.next_instr().is_none(), "partial record not emitted");
        match reader.error() {
            Some(ChampSimError::TruncatedRecord { offset, got }) => {
                assert_eq!(*offset, RECORD_BYTES as u64, "damage starts after rec 0");
                assert_eq!(*got, 3);
            }
            other => panic!("expected TruncatedRecord, got {other:?}"),
        }
        let err = reader.into_result().unwrap_err();
        assert!(err.to_string().contains("byte 64"), "{err}");
    }

    #[test]
    fn clean_end_of_trace_reports_no_error() {
        let bytes = InputInstr::default().to_bytes();
        let mut reader = ChampSimReader::new(&bytes[..], "clean");
        assert!(reader.next_instr().is_some());
        assert!(reader.next_instr().is_none());
        assert!(reader.error().is_none());
        assert!(reader.into_result().is_ok());
    }

    /// A reader that yields some whole records, then fails.
    struct FailAfter {
        bytes: Vec<u8>,
        served: usize,
    }

    impl io::Read for FailAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.served >= self.bytes.len() {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "link died"));
            }
            let n = buf.len().min(self.bytes.len() - self.served);
            buf[..n].copy_from_slice(&self.bytes[self.served..self.served + n]);
            self.served += n;
            Ok(n)
        }
    }

    #[test]
    fn io_failures_are_typed_errors_with_offsets() {
        let mut bytes = Vec::new();
        for ip in [0x10u64, 0x20] {
            bytes.extend_from_slice(
                &InputInstr {
                    ip,
                    ..InputInstr::default()
                }
                .to_bytes(),
            );
        }
        let mut reader = ChampSimReader::new(FailAfter { bytes, served: 0 }, "io");
        assert!(reader.next_instr().is_some());
        // Record 1 is pending (lookahead); record 2's read fails.
        assert!(reader.next_instr().is_some());
        assert!(reader.next_instr().is_none());
        match reader.error() {
            Some(ChampSimError::Io { offset, error }) => {
                assert_eq!(*offset, 2 * RECORD_BYTES as u64);
                assert_eq!(error.kind(), io::ErrorKind::BrokenPipe);
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    fn temp_trace(tag: &str, records: &[InputInstr]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("btbx-champsim-{tag}-{}", std::process::id()));
        let mut bytes = Vec::new();
        for r in records {
            bytes.extend_from_slice(&r.to_bytes());
        }
        std::fs::write(&path, bytes).unwrap();
        path
    }

    fn jump_chain(n: u64) -> Vec<InputInstr> {
        let (dst, src) = InputInstr::registers_for(BranchClass::UncondDirect);
        (0..n)
            .map(|i| InputInstr {
                ip: 0x1000 + i * 0x100,
                is_branch: 1,
                branch_taken: 1,
                destination_registers: dst,
                source_registers: src,
                ..InputInstr::default()
            })
            .collect()
    }

    #[test]
    fn file_source_matches_the_streaming_reader() {
        let recs = jump_chain(2500); // spans two buffered windows
        let path = temp_trace("match", &recs);
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.to_bytes());
        }
        let streamed: Vec<TraceInstr> = ChampSimReader::new(&bytes[..], "s")
            .into_iter_instrs()
            .collect();
        let source = ChampSimFileSource::open(&path).unwrap();
        assert_eq!(source.len_instrs(), 2500);
        let filed: Vec<TraceInstr> = source.into_iter_instrs().collect();
        assert_eq!(filed, streamed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_source_seeks_and_restores_in_o1() {
        let recs = jump_chain(2000);
        let path = temp_trace("seek", &recs);
        let mut s = ChampSimFileSource::open(&path).unwrap();
        let all: Vec<TraceInstr> = s.clone().into_iter_instrs().collect();
        s.seek(1500);
        assert_eq!(s.next_instr().unwrap(), all[1500]);
        let cp = s.checkpoint();
        s.seek(10);
        assert_eq!(s.next_instr().unwrap(), all[10], "seek rewinds");
        s.restore(&cp);
        assert_eq!(s.next_instr().unwrap(), all[1501]);
        assert_eq!(s.seek(1 << 40), 2000, "clamped to end");
        assert!(s.next_instr().is_none());

        let mut b = s.clone();
        b.seek(7);
        s.seek(9);
        assert_eq!(b.position(), 7, "clones position independently");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_source_rejects_partial_tails_at_open() {
        let recs = jump_chain(3);
        let path = temp_trace("tail", &recs);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAA; 10]);
        std::fs::write(&path, &bytes).unwrap();
        match ChampSimFileSource::open(&path) {
            Err(ChampSimError::TruncatedRecord { offset, got }) => {
                assert_eq!(offset, 3 * RECORD_BYTES as u64);
                assert_eq!(got, 10);
            }
            other => panic!("expected TruncatedRecord, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
