//! ChampSim `input_instr` trace format: parsing, writing, and ChampSim's
//! register-pattern branch classification.
//!
//! The paper's artifact runs on ChampSim with the Qualcomm IPC-1 traces,
//! which are distributed as streams of 64-byte `input_instr` records:
//!
//! ```c
//! struct input_instr {
//!     unsigned long long ip;                     //  8 bytes
//!     unsigned char is_branch;                   //  1
//!     unsigned char branch_taken;                //  1
//!     unsigned char destination_registers[2];    //  2
//!     unsigned char source_registers[4];         //  4
//!     unsigned long long destination_memory[2];  // 16
//!     unsigned long long source_memory[4];       // 32
//! };                                             // 64 bytes, no padding
//! ```
//!
//! Branch *class* is not stored; ChampSim infers it from which special
//! registers (stack pointer, instruction pointer, flags) the instruction
//! reads and writes, and derives the *target* from the next record's `ip`.
//! This module reproduces both conventions so genuine IPC-1 traces can be
//! replayed through the simulator, and can also serialize our synthetic
//! traces into the same format for interoperability.

use crate::record::{MemAccess, Op, TraceInstr};
use crate::source::TraceSource;
use btbx_core::types::{BranchClass, BranchEvent};
use std::io::{self, Read, Write};

/// Size of one `input_instr` record in bytes.
pub const RECORD_BYTES: usize = 64;

/// ChampSim's special register numbers (x86 translation convention).
pub mod reg {
    /// Stack pointer.
    pub const SP: u8 = 6;
    /// Flags register.
    pub const FLAGS: u8 = 25;
    /// Instruction pointer.
    pub const IP: u8 = 26;
    /// A generic non-special register used by our writer.
    pub const GPR: u8 = 10;
}

/// A raw 64-byte ChampSim record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InputInstr {
    /// Instruction pointer.
    pub ip: u64,
    /// Non-zero when the instruction is a branch.
    pub is_branch: u8,
    /// Non-zero when a branch was taken.
    pub branch_taken: u8,
    /// Destination registers (0 = unused).
    pub destination_registers: [u8; 2],
    /// Source registers (0 = unused).
    pub source_registers: [u8; 4],
    /// Store addresses (0 = unused).
    pub destination_memory: [u64; 2],
    /// Load addresses (0 = unused).
    pub source_memory: [u64; 4],
}

impl InputInstr {
    /// Decode from a 64-byte little-endian buffer.
    pub fn from_bytes(buf: &[u8; RECORD_BYTES]) -> Self {
        let u64le = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        InputInstr {
            ip: u64le(0),
            is_branch: buf[8],
            branch_taken: buf[9],
            destination_registers: [buf[10], buf[11]],
            source_registers: [buf[12], buf[13], buf[14], buf[15]],
            destination_memory: [u64le(16), u64le(24)],
            source_memory: [u64le(32), u64le(40), u64le(48), u64le(56)],
        }
    }

    /// Encode to the 64-byte little-endian layout.
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..8].copy_from_slice(&self.ip.to_le_bytes());
        buf[8] = self.is_branch;
        buf[9] = self.branch_taken;
        buf[10] = self.destination_registers[0];
        buf[11] = self.destination_registers[1];
        buf[12..16].copy_from_slice(&self.source_registers);
        buf[16..24].copy_from_slice(&self.destination_memory[0].to_le_bytes());
        buf[24..32].copy_from_slice(&self.destination_memory[1].to_le_bytes());
        for (i, m) in self.source_memory.iter().enumerate() {
            buf[32 + i * 8..40 + i * 8].copy_from_slice(&m.to_le_bytes());
        }
        buf
    }

    fn reads(&self, r: u8) -> bool {
        self.source_registers.contains(&r)
    }

    fn writes(&self, r: u8) -> bool {
        self.destination_registers.contains(&r)
    }

    fn reads_other(&self) -> bool {
        self.source_registers
            .iter()
            .any(|&r| r != 0 && r != reg::SP && r != reg::IP && r != reg::FLAGS)
    }

    /// ChampSim's branch classification from register read/write patterns
    /// (mirrors `ooo_cpu.cc`).
    pub fn classify(&self) -> Option<BranchClass> {
        if self.is_branch == 0 {
            return None;
        }
        let reads_sp = self.reads(reg::SP);
        let reads_ip = self.reads(reg::IP);
        let reads_flags = self.reads(reg::FLAGS);
        let writes_sp = self.writes(reg::SP);
        let writes_ip = self.writes(reg::IP);
        let reads_other = self.reads_other();

        let class = if reads_ip && !reads_sp && !reads_flags && !reads_other && writes_ip {
            BranchClass::UncondDirect
        } else if reads_ip && reads_flags && !reads_sp && !reads_other && writes_ip {
            BranchClass::CondDirect
        } else if reads_ip && reads_sp && writes_ip && writes_sp && !reads_other {
            BranchClass::CallDirect
        } else if reads_sp && writes_ip && writes_sp && reads_other {
            BranchClass::CallIndirect
        } else if reads_sp && writes_ip && writes_sp && !reads_ip && !reads_other {
            BranchClass::Return
        } else if writes_ip && reads_other && !reads_sp {
            BranchClass::UncondIndirect
        } else {
            // ChampSim's BRANCH_OTHER: treat as conditional so the
            // direction bit is honoured.
            BranchClass::CondDirect
        };
        Some(class)
    }

    /// Build the canonical register pattern for a branch class (used when
    /// writing traces).
    pub fn registers_for(class: BranchClass) -> ([u8; 2], [u8; 4]) {
        match class {
            BranchClass::UncondDirect => ([reg::IP, 0], [reg::IP, 0, 0, 0]),
            BranchClass::CondDirect => ([reg::IP, 0], [reg::IP, reg::FLAGS, 0, 0]),
            BranchClass::CallDirect => ([reg::IP, reg::SP], [reg::IP, reg::SP, 0, 0]),
            BranchClass::CallIndirect => ([reg::IP, reg::SP], [reg::SP, reg::GPR, 0, 0]),
            BranchClass::Return => ([reg::IP, reg::SP], [reg::SP, 0, 0, 0]),
            BranchClass::UncondIndirect => ([reg::IP, 0], [reg::GPR, 0, 0, 0]),
        }
    }
}

/// Streaming reader turning ChampSim records into [`TraceInstr`]s.
///
/// Targets are derived with one record of lookahead, exactly as ChampSim
/// does: the target of a taken branch is the `ip` of the next record; for
/// a not-taken branch no target is recoverable from the trace, so the
/// (unknown) taken target is reported as `ip + size` — such events carry
/// `taken = false` and never allocate BTB entries (Section VI-A).
pub struct ChampSimReader<R> {
    input: R,
    name: String,
    pending: Option<InputInstr>,
    /// Fixed instruction size assumed when reconstructing fall-through
    /// addresses (IPC-1 traces are Arm64: 4 bytes).
    pub instr_size: u8,
    eof: bool,
}

impl<R: Read> ChampSimReader<R> {
    /// Wrap a byte stream of `input_instr` records.
    pub fn new(input: R, name: impl Into<String>) -> Self {
        ChampSimReader {
            input,
            name: name.into(),
            pending: None,
            instr_size: 4,
            eof: false,
        }
    }

    fn read_record(&mut self) -> Option<InputInstr> {
        if self.eof {
            return None;
        }
        let mut buf = [0u8; RECORD_BYTES];
        let mut filled = 0;
        while filled < RECORD_BYTES {
            match self.input.read(&mut buf[filled..]) {
                Ok(0) => {
                    self.eof = true;
                    return None; // truncated tail records are dropped
                }
                Ok(n) => filled += n,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.eof = true;
                    return None;
                }
            }
        }
        Some(InputInstr::from_bytes(&buf))
    }

    fn convert(&self, cur: InputInstr, next: Option<&InputInstr>) -> TraceInstr {
        let size = self.instr_size;
        if let Some(class) = cur.classify() {
            let fallthrough = cur.ip + size as u64;
            let taken = cur.branch_taken != 0;
            let target = if taken {
                next.map_or(fallthrough, |n| n.ip)
            } else {
                fallthrough
            };
            return TraceInstr::branch(
                cur.ip,
                size,
                BranchEvent {
                    pc: cur.ip,
                    target,
                    class,
                    taken,
                },
            );
        }
        if cur.source_memory[0] != 0 {
            return TraceInstr::mem(cur.ip, size, MemAccess::Load(cur.source_memory[0]));
        }
        if cur.destination_memory[0] != 0 {
            return TraceInstr::mem(cur.ip, size, MemAccess::Store(cur.destination_memory[0]));
        }
        TraceInstr::other(cur.ip, size)
    }
}

impl<R: Read> TraceSource for ChampSimReader<R> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        let cur = match self.pending.take() {
            Some(c) => c,
            None => self.read_record()?,
        };
        self.pending = self.read_record();
        Some(self.convert(cur, self.pending.as_ref()))
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

/// Serialize a stream of [`TraceInstr`]s as ChampSim records.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_champsim<W: Write>(
    mut out: W,
    instrs: impl IntoIterator<Item = TraceInstr>,
) -> io::Result<u64> {
    let mut written = 0u64;
    for instr in instrs {
        let mut rec = InputInstr {
            ip: instr.pc,
            ..InputInstr::default()
        };
        match instr.op {
            Op::Other => {}
            Op::Mem(MemAccess::Load(a)) => rec.source_memory[0] = a,
            Op::Mem(MemAccess::Store(a)) => rec.destination_memory[0] = a,
            Op::Branch(ev) => {
                rec.is_branch = 1;
                rec.branch_taken = ev.taken as u8;
                let (dst, src) = InputInstr::registers_for(ev.class);
                rec.destination_registers = dst;
                rec.source_registers = src;
            }
        }
        out.write_all(&rec.to_bytes())?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_layout_is_64_bytes_and_round_trips() {
        let rec = InputInstr {
            ip: 0xdead_beef_1234,
            is_branch: 1,
            branch_taken: 1,
            destination_registers: [reg::IP, reg::SP],
            source_registers: [reg::IP, reg::SP, 0, 0],
            destination_memory: [0x10, 0],
            source_memory: [0x20, 0x28, 0, 0],
        };
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), RECORD_BYTES);
        assert_eq!(InputInstr::from_bytes(&bytes), rec);
    }

    #[test]
    fn classification_covers_all_classes() {
        for class in BranchClass::ALL {
            let (dst, src) = InputInstr::registers_for(class);
            let rec = InputInstr {
                ip: 0x1000,
                is_branch: 1,
                branch_taken: 1,
                destination_registers: dst,
                source_registers: src,
                ..InputInstr::default()
            };
            assert_eq!(rec.classify(), Some(class), "{class}");
        }
    }

    #[test]
    fn non_branch_has_no_class() {
        assert_eq!(InputInstr::default().classify(), None);
    }

    #[test]
    fn reader_derives_target_from_next_ip() {
        let recs = vec![
            // taken direct jump at 0x1000 …
            InputInstr {
                ip: 0x1000,
                is_branch: 1,
                branch_taken: 1,
                destination_registers: InputInstr::registers_for(BranchClass::UncondDirect).0,
                source_registers: InputInstr::registers_for(BranchClass::UncondDirect).1,
                ..InputInstr::default()
            },
            // … lands at 0x2000.
            InputInstr {
                ip: 0x2000,
                ..InputInstr::default()
            },
        ];
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.to_bytes());
        }
        let mut reader = ChampSimReader::new(&bytes[..], "t");
        let b = reader.next_instr().unwrap();
        let ev = b.branch_event().unwrap();
        assert_eq!(ev.target, 0x2000);
        assert!(ev.taken);
        let plain = reader.next_instr().unwrap();
        assert_eq!(plain.pc, 0x2000);
        assert!(reader.next_instr().is_none());
    }

    #[test]
    fn writer_reader_round_trip_preserves_semantics() {
        use btbx_core::types::BranchClass;
        let original = vec![
            TraceInstr::other(0x100, 4),
            TraceInstr::mem(0x104, 4, MemAccess::Load(0x9000)),
            TraceInstr::branch(
                0x108,
                4,
                BranchEvent::taken(0x108, 0x200, BranchClass::CallDirect),
            ),
            TraceInstr::other(0x200, 4),
            TraceInstr::branch(0x204, 4, BranchEvent::not_taken(0x204, 0x300)),
            TraceInstr::other(0x208, 4),
        ];
        let mut bytes = Vec::new();
        write_champsim(&mut bytes, original.clone()).unwrap();
        let reader = ChampSimReader::new(&bytes[..], "rt");
        let back: Vec<TraceInstr> = reader.into_iter_instrs().collect();
        assert_eq!(back.len(), original.len());
        for (a, b) in original.iter().zip(&back) {
            assert_eq!(a.pc, b.pc);
            match (a.branch_event(), b.branch_event()) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.class, y.class);
                    assert_eq!(x.taken, y.taken);
                    if x.taken {
                        assert_eq!(x.target, y.target, "taken targets recoverable");
                    }
                }
                (None, None) => {}
                _ => panic!("branchness changed in round trip"),
            }
        }
    }

    #[test]
    fn truncated_trailing_record_is_dropped() {
        let rec = InputInstr {
            ip: 0x1000,
            ..InputInstr::default()
        };
        let mut bytes = rec.to_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]); // garbage tail
        let reader = ChampSimReader::new(&bytes[..], "trunc");
        assert_eq!(reader.into_iter_instrs().count(), 1);
    }
}
