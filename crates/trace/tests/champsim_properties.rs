//! Property tests for the ChampSim `input_instr` codec: arbitrary
//! instruction streams must survive a write→parse round trip up to the
//! format's documented information loss (no sizes, targets recovered from
//! the next record's `ip`), and the register-pattern branch
//! classification must be a stable fixpoint under re-serialization.
//!
//! The `.btbt` container properties live here too: parsed ChampSim
//! streams — and arbitrary streams with non-canonical addresses that
//! force escape records — must survive the container round trip
//! *exactly*, from any seek position.

use btbx_core::types::{Arch, BranchClass, BranchEvent};
use btbx_trace::champsim::{write_champsim, ChampSimReader, InputInstr};
use btbx_trace::container::{write_container, PackedFileSource};
use btbx_trace::record::{MemAccess, Op, TraceInstr};
use btbx_trace::source::{SeekableSource, TraceSource, VecSource};
use proptest::prelude::*;

fn parse(bytes: &[u8]) -> Vec<TraceInstr> {
    ChampSimReader::new(bytes, "prop")
        .into_iter_instrs()
        .collect()
}

fn write(instrs: &[TraceInstr]) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_champsim(&mut bytes, instrs.to_vec()).expect("Vec sink cannot fail");
    bytes
}

/// Any 48-bit instruction-aligned PC.
fn arb_pc() -> impl Strategy<Value = u64> {
    (0u64..(1 << 46)).prop_map(|v| v << 2)
}

fn arb_class() -> impl Strategy<Value = BranchClass> {
    (0usize..BranchClass::ALL.len()).prop_map(|i| BranchClass::ALL[i])
}

/// Arbitrary (not control-flow-coherent) instructions. ChampSim records
/// carry one memory slot each way, so the generator sticks to a single
/// load *or* store per instruction, as `write_champsim` does.
fn arb_instr() -> impl Strategy<Value = TraceInstr> {
    (arb_pc(), 0u8..4).prop_flat_map(|(pc, kind)| match kind {
        0 => Just(TraceInstr::other(pc, 4)).boxed(),
        1 => (1u64..u64::MAX)
            .prop_map(move |a| TraceInstr::mem(pc, 4, MemAccess::Load(a)))
            .boxed(),
        2 => (1u64..u64::MAX)
            .prop_map(move |a| TraceInstr::mem(pc, 4, MemAccess::Store(a)))
            .boxed(),
        _ => (arb_pc(), arb_class(), any::<bool>())
            .prop_map(move |(target, class, taken)| {
                TraceInstr::branch(
                    pc,
                    4,
                    BranchEvent {
                        pc,
                        target,
                        class,
                        taken,
                    },
                )
            })
            .boxed(),
    })
}

/// A control-flow-coherent stream: every taken branch's target is the
/// next record's PC and everything else falls through, exactly the
/// invariant real ChampSim traces satisfy. Ends with a non-branch so the
/// final branch target is always recoverable.
fn arb_coherent_stream() -> impl Strategy<Value = Vec<TraceInstr>> {
    (
        arb_pc(),
        proptest::collection::vec((0u8..4, arb_pc(), arb_class(), any::<bool>()), 1..150),
    )
        .prop_map(|(start, steps)| {
            let mut pc = start;
            let mut instrs = Vec::with_capacity(steps.len() + 1);
            for (kind, jump_target, class, taken) in steps {
                match kind {
                    0 => instrs.push(TraceInstr::other(pc, 4)),
                    1 => instrs.push(TraceInstr::mem(pc, 4, MemAccess::Load(pc | 1 << 50))),
                    2 => instrs.push(TraceInstr::mem(pc, 4, MemAccess::Store(pc | 1 << 51))),
                    _ => {
                        let fallthrough = pc + 4;
                        let target = if taken { jump_target } else { fallthrough };
                        instrs.push(TraceInstr::branch(
                            pc,
                            4,
                            BranchEvent {
                                pc,
                                target,
                                class,
                                taken,
                            },
                        ));
                        pc = target;
                        continue;
                    }
                }
                pc += 4;
            }
            instrs.push(TraceInstr::other(pc, 4));
            instrs
        })
}

/// Arbitrary instructions *including* non-canonical ones: addresses
/// above the 48-bit canonical range and branch events whose `pc`
/// disagrees with the instruction `pc` — everything that forces the
/// packed format's escape table.
fn arb_weird_instr() -> impl Strategy<Value = TraceInstr> {
    (
        any::<u64>(),
        any::<u64>(),
        0u8..6,
        arb_class(),
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(|(pc, payload, kind, class, taken, size)| match kind {
            0 => TraceInstr::other(pc, size),
            1 => TraceInstr::mem(pc, size, MemAccess::Load(payload)),
            2 => TraceInstr::mem(pc, size, MemAccess::Store(payload)),
            // Coherent branch (event pc == instruction pc).
            3 => TraceInstr {
                pc,
                size,
                op: Op::Branch(BranchEvent {
                    pc,
                    target: payload,
                    class,
                    taken,
                }),
            },
            // Mismatched event pc: constructible in release builds,
            // must escape losslessly rather than decode rewritten.
            _ => TraceInstr {
                pc,
                size,
                op: Op::Branch(BranchEvent {
                    pc: pc.wrapping_add(8),
                    target: payload,
                    class,
                    taken,
                }),
            },
        })
}

/// Write `instrs` into a `.btbt` container in a temp file and read the
/// whole stream back.
fn container_round_trip(
    tag: &str,
    instrs: &[TraceInstr],
) -> (PackedFileSource, std::path::PathBuf) {
    let path = std::env::temp_dir().join(format!("btbx-prop-{tag}-{}", std::process::id()));
    let file = std::fs::File::create(&path).expect("temp container");
    let mut source = VecSource::new("prop", instrs.to_vec());
    write_container(file, "prop", Arch::Arm64, &mut source, u64::MAX).expect("container writes");
    (
        PackedFileSource::open(&path).expect("container reads"),
        path,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary streams survive the round trip up to the format's
    /// lossiness: PCs, branchness, classes and direction bits always
    /// survive; a taken branch's target is re-derived as the next
    /// record's `ip` (ChampSim stores no targets).
    #[test]
    fn arbitrary_streams_round_trip(instrs in proptest::collection::vec(arb_instr(), 1..150)) {
        let back = parse(&write(&instrs));
        prop_assert_eq!(back.len(), instrs.len());
        for (i, (a, b)) in instrs.iter().zip(&back).enumerate() {
            prop_assert_eq!(a.pc, b.pc, "pc changed at {}", i);
            match (a.branch_event(), b.branch_event()) {
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.class, y.class, "class changed at {}", i);
                    prop_assert_eq!(x.taken, y.taken, "direction changed at {}", i);
                    if x.taken {
                        let expect = instrs.get(i + 1).map_or(a.pc + 4, |n| n.pc);
                        prop_assert_eq!(y.target, expect, "target not next ip at {}", i);
                    }
                }
                (None, None) => {
                    // Memory semantics survive too (single-slot form).
                    match (a.op, b.op) {
                        (Op::Mem(x), Op::Mem(y)) => prop_assert_eq!(x, y, "memory changed at {}", i),
                        (Op::Other, Op::Other) => {}
                        (x, y) => {
                            return Err(TestCaseError(format!("op kind changed at {i}: {x:?} vs {y:?}")));
                        }
                    }
                }
                _ => return Err(TestCaseError(format!("branchness changed at {i}"))),
            }
        }
    }

    /// Coherent streams (targets = next ip) round-trip with *full*
    /// branch-event fidelity — every field of every event.
    #[test]
    fn coherent_streams_round_trip_exactly(instrs in arb_coherent_stream()) {
        let back = parse(&write(&instrs));
        prop_assert_eq!(back.len(), instrs.len());
        for (i, (a, b)) in instrs.iter().zip(&back).enumerate() {
            prop_assert_eq!(a.pc, b.pc);
            match (a.branch_event(), b.branch_event()) {
                (Some(x), Some(y)) => prop_assert_eq!(x, y, "event changed at {}", i),
                (None, None) => {}
                _ => return Err(TestCaseError(format!("branchness changed at {i}"))),
            }
        }
    }

    /// Re-serialization is a fixpoint: write→parse→write produces byte-
    /// identical records, so the register patterns the writer emits are
    /// exactly the ones the classifier maps back to the same class.
    #[test]
    fn reserialization_is_byte_stable(instrs in proptest::collection::vec(arb_instr(), 1..150)) {
        let bytes1 = write(&instrs);
        let bytes2 = write(&parse(&bytes1));
        prop_assert_eq!(bytes1, bytes2);
    }

    /// Classification depends only on the register pattern: direction,
    /// memory operands and the instruction pointer never change the
    /// class, for every class.
    #[test]
    fn classification_ignores_everything_but_registers(
        ip in any::<u64>(),
        taken in any::<bool>(),
        dmem in any::<u64>(),
        smem in any::<u64>(),
        class in arb_class(),
    ) {
        let (dst, src) = InputInstr::registers_for(class);
        let rec = InputInstr {
            ip,
            is_branch: 1,
            branch_taken: taken as u8,
            destination_registers: dst,
            source_registers: src,
            destination_memory: [dmem, 0],
            source_memory: [smem, 0, 0, 0],
        };
        prop_assert_eq!(rec.classify(), Some(class));
        // And the decode→encode step preserves the pattern itself.
        let back = InputInstr::from_bytes(&rec.to_bytes());
        prop_assert_eq!(back.classify(), Some(class));
    }

    /// ChampSim records → `.btbt` container → events is lossless: the
    /// containerized stream equals the parsed stream event for event.
    /// (The coherent generator plants >48-bit memory addresses, so this
    /// path exercises escape records on realistic streams too.)
    #[test]
    fn champsim_streams_survive_the_container(instrs in arb_coherent_stream()) {
        let parsed = parse(&write(&instrs));
        let (reader, path) = container_round_trip("champsim", &parsed);
        let back: Vec<TraceInstr> = reader.into_iter_instrs().collect();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(back, parsed);
    }

    /// Arbitrary streams — including non-canonical addresses and
    /// mismatched branch-event PCs that can only live in the escape
    /// table — survive the container round trip exactly.
    #[test]
    fn weird_streams_survive_the_container(
        instrs in proptest::collection::vec(arb_weird_instr(), 1..200),
    ) {
        let (reader, path) = container_round_trip("weird", &instrs);
        let back: Vec<TraceInstr> = reader.into_iter_instrs().collect();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(back, instrs);
    }

    /// The container's seek contract: from any position `k`,
    /// `seek(k)` ≡ `step()×k` — the property the sharded engine's
    /// checkpoint ladder stands on, mirrored from `synth_seek.rs`.
    #[test]
    fn container_seek_matches_stepping(
        instrs in proptest::collection::vec(arb_weird_instr(), 2..200),
        frac in 0.0f64..1.0,
    ) {
        let (mut seeker, path) = container_round_trip("seek", &instrs);
        let k = (frac * (instrs.len() - 1) as f64) as u64;
        let mut stepper = seeker.clone();
        for _ in 0..k {
            stepper.next_instr();
        }
        seeker.seek(k);
        prop_assert_eq!(seeker.position(), k);
        let cp = seeker.checkpoint();
        let a: Vec<TraceInstr> = seeker.clone().into_iter_instrs().collect();
        let b: Vec<TraceInstr> = stepper.into_iter_instrs().collect();
        prop_assert_eq!(&a, &b, "seek({}) != step()x{}", k, k);
        seeker.advance(3);
        seeker.restore(&cp);
        let c: Vec<TraceInstr> = seeker.into_iter_instrs().collect();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(a, c, "restore must rewind to the checkpoint");
    }
}
