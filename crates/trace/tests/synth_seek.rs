//! Property suite pinning the seekable-generator contract:
//! `seek(k) == step()×k`. A generator repositioned to any index — by
//! rewind-and-skip, by checkpoint restore into the same instance, or by
//! checkpoint restore into a *fresh* instance (the shard hand-off path of
//! `btbx_uarch::parallel`) — must reproduce the stepped generator's event
//! stream exactly, for every workload profile family the suites use.

use btbx_core::types::Arch;
use btbx_trace::source::{SeekableSource, TraceSource};
use btbx_trace::synth::{ProgramImage, SynthParams, SyntheticTrace};
use proptest::prelude::*;

/// The workload profile families of `btbx_trace::suite`: IPC-1-like
/// servers and clients (Arm64), the CVP-1-like low-Zipf large-footprint
/// servers, and the Figure 13 x86 applications.
fn profile(index: usize) -> SynthParams {
    match index {
        0 => SynthParams::server(120),
        1 => SynthParams::client(90),
        2 => {
            let mut p = SynthParams::server(160);
            p.big_gap_fraction = 0.08;
            p.zipf_s = 0.35;
            p
        }
        _ => {
            let mut p = SynthParams::server(110);
            p.arch = Arch::X86;
            p
        }
    }
}

fn walker(profile_index: usize, seed: u64) -> SyntheticTrace {
    let params = profile(profile_index);
    SyntheticTrace::new(ProgramImage::generate(&params, seed), "prop", seed)
}

/// Stream `n` instructions off `w`.
fn stream(w: &mut SyntheticTrace, n: usize) -> Vec<btbx_trace::TraceInstr> {
    (0..n).map(|_| w.next_instr().expect("infinite")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A generator seeked to an arbitrary interval boundary emits exactly
    /// what the stepped generator emits there.
    #[test]
    fn seek_equals_step_times_k(
        profile_index in 0usize..4,
        seed in 0u64..1_000,
        interval in 64u64..2_048,
        boundary in 0u64..12,
    ) {
        let k = interval * boundary;
        let mut stepped = walker(profile_index, seed);
        stepped.advance(k);
        let mut seeked = walker(profile_index, seed);
        prop_assert_eq!(seeked.seek(k), k, "infinite stream always reaches k");
        prop_assert_eq!(seeked.position(), stepped.position());
        let a = stream(&mut stepped, 400);
        let b = stream(&mut seeked, 400);
        prop_assert_eq!(a, b, "profile {} seed {} k {}", profile_index, seed, k);
    }

    /// A checkpoint captured at an interval boundary resumes the exact
    /// stream when restored into a fresh generator instance — the shard
    /// hand-off path — and seeking *backwards* rewinds correctly.
    #[test]
    fn checkpoint_resume_is_exact(
        profile_index in 0usize..4,
        seed in 0u64..1_000,
        interval in 64u64..2_048,
        boundary in 1u64..10,
    ) {
        let k = interval * boundary;
        let mut original = walker(profile_index, seed);
        original.advance(k);
        let cp = original.checkpoint();
        let reference = stream(&mut original, 400);

        // Fresh instance, restored from the snapshot.
        let mut resumed = walker(profile_index, seed);
        resumed.restore(&cp);
        prop_assert_eq!(resumed.position(), k);
        prop_assert_eq!(stream(&mut resumed, 400), reference.clone());

        // Same instance, seeked backwards past the boundary.
        let back = interval * (boundary - 1);
        original.seek(back);
        prop_assert_eq!(original.position(), back);
        original.advance(k - back);
        prop_assert_eq!(stream(&mut original, 400), reference);
    }

    /// `advance` (the materialization-free skip) is stream-equivalent to
    /// discarding stepped records at any split point, and the packed
    /// 16-byte event encoding round-trips the generator's full output.
    #[test]
    fn advance_and_packing_preserve_the_stream(
        profile_index in 0usize..4,
        seed in 0u64..1_000,
        split in 1u64..6_000,
    ) {
        let mut stepped = walker(profile_index, seed);
        let head = stream(&mut stepped, split as usize);
        let tail = stream(&mut stepped, 300);

        let mut skipped = walker(profile_index, seed);
        skipped.advance(split);
        prop_assert_eq!(stream(&mut skipped, 300), tail);

        // Every generated record survives the packed encoding.
        let buf: btbx_trace::PackedBuf = head.iter().copied().collect();
        for (i, want) in head.iter().enumerate() {
            prop_assert_eq!(buf.get(i), *want, "packed round trip at {}", i);
        }
    }
}
