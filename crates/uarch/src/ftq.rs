//! The fetch target queue (FTQ) that decouples the branch prediction unit
//! from the fetch engine (Figure 2).
//!
//! The BPU runs ahead, pushing predicted instructions; the fetch engine
//! pops them; the FDIP prefetch engine scans the occupancy in between
//! for prefetch candidates. FTQ depth (128 instructions, Table II) is
//! exactly the prefetcher's lookahead.

use crate::bpu::Verdict;
use btbx_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use btbx_trace::TraceInstr;
use std::collections::VecDeque;

/// One FTQ slot: a predicted instruction plus its fetch bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct FtqEntry {
    /// The instruction (correct-path; mispredictions appear as bubbles,
    /// not wrong-path slots).
    pub instr: TraceInstr,
    /// The BPU's verdict for this instruction.
    pub verdict: Verdict,
    /// Cycle at which this instruction's cache block is usable, once the
    /// fetch engine has issued the access.
    pub block_ready: Option<u64>,
}

/// Bounded FTQ.
#[derive(Debug)]
pub struct Ftq {
    entries: VecDeque<FtqEntry>,
    capacity: usize,
}

impl Ftq {
    /// An empty FTQ with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Ftq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when another entry fits.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Push a predicted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the FTQ is full; callers must check [`Ftq::has_room`].
    pub fn push(&mut self, instr: TraceInstr, verdict: Verdict) {
        assert!(self.has_room(), "FTQ overflow");
        self.entries.push_back(FtqEntry {
            instr,
            verdict,
            block_ready: None,
        });
    }

    /// Peek the head entry (next to fetch).
    pub fn head(&self) -> Option<&FtqEntry> {
        self.entries.front()
    }

    /// Mutable head access (fetch records `block_ready` here).
    pub fn head_mut(&mut self) -> Option<&mut FtqEntry> {
        self.entries.front_mut()
    }

    /// Pop the head entry after it has been fetched.
    pub fn pop(&mut self) -> Option<FtqEntry> {
        self.entries.pop_front()
    }

    /// Iterate entries from the head (index 0 = next to fetch); used by
    /// the FDIP scan.
    pub fn iter(&self) -> impl Iterator<Item = &FtqEntry> {
        self.entries.iter()
    }

    /// Entry at `index` from the head.
    pub fn get(&self, index: usize) -> Option<&FtqEntry> {
        self.entries.get(index)
    }

    /// Mutable entry access (the fetch engine's ifetch window records
    /// block readiness on entries behind the head).
    pub fn get_mut(&mut self, index: usize) -> Option<&mut FtqEntry> {
        self.entries.get_mut(index)
    }

    /// Drop all entries (pipeline flush).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Snapshot for Ftq {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.capacity as u64);
        w.u64(self.entries.len() as u64);
        for e in &self.entries {
            e.instr.save_snap(w);
            e.verdict.save_snap(w);
            match e.block_ready {
                None => w.bool(false),
                Some(cycle) => {
                    w.bool(true);
                    w.u64(cycle);
                }
            }
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.capacity as u64, "ftq capacity")?;
        let len = r.u64()? as usize;
        if len > self.capacity {
            return Err(SnapError::Corrupt("ftq occupancy exceeds capacity"));
        }
        self.entries.clear();
        for _ in 0..len {
            let instr = TraceInstr::load_snap(r)?;
            let verdict = Verdict::load_snap(r)?;
            let block_ready = if r.bool()? { Some(r.u64()?) } else { None };
            self.entries.push_back(FtqEntry {
                instr,
                verdict,
                block_ready,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpu::Resolution;

    fn verdict() -> Verdict {
        Verdict {
            resolution: Resolution::Correct,
            kind: None,
            predicted_taken: false,
            extra_bpu_cycles: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = Ftq::new(4);
        q.push(TraceInstr::other(0x100, 4), verdict());
        q.push(TraceInstr::other(0x104, 4), verdict());
        assert_eq!(q.pop().unwrap().instr.pc, 0x100);
        assert_eq!(q.pop().unwrap().instr.pc, 0x104);
        assert!(q.pop().is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut q = Ftq::new(2);
        q.push(TraceInstr::other(0, 4), verdict());
        assert!(q.has_room());
        q.push(TraceInstr::other(4, 4), verdict());
        assert!(!q.has_room());
    }

    #[test]
    #[should_panic(expected = "FTQ overflow")]
    fn overflow_panics() {
        let mut q = Ftq::new(1);
        q.push(TraceInstr::other(0, 4), verdict());
        q.push(TraceInstr::other(4, 4), verdict());
    }

    #[test]
    fn block_ready_persists_on_head() {
        let mut q = Ftq::new(2);
        q.push(TraceInstr::other(0x100, 4), verdict());
        q.head_mut().unwrap().block_ready = Some(42);
        assert_eq!(q.head().unwrap().block_ready, Some(42));
    }

    #[test]
    fn scan_iterates_in_order() {
        let mut q = Ftq::new(8);
        for i in 0..5u64 {
            q.push(TraceInstr::other(i * 64, 4), verdict());
        }
        let pcs: Vec<u64> = q.iter().map(|e| e.instr.pc).collect();
        assert_eq!(pcs, vec![0, 64, 128, 192, 256]);
        assert_eq!(q.get(2).unwrap().instr.pc, 128);
    }

    #[test]
    fn clear_empties() {
        let mut q = Ftq::new(4);
        q.push(TraceInstr::other(0, 4), verdict());
        q.clear();
        assert!(q.is_empty());
    }
}
