//! The [`SimSession`] builder: the public way to assemble and run one
//! simulation.
//!
//! [`crate::sim::simulate`] grew six positional arguments; a session names
//! every knob, validates the BTB spec instead of panicking, and can stream
//! per-interval statistics while the simulation runs:
//!
//! ```
//! use btbx_trace::suite;
//! use btbx_uarch::SimSession;
//! use btbx_core::spec::BtbSpec;
//! use btbx_core::OrgKind;
//!
//! let spec = &suite::ipc1_client()[0];
//! let mut curve = Vec::new();
//! let result = SimSession::new(spec.build_trace())
//!     .btb_spec(BtbSpec::of(OrgKind::BtbX))
//!     .fdip(true)
//!     .warmup(10_000)
//!     .measure(30_000)
//!     .every(10_000, |iv| curve.push(iv.interval_ipc()))
//!     .run()
//!     .expect("valid session");
//! assert!(result.stats.ipc() > 0.0);
//! assert_eq!(curve.len(), 3);
//! ```

use crate::bpu::{Bpu, BpuStats};
use crate::config::SimConfig;
use crate::sim::Simulator;
use crate::stats::SimResult;
use btbx_core::spec::{BtbSpec, SpecError};
use btbx_core::Btb;
use btbx_trace::TraceSource;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// A statistics snapshot streamed after every measurement interval.
///
/// All counters are cumulative over the measurement window; the `delta_*`
/// fields cover just the interval that ended.
#[derive(Debug, Clone, Copy)]
pub struct IntervalStats {
    /// 0-based interval number.
    pub index: u64,
    /// Instructions committed in the window so far.
    pub instructions: u64,
    /// Cycles elapsed in the window so far.
    pub cycles: u64,
    /// Instructions committed in this interval.
    pub delta_instructions: u64,
    /// Cycles elapsed in this interval.
    pub delta_cycles: u64,
    /// BPU counters accumulated over the window so far.
    pub bpu: BpuStats,
}

impl IntervalStats {
    /// IPC over the whole window so far.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// IPC over just this interval.
    pub fn interval_ipc(&self) -> f64 {
        if self.delta_cycles == 0 {
            0.0
        } else {
            self.delta_instructions as f64 / self.delta_cycles as f64
        }
    }

    /// Taken-branch BTB MPKI over the window so far.
    pub fn btb_mpki(&self) -> f64 {
        self.bpu.btb_mpki(self.instructions)
    }
}

/// Why a [`SimSession`] (or [`crate::parallel::ParallelSession`]) cannot
/// run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// Neither [`SimSession::btb`] nor [`SimSession::btb_spec`] was called.
    NoBtb,
    /// The configured [`BtbSpec`] does not validate.
    Spec(SpecError),
    /// A sharded session needs a finite measurement window to split.
    UnboundedMeasure,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoBtb => {
                write!(f, "session has no BTB: call .btb(...) or .btb_spec(...)")
            }
            SessionError::Spec(e) => write!(f, "invalid BTB spec: {e}"),
            SessionError::UnboundedMeasure => {
                write!(
                    f,
                    "sharded sessions need a finite .measure(...) window to split"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SpecError> for SessionError {
    fn from(e: SpecError) -> Self {
        SessionError::Spec(e)
    }
}

enum BtbSource<B> {
    None,
    Instance {
        btb: B,
        label: String,
        budget_bits: u64,
    },
    Spec(BtbSpec),
}

pub(crate) type Observer<'a> = (u64, Box<dyn FnMut(&IntervalStats) + 'a>);

/// Builder for one simulation of a trace on a BTB organization.
///
/// Defaults: Table II config with FDIP enabled, no warm-up, measurement to
/// the end of the trace, no interval streaming.
///
/// The session is generic over the BTB representation `B`. Spec-driven
/// sessions ([`btb_spec`](Self::btb_spec)) build a statically dispatched
/// [`btbx_core::BtbEngine`] regardless of `B`, so the common path pays no
/// virtual call per event; [`btb`](Self::btb) accepts any [`Btb`]
/// instance — boxed or concrete — as the compatibility path.
pub struct SimSession<'a, S, B: Btb = Box<dyn Btb>> {
    trace: S,
    btb: BtbSource<B>,
    config: SimConfig,
    warmup: u64,
    measure: u64,
    label: Option<String>,
    observer: Option<Observer<'a>>,
    abort: Option<Arc<AtomicBool>>,
    fast_forward: bool,
}

impl<'a, S: TraceSource> SimSession<'a, S> {
    /// Start a session over `trace`.
    pub fn new(trace: S) -> Self {
        SimSession {
            trace,
            btb: BtbSource::None,
            config: SimConfig::default(),
            warmup: 0,
            measure: u64::MAX,
            label: None,
            observer: None,
            abort: None,
            fast_forward: false,
        }
    }
}

impl<'a, S: TraceSource, B: Btb> SimSession<'a, S, B> {
    /// Use an already-built BTB instance — `Box<dyn Btb>` or any concrete
    /// [`Btb`] such as [`btbx_core::BtbEngine`]. Its reported storage is
    /// recorded as the budget; prefer [`btb_spec`](Self::btb_spec) for
    /// validated, declarative construction.
    pub fn btb<B2: Btb>(self, btb: B2) -> SimSession<'a, S, B2> {
        let label = btb.name().to_string();
        let budget_bits = btb.storage().total_bits;
        SimSession {
            trace: self.trace,
            btb: BtbSource::Instance {
                btb,
                label,
                budget_bits,
            },
            config: self.config,
            warmup: self.warmup,
            measure: self.measure,
            label: self.label,
            observer: self.observer,
            abort: self.abort,
            fast_forward: self.fast_forward,
        }
    }

    /// Build the BTB from a validated spec at [`run`](Self::run) time; the
    /// spec's nominal budget is recorded in the result. The instance is a
    /// statically dispatched [`btbx_core::BtbEngine`].
    pub fn btb_spec(mut self, spec: BtbSpec) -> Self {
        self.btb = BtbSource::Spec(spec);
        self
    }

    /// Replace the whole simulator configuration (Table II defaults).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Toggle FDIP instruction prefetching.
    pub fn fdip(mut self, on: bool) -> Self {
        self.config.fdip = on;
        self
    }

    /// Warm structures over this many committed instructions before
    /// measuring (Section VI-A methodology).
    pub fn warmup(mut self, instructions: u64) -> Self {
        self.warmup = instructions;
        self
    }

    /// Measure this many committed instructions (default: to trace end).
    pub fn measure(mut self, instructions: u64) -> Self {
        self.measure = instructions;
        self
    }

    /// Override the organization label recorded in the result (defaults to
    /// the BTB's own name or the spec's org id).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Stream an [`IntervalStats`] snapshot to `callback` after every
    /// `interval` committed instructions of the measurement window.
    pub fn every(mut self, interval: u64, callback: impl FnMut(&IntervalStats) + 'a) -> Self {
        assert!(interval > 0, "interval must be positive");
        self.observer = Some((interval, Box::new(callback)));
        self
    }

    /// Attach a cooperative cancellation flag: once it turns true, the
    /// run panics with [`crate::sim::ABORT_MARKER`] instead of ticking to
    /// completion. Services use this to bound runaway requests.
    pub fn abort(mut self, flag: Arc<AtomicBool>) -> Self {
        self.abort = Some(flag);
        self
    }

    /// Enable the O(1) inert-cycle fast-forward
    /// ([`Simulator::set_fast_forward`]): spans of cycles in which no
    /// pipeline stage can act are jumped instead of ticked. Results are
    /// bit-identical to the plain tick loop — the batched executor
    /// ([`crate::batch`]) turns this on for every lane, and the
    /// differential suite pins the identity. Off by default so the
    /// reference tick loop stays the oracle.
    pub fn fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Run the simulation.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoBtb`] when no BTB was configured and
    /// [`SessionError::Spec`] when the configured spec does not validate.
    pub fn run(self) -> Result<SimResult, SessionError> {
        match self.btb {
            BtbSource::None => Err(SessionError::NoBtb),
            BtbSource::Instance {
                btb,
                label,
                budget_bits,
            } => Ok(run_with(
                btb,
                self.label.unwrap_or(label),
                budget_bits,
                self.config,
                self.trace,
                self.warmup,
                self.measure,
                self.observer,
                self.abort,
                self.fast_forward,
            )),
            BtbSource::Spec(spec) => {
                // Static dispatch: the engine monomorphizes the hot path.
                let engine = spec.build_engine()?;
                Ok(run_with(
                    engine,
                    self.label.unwrap_or_else(|| spec.org.id().to_string()),
                    spec.bits(),
                    self.config,
                    self.trace,
                    self.warmup,
                    self.measure,
                    self.observer,
                    self.abort,
                    self.fast_forward,
                ))
            }
        }
    }
}

/// Shared back half of [`SimSession::run`], monomorphized per BTB type.
/// `pub(crate)` so the batched executor ([`crate::batch`]) constructs its
/// lanes through the *same* code path as a solo session — the
/// bit-identity contract then holds by construction, not by parallel
/// maintenance of two assembly sequences.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_with<S: TraceSource, B: Btb>(
    btb: B,
    label: String,
    budget_bits: u64,
    config: SimConfig,
    trace: S,
    warmup: u64,
    measure: u64,
    mut observer: Option<Observer<'_>>,
    abort: Option<Arc<AtomicBool>>,
    fast_forward: bool,
) -> SimResult {
    let bpu = Bpu::new(btb, config.ras_entries, config.decode_resteer);
    let mut sim = Simulator::new(config, trace, bpu, label, budget_bits);
    if let Some(flag) = abort {
        sim.set_abort(flag);
    }
    sim.set_fast_forward(fast_forward);
    let interval = observer.as_ref().map(|(n, _)| *n);
    let mut result = sim.run_observed(warmup, measure, interval, &mut |iv| {
        if let Some((_, cb)) = observer.as_mut() {
            cb(iv);
        }
    });
    result.btb_budget_bits = budget_bits;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use btbx_core::storage::BudgetPoint;
    use btbx_core::types::Arch;
    use btbx_core::OrgKind;
    use btbx_trace::record::TraceInstr;
    use btbx_trace::source::VecSource;

    fn straight_line(n: u64) -> VecSource {
        VecSource::new(
            "line",
            (0..n)
                .map(|i| TraceInstr::other(0x1000 + i * 4, 4))
                .collect(),
        )
    }

    #[test]
    fn missing_btb_is_an_error() {
        let err = SimSession::new(straight_line(100)).run().unwrap_err();
        assert_eq!(err, SessionError::NoBtb);
    }

    #[test]
    fn invalid_spec_surfaces_as_session_error() {
        let err = SimSession::new(straight_line(100))
            .btb_spec(BtbSpec::of(OrgKind::BtbX).budget_bits(3))
            .run()
            .unwrap_err();
        assert!(matches!(err, SessionError::Spec(_)), "{err}");
    }

    #[test]
    fn session_matches_positional_simulate() {
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        let session = SimSession::new(straight_line(40_000))
            .btb_spec(spec)
            .fdip(false)
            .warmup(5_000)
            .measure(20_000)
            .run()
            .unwrap();
        let positional = crate::sim::simulate(
            SimConfig::without_fdip(),
            straight_line(40_000),
            spec.build().unwrap(),
            "conv",
            5_000,
            20_000,
        );
        assert_eq!(session.stats.instructions, positional.stats.instructions);
        assert_eq!(session.stats.cycles, positional.stats.cycles);
        assert_eq!(session.org, positional.org);
    }

    #[test]
    fn intervals_stream_and_sum_to_totals() {
        let mut snapshots: Vec<IntervalStats> = Vec::new();
        let result = SimSession::new(straight_line(100_000))
            .btb_spec(BtbSpec::of(OrgKind::Conv))
            .fdip(false)
            .warmup(10_000)
            .measure(60_000)
            .every(20_000, |iv| snapshots.push(*iv))
            .run()
            .unwrap();
        assert_eq!(snapshots.len(), 3, "60k window / 20k interval");
        for (i, iv) in snapshots.iter().enumerate() {
            assert_eq!(iv.index, i as u64);
            assert!(iv.delta_instructions >= 20_000);
            assert!(iv.interval_ipc() > 0.0);
        }
        let last = snapshots.last().unwrap();
        assert_eq!(last.instructions, result.stats.instructions);
        assert_eq!(last.cycles, result.stats.cycles);
        let delta_sum: u64 = snapshots.iter().map(|iv| iv.delta_instructions).sum();
        assert_eq!(delta_sum, result.stats.instructions);
    }

    #[test]
    fn trailing_partial_interval_is_reported() {
        let mut count = 0u64;
        let result = SimSession::new(straight_line(100_000))
            .btb_spec(BtbSpec::of(OrgKind::Conv))
            .fdip(false)
            .measure(50_000)
            .every(20_000, |_| count += 1)
            .run()
            .unwrap();
        // 50k window = two full 20k intervals + one 10k remainder.
        assert_eq!(count, 3);
        assert!(result.stats.instructions >= 50_000);
    }

    #[test]
    fn label_override_and_budget_recorded() {
        let spec = BtbSpec::of(OrgKind::BtbX).at(BudgetPoint::Kb7_25);
        let r = SimSession::new(straight_line(5_000))
            .btb_spec(spec)
            .label("btbx-variant")
            .run()
            .unwrap();
        assert_eq!(r.org, "btbx-variant");
        assert_eq!(r.btb_budget_bits, spec.bits());
    }

    #[test]
    fn arch_mismatch_uses_spec_arch() {
        // An x86 spec simply builds an x86-sized BTB; the session does not
        // second-guess the trace's architecture.
        let r = SimSession::new(straight_line(5_000))
            .btb_spec(BtbSpec::of(OrgKind::BtbX).arch(Arch::X86))
            .run()
            .unwrap();
        assert!(r.stats.instructions > 0);
    }
}
