//! Batched multi-lane execution: many simulations over one decoded event
//! window.
//!
//! A sweep evaluates the same workload against K organization × budget ×
//! FDIP points. Run separately, each point re-decodes the trace and ticks
//! through the same inert front-end cycles; batched, the org-independent
//! work is paid once per group:
//!
//! * **Trace decode / generation** — the event window (`warmup + measure`
//!   plus a bounded look-ahead slack) is materialized once into an
//!   `Arc<PackedBuf>` ([`BatchStream::materialize`]); every lane streams
//!   it through a zero-copy [`SharedSource`] clone.
//! * **Engine construction** — all lane BTBs are validated and built in
//!   one [`EngineBank`] pass before any lane runs, so a bad spec fails
//!   the group up front.
//! * **Inert cycles** — every lane runs with
//!   [`Simulator::set_fast_forward`](crate::sim::Simulator::set_fast_forward)
//!   enabled, jumping spans of cycles in which no pipeline stage can act.
//!
//! # Lane divergence rules
//!
//! Everything *behind* the decoded event stream is per-lane and must stay
//! so: BTB contents, perceptron weights, RAS, FTQ occupancy, FDIP cursor,
//! and — less obviously — the cache hierarchy. The FTQ only ever holds
//! correct-path instructions, so the *order* of L1-I accesses is
//! org-independent, but their **timeliness** is not: MSHR coalescing
//! depends on the wall-cycle gap between accesses, which depends on how
//! often the lane's BTB stalls prediction. No microarchitectural state is
//! therefore shared between lanes; only the immutable decoded events are.
//! That is exactly why batched results are bit-identical to solo runs —
//! each lane is a complete, independent simulator fed the same bytes.
//!
//! # Look-ahead slack
//!
//! A lane stops on its committed-instruction target but has already
//! pulled events for everything in flight: up to `rob_entries` waiting to
//! commit, up to `ftq_entries` predicted-but-unfetched, plus staging-
//! block refill granularity. [`lookahead_slack`] over-approximates that
//! bound, so a lane never exhausts the materialized window before its
//! serial twin would have stopped — if the window comes up short, the
//! underlying trace itself ended, and the serial run sees the same end at
//! the same event.

use crate::config::SimConfig;
use crate::session::{self, SessionError};
use crate::sim::EVENT_BLOCK_EVENTS;
use crate::stats::SimResult;
use btbx_core::engine::BtbEngine;
use btbx_core::spec::BtbSpec;
use btbx_core::EngineBank;
use btbx_trace::packed::{PackedBuf, SharedSource};
use btbx_trace::TraceSource;
use std::sync::{Arc, Mutex};

/// One simulation lane of a batched group: a BTB point plus the full
/// simulator configuration it runs under (the per-lane FDIP flag lives in
/// `config.fdip`, same as a solo run).
#[derive(Debug, Clone)]
pub struct BatchLane {
    /// BTB organization, budget and architecture.
    pub spec: BtbSpec,
    /// Full simulator configuration for this lane.
    pub config: SimConfig,
    /// Organization label recorded in the lane's result.
    pub label: String,
}

/// Upper bound on events a lane can consume beyond its committed target:
/// in-flight ROB entries + FTQ occupancy + two staging-block refills,
/// plus margin for the commit-width overshoot. Deliberately generous —
/// slack costs 16 bytes per event once per group.
pub fn lookahead_slack(config: &SimConfig) -> u64 {
    (config.rob_entries + config.ftq_entries) as u64 + 2 * EVENT_BLOCK_EVENTS as u64 + 64
}

/// A decoded, immutable event window shared by every lane of a batched
/// group: the "one trace traversal" the group amortizes.
#[derive(Debug, Clone)]
pub struct BatchStream {
    name: String,
    buf: Arc<PackedBuf>,
    warmup: u64,
    measure: u64,
}

impl BatchStream {
    /// Decode `warmup + measure + slack` events of `trace` into a shared
    /// buffer. `slack` must be at least [`lookahead_slack`] of the widest
    /// lane configuration that will run over the stream.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnboundedMeasure`]: a batched group needs a finite
    /// window to know how much to materialize.
    pub fn materialize<S: TraceSource>(
        mut trace: S,
        warmup: u64,
        measure: u64,
        slack: u64,
    ) -> Result<Self, SessionError> {
        if measure == u64::MAX {
            return Err(SessionError::UnboundedMeasure);
        }
        let window = warmup
            .saturating_add(measure)
            .saturating_add(slack)
            .min(usize::MAX as u64) as usize;
        let name = trace.source_name().to_string();
        let mut buf = PackedBuf::with_capacity(window.min(1 << 24));
        trace.fill_block(&mut buf, window);
        Ok(BatchStream {
            name,
            buf: Arc::new(buf),
            warmup,
            measure,
        })
    }

    /// Events materialized (less than requested only when the trace
    /// itself ended).
    pub fn events(&self) -> usize {
        self.buf.len()
    }

    /// Warm-up window every lane runs.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// Measurement window every lane runs.
    pub fn measure(&self) -> u64 {
        self.measure
    }

    /// A zero-copy per-lane view of the window (an `Arc` clone).
    pub fn source(&self) -> SharedSource {
        SharedSource::new(self.name.clone(), Arc::clone(&self.buf))
    }

    /// Run one lane over the shared window, building its engine from the
    /// lane spec. The construction path is the same
    /// [`SimSession`](crate::SimSession) back half a solo run uses —
    /// bit-identity with unbatched runs holds by construction — with
    /// fast-forward enabled.
    ///
    /// # Errors
    ///
    /// [`SessionError::Spec`] when the lane's spec does not validate.
    pub fn run_lane(&self, lane: &BatchLane) -> Result<SimResult, SessionError> {
        let engine = lane.spec.build_engine()?;
        Ok(self.run_lane_engine(engine, lane))
    }

    /// [`run_lane`](Self::run_lane) with a pre-built engine (e.g. one
    /// lane of an [`EngineBank`]).
    pub fn run_lane_engine(&self, engine: BtbEngine, lane: &BatchLane) -> SimResult {
        session::run_with(
            engine,
            lane.label.clone(),
            lane.spec.bits(),
            lane.config.clone(),
            self.source(),
            self.warmup,
            self.measure,
            None,
            None,
            true,
        )
    }
}

/// Builder for a batched group: one workload window, many lanes.
///
/// ```
/// use btbx_core::spec::BtbSpec;
/// use btbx_core::storage::BudgetPoint;
/// use btbx_core::OrgKind;
/// use btbx_trace::suite;
/// use btbx_uarch::batch::{BatchLane, BatchSession};
/// use btbx_uarch::SimConfig;
///
/// let spec = &suite::ipc1_client()[0];
/// let lanes: Vec<BatchLane> = [OrgKind::Conv, OrgKind::BtbX]
///     .into_iter()
///     .map(|org| BatchLane {
///         spec: BtbSpec::of(org).at(BudgetPoint::Kb1_8),
///         config: SimConfig::default(),
///         label: org.id().to_string(),
///     })
///     .collect();
/// let results = BatchSession::new(spec.build_trace())
///     .lanes(lanes)
///     .warmup(5_000)
///     .measure(10_000)
///     .run()
///     .expect("valid lanes");
/// assert_eq!(results.len(), 2);
/// ```
pub struct BatchSession<S> {
    trace: S,
    lanes: Vec<BatchLane>,
    warmup: u64,
    measure: u64,
    threads: usize,
}

impl<S: TraceSource> BatchSession<S> {
    /// Start a batched session over `trace`.
    pub fn new(trace: S) -> Self {
        BatchSession {
            trace,
            lanes: Vec::new(),
            warmup: 0,
            measure: u64::MAX,
            threads: 1,
        }
    }

    /// Set the lanes.
    pub fn lanes(mut self, lanes: impl IntoIterator<Item = BatchLane>) -> Self {
        self.lanes = lanes.into_iter().collect();
        self
    }

    /// Append one lane.
    pub fn lane(mut self, lane: BatchLane) -> Self {
        self.lanes.push(lane);
        self
    }

    /// Warm-up instructions per lane.
    pub fn warmup(mut self, instructions: u64) -> Self {
        self.warmup = instructions;
        self
    }

    /// Measured instructions per lane (must be finite).
    pub fn measure(mut self, instructions: u64) -> Self {
        self.measure = instructions;
        self
    }

    /// Worker threads running lanes concurrently (lanes are independent;
    /// 1 = strictly sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run every lane; results in lane order.
    ///
    /// # Errors
    ///
    /// [`SessionError::Spec`] when any lane spec is invalid (checked for
    /// the whole group before anything runs) and
    /// [`SessionError::UnboundedMeasure`] without a finite window.
    pub fn run(self) -> Result<Vec<SimResult>, SessionError> {
        self.run_each(|_, _| {})
    }

    /// [`run`](Self::run), invoking `on_done(lane_index, &result)` as
    /// each lane completes (possibly from a worker thread; calls are
    /// serialized). Sweep-style callers publish and journal each lane the
    /// moment it finishes, so a crash mid-group loses only unfinished
    /// lanes.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_each(
        self,
        on_done: impl FnMut(usize, &SimResult) + Send,
    ) -> Result<Vec<SimResult>, SessionError> {
        let bank = EngineBank::from_specs(self.lanes.iter().map(|l| &l.spec))?;
        let slack = self
            .lanes
            .iter()
            .map(|l| lookahead_slack(&l.config))
            .max()
            .unwrap_or(0);
        let stream = BatchStream::materialize(self.trace, self.warmup, self.measure, slack)?;
        let sink = Mutex::new(on_done);
        let jobs: Vec<_> = bank
            .into_engines()
            .into_iter()
            .zip(&self.lanes)
            .enumerate()
            .map(|(i, (engine, lane))| {
                let stream = &stream;
                let sink = &sink;
                move || {
                    let result = stream.run_lane_engine(engine, lane);
                    (sink.lock().expect("sink poisoned"))(i, &result);
                    result
                }
            })
            .collect();
        Ok(crate::runner::run_jobs("batch", self.threads, jobs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimSession;
    use btbx_core::storage::BudgetPoint;
    use btbx_core::OrgKind;
    use btbx_trace::suite;

    fn lanes() -> Vec<BatchLane> {
        let mut lanes = Vec::new();
        for org in [OrgKind::Conv, OrgKind::BtbX, OrgKind::Pdede] {
            for fdip in [false, true] {
                let config = SimConfig {
                    fdip,
                    ..SimConfig::default()
                };
                lanes.push(BatchLane {
                    spec: BtbSpec::of(org).at(BudgetPoint::Kb1_8),
                    config,
                    label: org.id().to_string(),
                });
            }
        }
        lanes
    }

    #[test]
    fn batched_lanes_match_solo_sessions() {
        let spec = &suite::ipc1_client()[0];
        let batched = BatchSession::new(spec.build_trace())
            .lanes(lanes())
            .warmup(4_000)
            .measure(8_000)
            .run()
            .unwrap();
        for (lane, got) in lanes().iter().zip(&batched) {
            let solo = SimSession::new(spec.build_trace())
                .btb_spec(lane.spec)
                .config(lane.config.clone())
                .label(lane.label.clone())
                .warmup(4_000)
                .measure(8_000)
                .run()
                .unwrap();
            assert_eq!(got.stats, solo.stats, "lane {}", lane.label);
            assert_eq!(got.org, solo.org);
            assert_eq!(got.btb_budget_bits, solo.btb_budget_bits);
        }
    }

    #[test]
    fn lane_threads_do_not_change_results() {
        let spec = &suite::ipc1_client()[0];
        let serial = BatchSession::new(spec.build_trace())
            .lanes(lanes())
            .warmup(2_000)
            .measure(5_000)
            .run()
            .unwrap();
        let threaded = BatchSession::new(spec.build_trace())
            .lanes(lanes())
            .warmup(2_000)
            .measure(5_000)
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(serial.len(), threaded.len());
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn on_done_fires_once_per_lane() {
        let spec = &suite::ipc1_client()[0];
        let seen = Mutex::new(Vec::new());
        let results = BatchSession::new(spec.build_trace())
            .lanes(lanes())
            .warmup(1_000)
            .measure(2_000)
            .run_each(|i, r| seen.lock().unwrap().push((i, r.stats.instructions)))
            .unwrap();
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen.len(), results.len());
        for (i, (lane, instrs)) in seen.iter().enumerate() {
            assert_eq!(*lane, i);
            assert_eq!(*instrs, results[i].stats.instructions);
        }
    }

    #[test]
    fn unbounded_measure_is_rejected() {
        let spec = &suite::ipc1_client()[0];
        let err = BatchSession::new(spec.build_trace())
            .lanes(lanes())
            .warmup(1_000)
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::UnboundedMeasure);
    }

    #[test]
    fn invalid_lane_fails_the_group_before_running() {
        let spec = &suite::ipc1_client()[0];
        let mut bad = lanes();
        bad.push(BatchLane {
            spec: BtbSpec::of(OrgKind::BtbX).budget_bits(3),
            config: SimConfig::default(),
            label: "bad".into(),
        });
        let err = BatchSession::new(spec.build_trace())
            .lanes(bad)
            .warmup(1_000)
            .measure(2_000)
            .run()
            .unwrap_err();
        assert!(matches!(err, SessionError::Spec(_)), "{err}");
    }

    #[test]
    fn short_trace_ends_lanes_like_solo_runs() {
        // A window far beyond the trace's length: lanes and solo runs
        // must agree on where the stream ends.
        use btbx_trace::source::VecSource;
        use btbx_trace::TraceInstr;
        let instrs: Vec<TraceInstr> = (0..3_000u64)
            .map(|i| TraceInstr::other(0x1000 + (i % 64) * 4, 4))
            .collect();
        let lane = BatchLane {
            spec: BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8),
            config: SimConfig::without_fdip(),
            label: "conv".into(),
        };
        let batched = BatchSession::new(VecSource::new("short", instrs.clone()))
            .lanes([lane.clone()])
            .warmup(1_000)
            .measure(50_000)
            .run()
            .unwrap();
        let solo = SimSession::new(VecSource::new("short", instrs))
            .btb_spec(lane.spec)
            .config(lane.config)
            .warmup(1_000)
            .measure(50_000)
            .run()
            .unwrap();
        assert_eq!(batched[0].stats, solo.stats);
    }
}
