//! Hashed perceptron conditional-branch direction predictor (Table II).
//!
//! A faithful software model of the hashed perceptron family used by
//! ChampSim and commercial cores: several weight tables, each indexed by a
//! hash of the branch PC with a different-length slice of global history;
//! the prediction is the sign of the summed weights plus a bias, and
//! training bumps the selected weights when the outcome disagrees or the
//! magnitude is below threshold.

use btbx_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Number of weight tables.
const TABLES: usize = 8;
/// Entries per table (power of two).
const TABLE_ENTRIES: usize = 2048;
/// History lengths per table (geometric-ish series; table 0 is bias-like
/// with no history).
const HIST_LENGTHS: [usize; TABLES] = [0, 3, 8, 15, 24, 37, 59, 118];
/// Weight saturation bound (6-bit signed weights).
const WEIGHT_MAX: i8 = 31;
const WEIGHT_MIN: i8 = -32;
/// Training threshold, per the original perceptron heuristic
/// (θ ≈ 1.93·h + 14 for the longest history).
const THRESHOLD: i32 = 2 * TABLES as i32 + 14;

/// Global history length kept.
pub const HISTORY_BITS: usize = 128;

/// A hashed perceptron direction predictor.
#[derive(Debug, Clone)]
pub struct HashedPerceptron {
    weights: Vec<[i8; TABLE_ENTRIES]>,
    /// Global history as a bit deque; bit 0 is the most recent outcome.
    history: u128,
}

/// The outcome of a prediction, carried to training time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirPrediction {
    /// Predicted taken?
    pub taken: bool,
    /// Summed weight (confidence); training uses it.
    pub sum: i32,
    /// Table indices used for this prediction.
    indices: [u16; TABLES],
}

impl Default for HashedPerceptron {
    fn default() -> Self {
        Self::new()
    }
}

impl HashedPerceptron {
    /// A zero-initialized predictor (predicts weakly not-taken).
    pub fn new() -> Self {
        HashedPerceptron {
            weights: vec![[0; TABLE_ENTRIES]; TABLES],
            history: 0,
        }
    }

    fn index(&self, table: usize, pc: u64) -> u16 {
        let len = HIST_LENGTHS[table];
        let hist = if len == 0 {
            0
        } else {
            (self.history & ((1u128 << len) - 1)) as u64
                ^ ((self.history >> len.min(64)) as u64 & 0xffff)
        };
        let mut h = pc >> 2;
        h ^= hist.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 27;
        h = h.wrapping_mul(0x2545_f491_4f6c_dd1d);
        (h as usize % TABLE_ENTRIES) as u16
    }

    /// Predict the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> DirPrediction {
        let mut indices = [0u16; TABLES];
        let mut sum = 0i32;
        #[allow(clippy::needless_range_loop)]
        for t in 0..TABLES {
            let i = self.index(t, pc);
            indices[t] = i;
            sum += self.weights[t][i as usize] as i32;
        }
        DirPrediction {
            taken: sum >= 0,
            sum,
            indices,
        }
    }

    /// Train on the actual outcome and shift it into the global history.
    ///
    /// Call exactly once per dynamic conditional branch, with the
    /// prediction returned by [`HashedPerceptron::predict`] for the same
    /// branch.
    pub fn train(&mut self, pred: DirPrediction, taken: bool) {
        let mispredicted = pred.taken != taken;
        if mispredicted || pred.sum.abs() <= THRESHOLD {
            for t in 0..TABLES {
                let w = &mut self.weights[t][pred.indices[t] as usize];
                *w = if taken {
                    (*w).saturating_add(1).min(WEIGHT_MAX)
                } else {
                    (*w).saturating_sub(1).max(WEIGHT_MIN)
                };
            }
        }
        self.history = (self.history << 1) | taken as u128;
    }

    /// Record a non-conditional control-flow event in the history (taken
    /// unconditional branches perturb global history on real cores).
    pub fn note_unconditional(&mut self) {
        self.history = (self.history << 1) | 1;
    }

    /// Storage cost in bits: weights only (history registers are
    /// negligible), ~16 KB for the default geometry.
    pub fn storage_bits(&self) -> u64 {
        (TABLES * TABLE_ENTRIES) as u64 * 6
    }
}

impl Snapshot for HashedPerceptron {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(TABLES as u64);
        w.u64(TABLE_ENTRIES as u64);
        for table in &self.weights {
            for &weight in table.iter() {
                w.i8(weight);
            }
        }
        w.u128(self.history);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(TABLES as u64, "perceptron table count")?;
        r.expect_u64(TABLE_ENTRIES as u64, "perceptron table entries")?;
        for table in &mut self.weights {
            for weight in table.iter_mut() {
                let v = r.i8()?;
                if !(WEIGHT_MIN..=WEIGHT_MAX).contains(&v) {
                    return Err(SnapError::Corrupt("perceptron weight out of range"));
                }
                *weight = v;
            }
        }
        self.history = r.u128()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = HashedPerceptron::new();
        let pc = 0x40_1000;
        for _ in 0..64 {
            let pred = p.predict(pc);
            p.train(pred, true);
        }
        assert!(p.predict(pc).taken);
        assert!(p.predict(pc).sum > THRESHOLD / 2, "should be confident");
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = HashedPerceptron::new();
        let pc = 0x40_2000;
        for _ in 0..64 {
            let pred = p.predict(pc);
            p.train(pred, false);
        }
        assert!(!p.predict(pc).taken);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = HashedPerceptron::new();
        let pc = 0x40_3000;
        let mut flip = false;
        // Warm up on a strict alternation.
        for _ in 0..4000 {
            let pred = p.predict(pc);
            p.train(pred, flip);
            flip = !flip;
        }
        // Measure accuracy over the next 1000.
        let mut correct = 0;
        for _ in 0..1000 {
            let pred = p.predict(pc);
            if pred.taken == flip {
                correct += 1;
            }
            p.train(pred, flip);
            flip = !flip;
        }
        assert!(
            correct > 900,
            "perceptron should learn alternation, got {correct}/1000"
        );
    }

    #[test]
    fn learns_loop_exit_pattern() {
        // taken,taken,taken,not-taken repeated: classic 4-iteration loop.
        let mut p = HashedPerceptron::new();
        let pc = 0x40_4000;
        let mut i = 0u32;
        for _ in 0..6000 {
            let taken = i % 4 != 3;
            let pred = p.predict(pc);
            p.train(pred, taken);
            i += 1;
        }
        let mut correct = 0;
        for _ in 0..1000 {
            let taken = i % 4 != 3;
            let pred = p.predict(pc);
            if pred.taken == taken {
                correct += 1;
            }
            p.train(pred, taken);
            i += 1;
        }
        assert!(correct > 850, "loop pattern accuracy {correct}/1000");
    }

    #[test]
    fn distinct_branches_do_not_destructively_interfere() {
        let mut p = HashedPerceptron::new();
        for _ in 0..200 {
            for b in 0..16u64 {
                let pc = 0x50_0000 + b * 64;
                let taken = b % 2 == 0;
                let pred = p.predict(pc);
                p.train(pred, taken);
            }
        }
        let mut correct = 0;
        for b in 0..16u64 {
            let pc = 0x50_0000 + b * 64;
            if p.predict(pc).taken == (b % 2 == 0) {
                correct += 1;
            }
        }
        assert!(correct >= 14, "{correct}/16 branches learned");
    }

    #[test]
    fn weights_saturate() {
        let mut p = HashedPerceptron::new();
        let pc = 0x60_0000;
        for _ in 0..10_000 {
            let pred = p.predict(pc);
            p.train(pred, true);
        }
        // No overflow panic, and weights bounded.
        for t in 0..TABLES {
            for w in p.weights[t].iter() {
                assert!((WEIGHT_MIN..=WEIGHT_MAX).contains(w));
            }
        }
    }

    #[test]
    fn storage_is_reported() {
        assert_eq!(HashedPerceptron::new().storage_bits(), 8 * 2048 * 6);
    }
}
