//! Return address stack (Table II: 64 entries).
//!
//! Calls push the address of the instruction after the call; returns pop
//! it. The stack is circular: overflowing pushes overwrite the oldest
//! entry (deep recursion then mispredicts, as on real hardware), and
//! popping an empty stack yields `None`.

use btbx_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// A fixed-capacity circular return address stack.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    /// Index of the next push slot.
    top: usize,
    /// Live entries (≤ capacity).
    len: usize,
}

impl ReturnAddressStack {
    /// Create a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        ReturnAddressStack {
            entries: vec![0; capacity],
            top: 0,
            len: 0,
        }
    }

    /// Push a return address (the PC after a call).
    pub fn push(&mut self, ret_addr: u64) {
        self.entries[self.top] = ret_addr;
        self.top = (self.top + 1) % self.entries.len();
        self.len = (self.len + 1).min(self.entries.len());
    }

    /// Pop the most recent return address.
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.len -= 1;
        Some(self.entries[self.top])
    }

    /// Peek at the top without popping (used by prediction paths that
    /// must not disturb state).
    pub fn peek(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let i = (self.top + self.entries.len() - 1) % self.entries.len();
        Some(self.entries[i])
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.len = 0;
        self.top = 0;
    }
}

impl Snapshot for ReturnAddressStack {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.entries.len() as u64);
        for &e in &self.entries {
            w.u64(e);
        }
        w.u64(self.top as u64);
        w.u64(self.len as u64);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.entries.len() as u64, "ras capacity")?;
        for e in &mut self.entries {
            *e = r.u64()?;
        }
        let top = r.u64()? as usize;
        let len = r.u64()? as usize;
        if top >= self.entries.len() || len > self.entries.len() {
            return Err(SnapError::Corrupt("ras cursor out of range"));
        }
        self.top = top;
        self.len = len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut r = ReturnAddressStack::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut r = ReturnAddressStack::new(4);
        r.push(0x42);
        assert_eq!(r.peek(), Some(0x42));
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop(), Some(0x42));
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn overflow_overwrites_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // evicts 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "oldest entry was lost");
    }

    #[test]
    fn wraparound_is_consistent() {
        let mut r = ReturnAddressStack::new(3);
        for round in 0..5u64 {
            r.push(round * 10 + 1);
            r.push(round * 10 + 2);
            assert_eq!(r.pop(), Some(round * 10 + 2));
            assert_eq!(r.pop(), Some(round * 10 + 1));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut r = ReturnAddressStack::new(4);
        r.push(7);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        ReturnAddressStack::new(0);
    }
}
