//! Front-end microarchitecture simulator for the BTB-X reproduction.
//!
//! This crate is the stand-in for the paper's (modified) ChampSim: a
//! trace-driven, cycle-based model of an Intel Sunny-Cove-like core front
//! end (Table II) with the two methodological changes of Section VI-A
//! built in natively:
//!
//! 1. a *realistic* BTB (pluggable [`btbx_core::Btb`]) instead of
//!    ChampSim's implicit oracle BTB, and
//! 2. decode-stage resteer for BTB-missing unconditional direct branches
//!    and taken-predicted conditionals (instead of execute-stage-only
//!    resolution), plus commit-time, taken-only BTB updates.
//!
//! Modules:
//!
//! * [`config`] — the Table II parameter set plus model depths;
//! * [`perceptron`] — a hashed perceptron direction predictor;
//! * [`ras`] — the 64-entry return address stack;
//! * [`bpu`] — the branch prediction unit combining BTB + direction
//!   predictor + RAS and classifying per-instruction outcomes;
//! * [`cache`] — set-associative caches with MSHRs;
//! * [`hierarchy`] — the L1I/L1D/L2/LLC memory hierarchy;
//! * [`ftq`] — the fetch target queue that decouples prediction from
//!   fetch;
//! * [`fdip`] — the fetch-directed instruction prefetcher scanning the
//!   FTQ;
//! * [`sim`] — the cycle loop tying everything together;
//! * [`stats`] — IPC, MPKI, flush and energy-relevant access statistics;
//! * [`runner`] — the panic-safe work-queue thread pool;
//! * [`parallel`] — interval-sharded replay of one run across the pool;
//! * [`batch`] — batched multi-lane execution: many org×budget lanes over
//!   one materialized event window, bit-identical to solo runs.
//!
//! # Model fidelity
//!
//! The backend is deliberately simplified relative to a full OoO core:
//! instructions complete at `fetch + frontend_depth (+ memory latency)`
//! and commit in order (≤ 6/cycle) bounded by a 352-entry ROB; there is no
//! register dependence tracking. Front-end behaviour — the subject of the
//! paper — is modelled in detail: FTQ occupancy, per-block L1-I access
//! with MSHR merging, FDIP prefetch, decode- vs execute-stage resteer
//! bubbles, and wrong-path accounting. DESIGN.md discusses the
//! substitution.

pub mod batch;
pub mod bpu;
pub mod cache;
pub mod config;
pub mod fdip;
pub mod ftq;
pub mod hierarchy;
pub mod parallel;
pub mod perceptron;
pub mod ras;
pub mod runner;
pub mod session;
pub mod sim;
pub mod stats;

pub use batch::{BatchLane, BatchSession, BatchStream};
pub use config::SimConfig;
pub use parallel::{
    warm_identity, AnyLadder, AnyWarmLadder, CheckpointLadder, ParallelOutcome, ParallelSession,
    ParallelTelemetry, WarmEntry, WarmLadder,
};
pub use session::{IntervalStats, SessionError, SimSession};
pub use sim::{simulate, Simulator};
pub use stats::{SimResult, SimStats};
