//! A minimal work-queue thread pool for simulation work.
//!
//! Jobs are independent closures producing results; the pool preserves
//! input order in the output. Progress is reported to stderr since sweeps
//! can take minutes. Lives in `btbx-uarch` (rather than the experiment
//! harness) so [`crate::parallel::ParallelSession`] can replay trace
//! shards on it; `btbx-bench` re-exports it unchanged.
//!
//! # Panics
//!
//! A panicking job does not poison or hang the pool: the panic is caught
//! on the worker, remaining queued jobs are cancelled, every in-flight job
//! finishes, and the pool then fails the whole run by resuming the panic
//! with the offending job's label attached.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `jobs` on up to `threads` workers, preserving order; `label` is
/// used for progress reporting. Jobs are labelled by queue index; use
/// [`run_named_jobs`] to attach meaningful labels.
pub fn run_jobs<T, F>(label: &str, threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let named = jobs
        .into_iter()
        .enumerate()
        .map(|(i, j)| (format!("#{i}"), j))
        .collect();
    run_named_jobs(label, threads, named)
}

/// [`run_jobs`] with a label per job; a panicking job fails the whole run
/// with that label in the panic message.
pub fn run_named_jobs<T, F>(pool_label: &str, threads: usize, jobs: Vec<(String, F)>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, total);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    // Jobs are FnOnce; store them as Options so workers can take them.
    let slots: Vec<(String, Mutex<Option<F>>)> = jobs
        .into_iter()
        .map(|(name, j)| (name, Mutex::new(Some(j))))
        .collect();
    let results: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<(String, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (name, slot) = &slots[i];
                let job = slot.lock().unwrap().take().expect("job taken twice");
                match catch_unwind(AssertUnwindSafe(job)) {
                    Ok(result) => *results[i].lock().unwrap() = Some(result),
                    Err(payload) => {
                        cancelled.store(true, Ordering::Relaxed);
                        let mut first = failure.lock().unwrap();
                        if first.is_none() {
                            *first = Some((name.clone(), payload));
                        }
                        break;
                    }
                }
                let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                if d.is_multiple_of(10) || d == total {
                    eprintln!("[{pool_label}] {d}/{total}");
                }
            });
        }
    });

    if let Some((name, payload)) = failure.into_inner().unwrap() {
        eprintln!("[{pool_label}] job `{name}` panicked; failing the run");
        resume_unwind(Box::new(format!(
            "[{pool_label}] job `{name}` panicked: {}",
            panic_message(&*payload)
        )));
    }

    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing result"))
        .collect()
}

/// A long-lived worker pool for service-style workloads (e.g. `btbx
/// serve` request handling), complementing the batch-oriented
/// [`run_named_jobs`].
///
/// Differences from the batch pool:
///
/// * workers live until [`ServicePool::shutdown`] (or drop) instead of
///   until a job list drains;
/// * a panicking job is logged and *absorbed* — the worker keeps serving.
///   A long-lived service must not let one poisoned request kill the
///   process; per-request failure reporting is the submitter's job.
///
/// Shutdown is graceful: already-submitted jobs finish before the workers
/// exit.
pub struct ServicePool {
    sender: Option<std::sync::mpsc::Sender<ServiceJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// A queued service job: display label plus the work itself.
type ServiceJob = (String, Box<dyn FnOnce() + Send>);

impl ServicePool {
    /// Spawn `threads` workers (at least one), labelled for panic logs.
    pub fn new(pool_label: &str, threads: usize) -> Self {
        let (sender, receiver) = std::sync::mpsc::channel::<ServiceJob>();
        let receiver = std::sync::Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|_| {
                let receiver = std::sync::Arc::clone(&receiver);
                let pool_label = pool_label.to_string();
                std::thread::spawn(move || loop {
                    // Hold the lock only while receiving, not while
                    // running the job.
                    let job = receiver.lock().unwrap().recv();
                    match job {
                        Ok((name, job)) => {
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                eprintln!("[{pool_label}] job `{name}` panicked; worker continues");
                            }
                        }
                        Err(_) => break, // all senders dropped: shutdown
                    }
                })
            })
            .collect();
        ServicePool {
            sender: Some(sender),
            workers,
        }
    }

    /// Queue a job; some worker runs it as soon as one is free.
    pub fn submit(&self, name: impl Into<String>, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is live until shutdown")
            .send((name.into(), Box::new(job)))
            .expect("workers outlive the sender");
    }

    /// Drain queued jobs and join every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Best-effort extraction of a panic payload's message (public so the
/// result store and the service can format caught panics the same way).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<_> = (0..50).map(|i| move || i * 2).collect();
        let out = run_jobs("t", 4, jobs);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_is_fine() {
        let out: Vec<i32> = run_jobs("t", 4, Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_works() {
        let jobs: Vec<_> = (0..5).map(|i| move || i + 1).collect();
        assert_eq!(run_jobs("t", 1, jobs), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn more_threads_than_jobs() {
        let jobs: Vec<_> = (0..2).map(|i| move || i).collect();
        assert_eq!(run_jobs("t", 16, jobs), vec![0, 1]);
    }

    #[test]
    fn panicking_job_fails_the_run_with_its_label() {
        // Regression test: before the catch_unwind handling, a panicking
        // job blew up its worker and the failure surfaced (if at all) as a
        // generic scope panic with no indication of which job died.
        type Job = Box<dyn FnOnce() -> u32 + Send>;
        let jobs: Vec<(String, Job)> = vec![
            ("fine".to_string(), Box::new(|| 1u32) as Job),
            (
                "doomed".to_string(),
                Box::new(|| -> u32 { panic!("simulated workload failure") }) as Job,
            ),
            ("also-fine".to_string(), Box::new(|| 3u32) as Job),
        ];
        let outcome = catch_unwind(AssertUnwindSafe(|| run_named_jobs("pool", 2, jobs)));
        let payload = outcome.expect_err("the run must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("labelled panic message");
        assert!(msg.contains("doomed"), "label missing: {msg}");
        assert!(msg.contains("simulated workload failure"), "{msg}");
        assert!(msg.contains("pool"), "{msg}");
    }

    #[test]
    fn service_pool_runs_jobs_and_drains_on_shutdown() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = ServicePool::new("svc", 3);
        for _ in 0..40 {
            let ran = Arc::clone(&ran);
            pool.submit("tick", move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 40, "shutdown must drain");
    }

    #[test]
    fn service_pool_survives_panicking_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = ServicePool::new("svc", 1);
        pool.submit("doomed", || panic!("bad request"));
        let after = Arc::clone(&ran);
        pool.submit("fine", move || {
            after.fetch_add(1, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(
            ran.load(Ordering::Relaxed),
            1,
            "the worker must outlive a panicking job"
        );
    }

    #[test]
    fn panic_cancels_queued_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // One worker: the panicking first job must stop the queue instead
        // of hanging or running the remaining 100 jobs.
        let ran = AtomicUsize::new(0);
        type Job<'a> = Box<dyn FnOnce() -> u32 + Send + 'a>;
        let mut jobs: Vec<(String, Job)> = vec![(
            "boom".to_string(),
            Box::new(|| -> u32 { panic!("die") }) as Job,
        )];
        for i in 0..100 {
            let ran = &ran;
            jobs.push((
                format!("later-{i}"),
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    0u32
                }) as Job,
            ));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| run_named_jobs("pool", 1, jobs)));
        assert!(outcome.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 0, "queued jobs must not run");
    }
}
