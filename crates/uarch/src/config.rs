//! Simulation parameters: the paper's Table II plus model-specific
//! pipeline depths.

use serde::{Deserialize, Serialize};

/// Core and memory-hierarchy parameters.
///
/// Defaults reproduce Table II (an Intel Sunny-Cove-like core):
/// 6-wide fetch, 128-entry FTQ, hashed-perceptron direction prediction,
/// 64-entry RAS, 352-entry ROB, 32 KB/8-way L1-I, 48 KB/12-way L1-D,
/// 512 KB/8-way L2, 2 MB/16-way LLC with the listed latencies and MSHR
/// counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Fetch width (instructions per cycle).
    pub fetch_width: u32,
    /// FTQ capacity in instructions.
    pub ftq_entries: usize,
    /// Instructions the BPU can predict per cycle.
    pub bpu_width: u32,
    /// Predicted-taken branches the BPU can process per cycle.
    pub bpu_taken_per_cycle: u32,
    /// RAS entries.
    pub ras_entries: usize,
    /// ROB capacity (in-flight instruction bound).
    pub rob_entries: usize,
    /// Commit width (instructions per cycle).
    pub commit_width: u32,
    /// Pipeline depth from fetch to the end of decode; a decode-stage
    /// resteer costs this many cycles after the branch was fetched.
    pub decode_depth: u32,
    /// Pipeline depth from fetch to branch resolution in execute.
    pub execute_depth: u32,
    /// Extra cycles to restart fetch after any resteer.
    pub redirect_penalty: u32,
    /// Depth from fetch to load issue (L1-D access start).
    pub issue_depth: u32,

    /// Enable the decode-stage resteer optimization of Section VI-A.
    pub decode_resteer: bool,
    /// Enable FDIP instruction prefetching.
    pub fdip: bool,

    /// L1-I geometry: (bytes, ways, hit latency, MSHRs).
    pub l1i: CacheParams,
    /// L1-D geometry.
    pub l1d: CacheParams,
    /// Unified L2 geometry.
    pub l2: CacheParams,
    /// Last-level cache geometry.
    pub llc: CacheParams,
    /// Main-memory latency in cycles.
    pub memory_latency: u32,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Access (hit) latency in cycles.
    pub latency: u32,
    /// Miss status holding registers (outstanding misses).
    pub mshrs: usize,
}

impl CacheParams {
    /// Number of 64-byte-block sets.
    pub fn sets(&self) -> usize {
        self.bytes / 64 / self.ways
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 6,
            ftq_entries: 128,
            bpu_width: 8,
            bpu_taken_per_cycle: 2,
            ras_entries: 64,
            rob_entries: 352,
            commit_width: 6,
            decode_depth: 4,
            execute_depth: 12,
            redirect_penalty: 1,
            issue_depth: 8,
            decode_resteer: true,
            fdip: true,
            l1i: CacheParams {
                bytes: 32 * 1024,
                ways: 8,
                latency: 4,
                mshrs: 8,
            },
            l1d: CacheParams {
                bytes: 48 * 1024,
                ways: 12,
                latency: 5,
                mshrs: 16,
            },
            l2: CacheParams {
                bytes: 512 * 1024,
                ways: 8,
                latency: 15,
                mshrs: 32,
            },
            llc: CacheParams {
                bytes: 2 * 1024 * 1024,
                ways: 16,
                latency: 35,
                mshrs: 64,
            },
            memory_latency: 200,
        }
    }
}

impl SimConfig {
    /// Table II configuration with FDIP enabled.
    pub fn with_fdip() -> Self {
        SimConfig::default()
    }

    /// Table II configuration without instruction prefetching (the
    /// paper's "no" prefetcher builds).
    pub fn without_fdip() -> Self {
        SimConfig {
            fdip: false,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.ftq_entries, 128);
        assert_eq!(c.ras_entries, 64);
        assert_eq!(c.rob_entries, 352);
        assert_eq!(c.l1i.bytes, 32 * 1024);
        assert_eq!(c.l1i.ways, 8);
        assert_eq!(c.l1i.latency, 4);
        assert_eq!(c.l1i.mshrs, 8);
        assert_eq!(c.l1d.bytes, 48 * 1024);
        assert_eq!(c.l1d.ways, 12);
        assert_eq!(c.l2.bytes, 512 * 1024);
        assert_eq!(c.llc.bytes, 2 * 1024 * 1024);
        assert_eq!(c.llc.ways, 16);
        assert_eq!(c.llc.mshrs, 64);
    }

    #[test]
    fn cache_sets_are_consistent() {
        let c = SimConfig::default();
        assert_eq!(c.l1i.sets(), 64);
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.llc.sets(), 2048);
    }

    #[test]
    fn fdip_toggles() {
        assert!(SimConfig::with_fdip().fdip);
        assert!(!SimConfig::without_fdip().fdip);
    }

    #[test]
    fn decode_is_shallower_than_execute() {
        let c = SimConfig::default();
        assert!(c.decode_depth < c.execute_depth);
    }
}
