//! Interval-sharded simulation: split one run's measurement window into
//! `K` streaming trace shards, replay them on the [`crate::runner`] thread
//! pool, and deterministically merge the results.
//!
//! # How a shard replays
//!
//! A serial run warms `W` instructions and measures `M`. A sharded run
//! splits `[W, W + M)` into `K` contiguous chunks at exact
//! trace-instruction boundaries. Shard `i` rebuilds state for its chunk by
//! simulating a bounded **warm-up carry-in** of `C` instructions
//! immediately before its chunk:
//!
//! ```text
//! shard i:  carry-in C (warm-up)  →  measure M/K     over trace
//!           [W + i·M/K − C, W + (i+1)·M/K)
//! ```
//!
//! Each shard **streams** its window: it positions its own trace source at
//! the window start and generates events on the fly while simulating, so
//! there is no shared materialization pass and no `O(window)` event
//! buffer — peak event memory is one packed
//! [`crate::sim::EVENT_BLOCK_BYTES`] staging block per live shard (plus,
//! for file-backed [`btbx_trace::AnySource`] streams, one decoded
//! container block per live shard — still O(shards), never O(window)). The
//! simulated work drops from `W + M` to `K·C + M`, which wins wall-clock
//! even on one core when `K·C < W`, and the shards then parallelize
//! across cores.
//!
//! # The checkpoint ladder
//!
//! Positioning a shard at trace offset `lo` costs `lo` generator
//! skip-steps from a cold source — cheap next to simulation, but still
//! the dominant non-simulated work of a sharded run. The
//! [`CheckpointLadder`] removes it wherever a position has been reached
//! before: shards snapshot their source ([`SeekableSource::checkpoint`])
//! at every shard boundary they stream across and publish the snapshots;
//! a shard starting at `lo` first claims the deepest snapshot at or below
//! `lo` and only skip-steps the difference. Within one run this pipelines
//! shards on few-core hosts (shard `i` streams across shard `i+1`'s start
//! and hands it a zero-cost start); **across** runs — a budget sweep, an
//! FDIP ablation, repeated benchmarking of the same workload — passing a
//! shared ladder via [`ParallelSession::ladder`] makes every later run
//! seek in `O(state)` instead of `O(position)`, amortizing trace
//! generation over the whole experiment the way the paper's Table IV
//! sweep demands.
//!
//! # Determinism and serial equivalence
//!
//! A checkpoint restore reproduces the generator state bit-for-bit, so a
//! shard's stream is identical whether it stepped from zero, restored a
//! same-run snapshot, or restored a snapshot from a previous run. The
//! merge is a pure, order-independent reduction over per-shard counters,
//! so a sharded run is byte-identical across repetitions and thread
//! schedules. Equivalence with a *serial* [`SimSession`] holds:
//!
//! * **always** for `shards = 1` with the default carry-in — the shard
//!   replays exactly the serial session;
//! * **exactly** for `shards > 1` when the carry-in fully converges
//!   microarchitectural state before each chunk (the workload's working
//!   set fits the modelled structures and `C` covers its steady state, as
//!   in the synthetic loop suites — pinned by
//!   `tests/parallel_determinism.rs`);
//! * **approximately** otherwise: each shard measures its exact chunk of
//!   the trace, but state at a chunk boundary reflects `C` instructions of
//!   history instead of the full prefix, perturbing boundary-local counts.
//!
//! # Checkpoint mode: exact sharding at any carry-in
//!
//! [`ParallelSession::checkpoints`] closes the "approximately" case. In
//! checkpoint mode shards exchange **warm microarchitectural snapshots**
//! through a [`WarmLadder`]: shard 0 warms from position 0 exactly as a
//! serial run would, and every shard, on reaching the next chunk
//! boundary, serializes its complete state (BTB, direction predictor,
//! RAS, caches, MSHRs, FTQ, ROB, FDIP and all in-flight bookkeeping — see
//! [`btbx_core::snap`]) and publishes it together with a trace checkpoint.
//! The next shard restores that pair in O(state) and continues on the
//! *identical* serial trajectory, so the merged counters are
//! **bit-identical to the serial run for any workload and any carry-in**
//! (the carry-in setting is simply ignored: no prefix is replayed at
//! all). A cold run pipelines shards hand-to-hand; re-runs through a
//! shared warm ladder (a repeated bench, a sweep repetition) restore
//! every boundary immediately and execute fully in parallel.
//!
//! See EXPERIMENTS.md ("Interval sharding") for the user-facing contract.

use crate::bpu::Bpu;
use crate::runner::run_named_jobs;
use crate::session::{IntervalStats, SessionError, SimSession};
use crate::sim::{Simulator, EVENT_BLOCK_BYTES};
use crate::stats::SimResult;
use crate::SimConfig;
use btbx_core::snap::{restore_sealed, save_sealed};
use btbx_core::spec::BtbSpec;
use btbx_trace::packed::PackedBuf;
use btbx_trace::record::TraceInstr;
use btbx_trace::source::SeekableSource;
use btbx_trace::TraceSource;
use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Upper bound on retained checkpoints; later publishes are dropped once
/// the ladder is full (positions already present keep being reusable).
const LADDER_CAPACITY: usize = 1024;

/// The ladder type for [`btbx_trace::AnySource`] streams — what sweeps
/// and benches share across runs now that synthetic, ChampSim and
/// packed-container workloads all ride the same sharded engine.
pub type AnyLadder = CheckpointLadder<btbx_trace::AnyCheckpoint>;

/// A shared store of trace-source snapshots keyed by stream position.
///
/// One ladder serves one logical trace stream (same workload, same seed):
/// the first source that touches the ladder binds its
/// [`TraceSource::source_name`], and any later use by a differently named
/// stream panics rather than silently replaying the wrong trace. Share a
/// ladder across [`ParallelSession`] runs of the same workload to make
/// repeat positioning O(state); see the module docs.
#[derive(Debug, Default)]
pub struct CheckpointLadder<C> {
    stream: Mutex<Option<String>>,
    slots: Mutex<BTreeMap<u64, C>>,
}

impl<C: Clone> CheckpointLadder<C> {
    /// An empty, unbound ladder.
    pub fn new() -> Self {
        CheckpointLadder {
            stream: Mutex::new(None),
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// Bind the ladder to a stream name (first caller wins).
    ///
    /// # Panics
    ///
    /// Panics when the ladder is already bound to a different name: a
    /// ladder must never be shared across distinct workloads.
    pub fn bind(&self, name: &str) {
        let mut stream = self.stream.lock().unwrap();
        match stream.as_deref() {
            None => *stream = Some(name.to_string()),
            Some(bound) => assert_eq!(
                bound, name,
                "checkpoint ladder is bound to stream `{bound}`; \
                 refusing to reuse it for `{name}`"
            ),
        }
    }

    /// The deepest snapshot at or below `pos`, if any.
    pub fn claim(&self, pos: u64) -> Option<(u64, C)> {
        let slots = self.slots.lock().unwrap();
        slots
            .range(..=pos)
            .next_back()
            .map(|(p, c)| (*p, c.clone()))
    }

    /// Store a snapshot taken at `pos` (first publish wins; ignored once
    /// [`LADDER_CAPACITY`] distinct positions are held).
    pub fn publish(&self, pos: u64, cp: C) {
        let mut slots = self.slots.lock().unwrap();
        if slots.len() < LADDER_CAPACITY {
            slots.entry(pos).or_insert(cp);
        }
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// `true` when no snapshot is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The warm-ladder type for [`btbx_trace::AnySource`] streams.
pub type AnyWarmLadder = WarmLadder<btbx_trace::AnyCheckpoint>;

/// The exact-simulation identity a [`WarmLadder`] binds to and warm
/// snapshots are sealed under: workload stream, BTB organization and
/// budget, warm-up length, and the full simulator configuration
/// (fingerprinted via its `Debug` form, which covers every field).
/// Persistence layers key warm-cache files by this string.
pub fn warm_identity(source_name: &str, spec: &BtbSpec, warmup: u64, config: &SimConfig) -> String {
    format!(
        "{}|{}|{}b|warm{}|{:?}",
        source_name,
        spec.org.id(),
        spec.bits(),
        warmup,
        config
    )
}

/// One warm-state rung: a trace checkpoint paired with a sealed
/// microarchitectural snapshot, both taken at the same serial-trajectory
/// moment (the first tick boundary at or past the rung's nominal
/// instruction count).
#[derive(Debug, Clone)]
pub struct WarmEntry<C> {
    /// Trace-source state at the snapshot moment (the source sits ahead
    /// of commit by the in-flight instructions the snapshot carries).
    pub checkpoint: C,
    /// Sealed simulator state ([`btbx_core::snap::save_sealed`] bytes),
    /// shared cheaply between the ladder and persistence layers.
    pub snapshot: Arc<Vec<u8>>,
    /// Actual committed count at the end of warm-up (`W′ ≥ warmup`,
    /// overshooting by less than the commit width). All chunk targets are
    /// `base + i·chunk`, so every restorer continues the same trajectory.
    pub base: u64,
    /// Actual committed count at the snapshot moment.
    pub committed: u64,
    /// Trace-source position at the snapshot moment (lets persistence
    /// re-derive `checkpoint` from a fresh source via `seek`).
    pub position: u64,
}

#[derive(Debug)]
struct WarmState<C> {
    slots: BTreeMap<u64, WarmEntry<C>>,
    poisoned: bool,
}

/// A shared store of warm microarchitectural snapshots keyed by *nominal*
/// instruction count (`warmup + i·chunk`), the backbone of checkpoint
/// mode ([`ParallelSession::checkpoints`]).
///
/// One warm ladder serves one exact simulation identity — workload, BTB
/// spec, warm-up length and simulator configuration. The first publisher
/// binds the identity string; later use under a different identity panics
/// rather than silently restoring foreign state. Entries are keyed by
/// nominal counts so that runs with *different shard geometries* reuse
/// each other's rungs whenever their boundaries coincide: an entry at key
/// `K` is always "the serial state at the first tick boundary with
/// `committed ≥ base + (K − warmup)`", independent of which run produced
/// it.
#[derive(Debug)]
pub struct WarmLadder<C> {
    identity: Mutex<Option<String>>,
    state: Mutex<WarmState<C>>,
    ready: Condvar,
}

impl<C: Clone> Default for WarmLadder<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Clone> WarmLadder<C> {
    /// An empty, unbound ladder.
    pub fn new() -> Self {
        WarmLadder {
            identity: Mutex::new(None),
            state: Mutex::new(WarmState {
                slots: BTreeMap::new(),
                poisoned: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Bind the ladder to a simulation identity (first caller wins).
    ///
    /// # Panics
    ///
    /// Panics when already bound to a different identity: snapshots embed
    /// the full BTB and cache state, so cross-identity reuse would replay
    /// the wrong microarchitecture.
    pub fn bind(&self, identity: &str) {
        let mut bound = self.identity.lock().unwrap();
        match bound.as_deref() {
            None => *bound = Some(identity.to_string()),
            Some(prev) => assert_eq!(
                prev, identity,
                "warm ladder is bound to `{prev}`; refusing to reuse it for `{identity}`"
            ),
        }
    }

    /// The bound identity, if any (persistence keys cache files by it).
    pub fn identity(&self) -> Option<String> {
        self.identity.lock().unwrap().clone()
    }

    /// The entry at nominal key `key`, if already published.
    pub fn get(&self, key: u64) -> Option<WarmEntry<C>> {
        self.state.lock().unwrap().slots.get(&key).cloned()
    }

    /// Block until the entry at `key` is published and return it.
    ///
    /// # Panics
    ///
    /// Panics when the ladder is poisoned — the producing shard died, so
    /// waiting would hang forever.
    pub fn wait(&self, key: u64) -> WarmEntry<C> {
        let mut state = self.state.lock().unwrap();
        loop {
            assert!(
                !state.poisoned,
                "warm ladder poisoned: a producing shard failed before publishing key {key}"
            );
            if let Some(e) = state.slots.get(&key) {
                return e.clone();
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Store the entry at `key` (first publish wins; capacity-capped) and
    /// wake every waiter.
    pub fn publish(&self, key: u64, entry: WarmEntry<C>) {
        let mut state = self.state.lock().unwrap();
        if state.slots.len() < LADDER_CAPACITY {
            state.slots.entry(key).or_insert(entry);
        }
        drop(state);
        self.ready.notify_all();
    }

    /// Mark the ladder unusable and wake every waiter (they panic instead
    /// of hanging). Called by the shard-failure drop guard.
    pub fn poison(&self) {
        self.state.lock().unwrap().poisoned = true;
        self.ready.notify_all();
    }

    /// Whether a producing shard died and poisoned the ladder. A
    /// poisoned ladder panics every waiter, so long-lived owners (the
    /// serve layer's per-point ladder map) check this to replace the
    /// entry instead of handing the poison to the next request.
    pub fn is_poisoned(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .poisoned
    }

    /// All entries in key order (persistence walks these).
    pub fn entries(&self) -> Vec<(u64, WarmEntry<C>)> {
        let state = self.state.lock().unwrap();
        state.slots.iter().map(|(k, e)| (*k, e.clone())).collect()
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().slots.len()
    }

    /// `true` when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Poisons the warm ladder if a shard job unwinds before disarming, so
/// waiting shards panic promptly instead of deadlocking on the condvar.
struct PoisonGuard<'a, C: Clone> {
    ladder: &'a WarmLadder<C>,
    armed: bool,
}

impl<C: Clone> Drop for PoisonGuard<'_, C> {
    fn drop(&mut self) {
        if self.armed {
            self.ladder.poison();
        }
    }
}

/// A pass-through [`TraceSource`] that publishes a checkpoint to the
/// ladder whenever the stream crosses one of the pending boundary
/// positions — this is how shard `i` seeds the starts of shards `> i`
/// while streaming its own window.
struct LadderTap<'a, S: SeekableSource> {
    inner: S,
    ladder: &'a CheckpointLadder<S::Checkpoint>,
    /// Ascending positions still to publish.
    pending: Vec<u64>,
    next: usize,
}

impl<'a, S: SeekableSource> LadderTap<'a, S> {
    fn new(inner: S, ladder: &'a CheckpointLadder<S::Checkpoint>, boundaries: Vec<u64>) -> Self {
        let pos = inner.position();
        let next = boundaries.partition_point(|&b| b <= pos);
        LadderTap {
            inner,
            ladder,
            pending: boundaries,
            next,
        }
    }

    /// Publish every pending boundary the stream has reached.
    #[inline]
    fn publish_reached(&mut self) {
        while let Some(&b) = self.pending.get(self.next) {
            let pos = self.inner.position();
            if pos < b {
                break;
            }
            self.next += 1;
            if pos == b {
                self.ladder.publish(b, self.inner.checkpoint());
            }
        }
    }
}

impl<S: SeekableSource> TraceSource for LadderTap<'_, S> {
    fn next_instr(&mut self) -> Option<TraceInstr> {
        self.publish_reached();
        self.inner.next_instr()
    }

    fn source_name(&self) -> &str {
        self.inner.source_name()
    }

    fn fill_block(&mut self, block: &mut PackedBuf, max: usize) -> usize {
        self.publish_reached();
        // Never batch past the next boundary: the snapshot must be taken
        // exactly there.
        let cap = match self.pending.get(self.next) {
            Some(&b) => max.min((b - self.inner.position()) as usize),
            None => max,
        };
        self.inner.fill_block(block, cap.max(1))
    }
}

/// Per-run positioning and buffering telemetry; `btbx bench` records it
/// so the serial generation pass cannot silently creep back.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelTelemetry {
    /// Wall-clock spent in the serial prelude of [`ParallelSession::run`]
    /// (validation and shard planning) before any shard job started. The
    /// streaming design keeps this O(1) in the window length.
    pub serial_setup_seconds: f64,
    /// Summed wall-clock the shards spent positioning their sources
    /// (claiming checkpoints and skip-stepping to the window start) —
    /// the generation-side share of the run.
    pub position_seconds: f64,
    /// Total instructions skip-stepped while positioning (0 when every
    /// shard start was served from the checkpoint ladder).
    pub advanced_instructions: u64,
    /// Event-buffer footprint of the run's design: one packed staging
    /// block per concurrently live shard (`threads × EVENT_BLOCK_BYTES`),
    /// O(shards) not O(window). Computed from the streaming structure,
    /// not instrumented at runtime; a reintroduced serial buffering pass
    /// shows up in `serial_setup_seconds`, which `btbx bench` gates.
    pub peak_event_buffer_bytes: u64,
    /// Checkpoint mode: summed wall-clock the shards spent restoring warm
    /// state (trace checkpoint + snapshot deserialization) — O(state),
    /// never O(position).
    pub restore_seconds: f64,
    /// Checkpoint mode: largest sealed snapshot produced or consumed this
    /// run, in bytes.
    pub snapshot_bytes: u64,
    /// Checkpoint mode: instructions *simulated* to build warm state this
    /// run (shard 0's cold warm-up). Zero when every boundary — including
    /// the warm-up itself — was restored from the warm ladder, the
    /// telemetry signature of an O(state) re-run.
    pub warmed_instructions: u64,
}

/// Outcome of a sharded run: the merged result plus the merged
/// per-interval statistics stream.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Merged simulation result (counters summed over shards, derived
    /// metrics recomputed).
    pub result: SimResult,
    /// Global interval stream: shard-local intervals re-indexed and
    /// re-accumulated in trace order, matching what a serial
    /// [`SimSession::every`] observer would see under the equivalence
    /// conditions above.
    pub intervals: Vec<IntervalStats>,
    /// Positioning/buffering telemetry for this run.
    pub telemetry: ParallelTelemetry,
}

/// Builder for an interval-sharded simulation of one workload.
///
/// `factory` must produce a fresh, identical trace stream per call (every
/// [`btbx_trace::suite::WorkloadSpec`] and any `Clone` source qualifies);
/// each shard streams its own window from its own source instance.
pub struct ParallelSession<'l, S: SeekableSource, F> {
    factory: F,
    spec: BtbSpec,
    config: SimConfig,
    label: Option<String>,
    warmup: u64,
    measure: u64,
    shards: usize,
    carry_in: Option<u64>,
    interval: Option<u64>,
    threads: usize,
    ladder: Option<&'l CheckpointLadder<S::Checkpoint>>,
    checkpoint_mode: bool,
    warm: Option<&'l WarmLadder<S::Checkpoint>>,
    abort: Option<Arc<AtomicBool>>,
}

impl<'l, S, F> ParallelSession<'l, S, F>
where
    S: SeekableSource + Send,
    F: Fn() -> S + Sync,
{
    /// Start a sharded session: `factory` yields one trace stream per
    /// shard, `spec` describes the BTB under test.
    ///
    /// Defaults: Table II config, no warm-up, 1 shard, carry-in equal to
    /// the warm-up, one interval per shard, one thread per shard (capped
    /// at the host's parallelism), run-local checkpoint ladder.
    pub fn new(factory: F, spec: BtbSpec) -> Self {
        ParallelSession {
            factory,
            spec,
            config: SimConfig::default(),
            label: None,
            warmup: 0,
            measure: u64::MAX,
            shards: 1,
            carry_in: None,
            interval: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ladder: None,
            checkpoint_mode: false,
            warm: None,
            abort: None,
        }
    }

    /// Replace the whole simulator configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the organization label recorded in the result.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Serial-equivalent warm-up: the measurement window starts after this
    /// many committed instructions.
    pub fn warmup(mut self, instructions: u64) -> Self {
        self.warmup = instructions;
        self
    }

    /// Total measured instructions. Must be finite to shard.
    pub fn measure(mut self, instructions: u64) -> Self {
        self.measure = instructions;
        self
    }

    /// Number of shards `K` (0 is treated as 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Simulated warm-up carry-in per shard (default: the full `warmup`,
    /// the most conservative setting). Smaller values trade boundary
    /// accuracy for speed; the skipped prefix is never simulated.
    pub fn carry_in(mut self, instructions: u64) -> Self {
        self.carry_in = Some(instructions);
        self
    }

    /// Emit merged [`IntervalStats`] every `interval` measured
    /// instructions (default: one interval per shard chunk). For aligned
    /// boundaries use an interval that divides the chunk size.
    pub fn every(mut self, interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        self.interval = Some(interval);
        self
    }

    /// Cap worker threads (default: host parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Reuse a [`CheckpointLadder`] across runs of the *same workload*
    /// (same factory output): shard positions reached by any earlier run
    /// are then restored in O(state) instead of re-derived by stepping.
    /// The results are bit-identical with or without a shared ladder.
    pub fn ladder(mut self, ladder: &'l CheckpointLadder<S::Checkpoint>) -> Self {
        self.ladder = Some(ladder);
        self
    }

    /// Run shards in checkpoint mode (see the module docs): shards hand
    /// warm microarchitectural snapshots to each other instead of
    /// replaying a carry-in prefix, making the sharded result
    /// bit-identical to the serial run for any workload. The carry-in
    /// setting is ignored in this mode.
    pub fn checkpoints(mut self, on: bool) -> Self {
        self.checkpoint_mode = on;
        self
    }

    /// Reuse a [`WarmLadder`] across checkpoint-mode runs of the *same
    /// simulation identity* (workload, spec, warm-up and configuration):
    /// every boundary already published restores in O(state), so re-runs
    /// skip the serial warm-up entirely and execute fully in parallel.
    /// Implies [`checkpoints`](Self::checkpoints).
    pub fn warm_ladder(mut self, ladder: &'l WarmLadder<S::Checkpoint>) -> Self {
        self.warm = Some(ladder);
        self.checkpoint_mode = true;
        self
    }

    /// Attach a cooperative cancellation flag shared by every shard: once
    /// it turns true, each shard panics with
    /// [`crate::sim::ABORT_MARKER`] at its next poll boundary and the run
    /// fails as a whole. Services use this for per-request deadlines.
    pub fn abort(mut self, flag: Arc<AtomicBool>) -> Self {
        self.abort = Some(flag);
        self
    }

    /// Run every shard and merge.
    ///
    /// # Errors
    ///
    /// [`SessionError::Spec`] when the BTB spec does not validate and
    /// [`SessionError::UnboundedMeasure`] when more than one shard is
    /// requested without a finite [`measure`](Self::measure) window.
    pub fn run(self) -> Result<ParallelOutcome, SessionError> {
        let setup_started = Instant::now();
        self.spec.validate().map_err(SessionError::Spec)?;
        if self.measure == u64::MAX && self.shards > 1 {
            return Err(SessionError::UnboundedMeasure);
        }
        let shards = if self.measure == u64::MAX {
            1
        } else {
            // Never create empty shards.
            self.shards.min(self.measure.max(1) as usize).max(1)
        };
        let spec = self.spec;
        let interval = self.interval;

        if shards == 1 {
            // Streamed directly: no positioning, and `measure` may be
            // unbounded. This is exactly the serial session.
            let mut intervals = Vec::new();
            let mut session = SimSession::new((self.factory)())
                .btb_spec(spec)
                .config(self.config.clone())
                .warmup(self.warmup)
                .measure(self.measure);
            if let Some(l) = &self.label {
                session = session.label(l.clone());
            }
            if let Some(a) = &self.abort {
                session = session.abort(Arc::clone(a));
            }
            let result = session
                .every(interval.unwrap_or(self.measure).min(self.measure), |iv| {
                    intervals.push(*iv)
                })
                .run()
                .expect("spec validated above");
            return Ok(ParallelOutcome {
                result,
                intervals,
                telemetry: ParallelTelemetry {
                    peak_event_buffer_bytes: EVENT_BLOCK_BYTES,
                    ..ParallelTelemetry::default()
                },
            });
        }

        if self.checkpoint_mode {
            return self.run_checkpointed(shards, setup_started);
        }

        let chunk = self.measure.div_ceil(shards as u64);
        // Rounding `chunk` up can leave the tail shards with nothing to
        // measure (e.g. measure 10 over 7 shards → chunk 2 covers the
        // window in 5); drop the empty tail so every shard measures at
        // least one instruction.
        let shards = self.measure.div_ceil(chunk) as usize;
        let carry = self.carry_in.unwrap_or(self.warmup);

        struct ShardPlan {
            lo: u64,
            start: u64,
            measure: u64,
        }
        let plans: Vec<ShardPlan> = (0..shards as u64)
            .map(|i| {
                let start = self.warmup + i * chunk;
                let measure = chunk.min(self.measure - i * chunk);
                ShardPlan {
                    lo: start.saturating_sub(carry),
                    start,
                    measure,
                }
            })
            .collect();
        // Every shard window start is a ladder boundary: a shard that
        // streams across a later shard's start publishes its state there.
        let boundaries: Vec<u64> = plans.iter().map(|p| p.lo).collect();

        let local_ladder;
        let ladder = match self.ladder {
            Some(shared) => shared,
            None => {
                local_ladder = CheckpointLadder::new();
                &local_ladder
            }
        };

        let config = &self.config;
        let label = &self.label;
        let factory = &self.factory;
        let boundaries = &boundaries;
        let abort = &self.abort;
        let jobs: Vec<(String, _)> = plans
            .into_iter()
            .enumerate()
            .map(|(i, plan)| {
                let job = move || {
                    // Position the stream at the window start: claim the
                    // deepest published snapshot, skip-step the rest.
                    let positioning = Instant::now();
                    let mut source = factory();
                    ladder.bind(source.source_name());
                    if let Some((_, cp)) = ladder.claim(plan.lo) {
                        source.restore(&cp);
                    }
                    let advanced = source.advance(plan.lo - source.position());
                    if source.position() == plan.lo {
                        ladder.publish(plan.lo, source.checkpoint());
                    }
                    let position_seconds = positioning.elapsed().as_secs_f64();

                    let tap = LadderTap::new(source, ladder, boundaries.clone());
                    let mut intervals = Vec::new();
                    let mut session = SimSession::new(tap)
                        .btb_spec(spec)
                        .config(config.clone())
                        .warmup(plan.start - plan.lo)
                        .measure(plan.measure);
                    if let Some(l) = label {
                        session = session.label(l.clone());
                    }
                    if let Some(a) = abort {
                        session = session.abort(Arc::clone(a));
                    }
                    let result = session
                        .every(interval.unwrap_or(plan.measure).min(plan.measure), |iv| {
                            intervals.push(*iv)
                        })
                        .run()
                        .expect("spec validated before sharding");
                    (result, intervals, position_seconds, advanced)
                };
                (format!("shard{i}"), job)
            })
            .collect();

        let pool_label = self
            .label
            .clone()
            .unwrap_or_else(|| spec.org.id().to_string());
        let threads = self.threads.min(shards);
        let serial_setup_seconds = setup_started.elapsed().as_secs_f64();
        let shard_outputs = run_named_jobs(&pool_label, threads, jobs);
        let mut outcome = merge(shard_outputs);
        outcome.telemetry.serial_setup_seconds = serial_setup_seconds;
        outcome.telemetry.peak_event_buffer_bytes = threads as u64 * EVENT_BLOCK_BYTES;
        Ok(outcome)
    }

    /// Checkpoint-mode back half of [`run`](Self::run): shards restore
    /// warm snapshots from the [`WarmLadder`] (or hand them forward while
    /// a cold run pipelines) and measure to *absolute* committed targets
    /// on the serial trajectory, so the merge is bit-identical to a
    /// serial session for any workload.
    fn run_checkpointed(
        self,
        shards: usize,
        setup_started: Instant,
    ) -> Result<ParallelOutcome, SessionError> {
        let spec = self.spec;
        let interval = self.interval;
        let warmup = self.warmup;
        let measure = self.measure;
        let chunk = measure.div_ceil(shards as u64);
        // Drop the empty tail exactly as approximate mode does.
        let shards = measure.div_ceil(chunk) as usize;

        let local_warm;
        let warm = match self.warm {
            Some(shared) => shared,
            None => {
                local_warm = WarmLadder::new();
                &local_warm
            }
        };

        struct ShardCost {
            restore_seconds: f64,
            snapshot_bytes: u64,
            warmed_instructions: u64,
        }

        let config = &self.config;
        let label = &self.label;
        let factory = &self.factory;
        let abort = &self.abort;
        let jobs: Vec<(String, _)> = (0..shards)
            .map(|i| {
                let job = move || {
                    // If this job dies before handing its snapshot on,
                    // poison the ladder so downstream shards fail fast
                    // instead of waiting forever.
                    let mut guard = PoisonGuard {
                        ladder: warm,
                        armed: true,
                    };
                    let restore_started = Instant::now();
                    let mut source = factory();
                    let identity = warm_identity(source.source_name(), &spec, warmup, config);
                    warm.bind(&identity);
                    let key = warmup + i as u64 * chunk;
                    let mut snapshot_bytes = 0u64;
                    let mut warmed_instructions = 0u64;

                    let engine = spec.build_engine().expect("spec validated before sharding");
                    let bpu = Bpu::new(engine, config.ras_entries, config.decode_resteer);
                    let org = label.clone().unwrap_or_else(|| spec.org.id().to_string());

                    // Shard 0 may build the warm-up from scratch; every
                    // later shard restores its predecessor's hand-off.
                    let entry = if i == 0 {
                        warm.get(key)
                    } else {
                        Some(warm.wait(key))
                    };
                    let (mut sim, base) = match entry {
                        Some(e) => {
                            source.restore(&e.checkpoint);
                            let mut sim =
                                Simulator::new(config.clone(), source, bpu, org, spec.bits());
                            if let Some(a) = abort {
                                sim.set_abort(Arc::clone(a));
                            }
                            restore_sealed(&mut sim, &identity, &e.snapshot).unwrap_or_else(
                                |err| panic!("warm snapshot restore failed at key {key}: {err}"),
                            );
                            snapshot_bytes = snapshot_bytes.max(e.snapshot.len() as u64);
                            (sim, e.base)
                        }
                        None => {
                            let mut sim =
                                Simulator::new(config.clone(), source, bpu, org, spec.bits());
                            if let Some(a) = abort {
                                sim.set_abort(Arc::clone(a));
                            }
                            sim.run_until_committed(warmup);
                            warmed_instructions = sim.committed();
                            let base = sim.committed();
                            let bytes = Arc::new(save_sealed(&identity, &sim));
                            snapshot_bytes = snapshot_bytes.max(bytes.len() as u64);
                            warm.publish(
                                key,
                                WarmEntry {
                                    checkpoint: sim.trace().checkpoint(),
                                    snapshot: bytes,
                                    base,
                                    committed: sim.committed(),
                                    position: sim.trace().position(),
                                },
                            );
                            (sim, base)
                        }
                    };
                    let restore_seconds = restore_started.elapsed().as_secs_f64();

                    // Absolute target on the serial trajectory: the cut
                    // points are identical to a serial run's tick
                    // boundaries regardless of shard geometry.
                    let nominal = chunk.min(measure - i as u64 * chunk);
                    let target = base + (i as u64 * chunk + nominal).min(measure);
                    // The restore point overshoots the nominal cut by up
                    // to `commit_width - 1` committed instructions; anchor
                    // the interval grid at the global measurement start so
                    // boundaries land exactly where the serial stream puts
                    // them.
                    let grid_offset = sim.committed() - base;
                    sim.begin_measurement();
                    let mut intervals = Vec::new();
                    let trailing = sim.run_measured_aligned(
                        target,
                        Some(interval.unwrap_or(nominal).min(nominal)),
                        grid_offset,
                        &mut |iv: &IntervalStats| intervals.push(*iv),
                    );
                    // An interior shard cut is not a serial interval
                    // boundary: keep the end-state record out of the
                    // merged stream but carry it so accumulation across
                    // the cut stays exact. The final shard's trailing
                    // partial is a real serial record and stays in.
                    let cut = if trailing && i + 1 < shards {
                        intervals.pop()
                    } else {
                        None
                    };

                    if i + 1 < shards {
                        let next_key = warmup + (i as u64 + 1) * chunk;
                        if warm.get(next_key).is_none() {
                            let bytes = Arc::new(save_sealed(&identity, &sim));
                            snapshot_bytes = snapshot_bytes.max(bytes.len() as u64);
                            warm.publish(
                                next_key,
                                WarmEntry {
                                    checkpoint: sim.trace().checkpoint(),
                                    snapshot: bytes,
                                    base,
                                    committed: sim.committed(),
                                    position: sim.trace().position(),
                                },
                            );
                        }
                    }
                    guard.armed = false;
                    let result = sim.into_result();
                    (
                        result,
                        intervals,
                        cut,
                        ShardCost {
                            restore_seconds,
                            snapshot_bytes,
                            warmed_instructions,
                        },
                    )
                };
                (format!("shard{i}"), job)
            })
            .collect();

        let pool_label = self
            .label
            .clone()
            .unwrap_or_else(|| spec.org.id().to_string());
        let threads = self.threads.min(shards);
        let serial_setup_seconds = setup_started.elapsed().as_secs_f64();
        let outputs = run_named_jobs(&pool_label, threads, jobs);
        let mut restore_seconds = 0.0;
        let mut snapshot_bytes = 0u64;
        let mut warmed_instructions = 0u64;
        // Merge in shard (= trace) order. Cumulative interval fields are
        // shard-local; re-base them on the running end-state of all prior
        // shards. `end` tracks that end-state — a popped cut record when
        // the shard stopped between grid points, otherwise the shard's
        // last emitted boundary — and deltas are recomputed between
        // consecutive *merged* records so an interval spanning a shard
        // cut gets the serial value.
        let mut merged: Option<SimResult> = None;
        let mut intervals: Vec<IntervalStats> = Vec::new();
        let mut end: (u64, u64, crate::bpu::BpuStats) = (0, 0, Default::default());
        for (shard_result, shard_intervals, cut, cost) in outputs {
            restore_seconds += cost.restore_seconds;
            snapshot_bytes = snapshot_bytes.max(cost.snapshot_bytes);
            warmed_instructions += cost.warmed_instructions;
            let (base_instr, base_cycles, base_bpu) = end;
            let pushed_any = !shard_intervals.is_empty();
            for iv in &shard_intervals {
                let instructions = base_instr + iv.instructions;
                let cycles = base_cycles + iv.cycles;
                let mut bpu = base_bpu;
                bpu.merge(&iv.bpu);
                let (prev_instr, prev_cycles) = intervals
                    .last()
                    .map(|p| (p.instructions, p.cycles))
                    .unwrap_or_default();
                intervals.push(IntervalStats {
                    index: intervals.len() as u64,
                    instructions,
                    cycles,
                    delta_instructions: instructions - prev_instr,
                    delta_cycles: cycles - prev_cycles,
                    bpu,
                });
            }
            end = if let Some(c) = cut {
                let mut bpu = base_bpu;
                bpu.merge(&c.bpu);
                (base_instr + c.instructions, base_cycles + c.cycles, bpu)
            } else if pushed_any {
                let last = intervals.last().expect("pushed above");
                (last.instructions, last.cycles, last.bpu)
            } else {
                end
            };
            match &mut merged {
                None => merged = Some(shard_result),
                Some(r) => r.stats.merge(&shard_result.stats),
            }
        }
        let mut outcome = ParallelOutcome {
            result: merged.expect("at least one shard"),
            intervals,
            telemetry: ParallelTelemetry::default(),
        };
        outcome.telemetry.serial_setup_seconds = serial_setup_seconds;
        outcome.telemetry.peak_event_buffer_bytes = threads as u64 * EVENT_BLOCK_BYTES;
        outcome.telemetry.restore_seconds = restore_seconds;
        outcome.telemetry.snapshot_bytes = snapshot_bytes;
        outcome.telemetry.warmed_instructions = warmed_instructions;
        Ok(outcome)
    }
}

/// Deterministically merge per-shard results and interval streams in
/// shard (= trace) order.
#[allow(clippy::type_complexity)]
fn merge(shards: Vec<(SimResult, Vec<IntervalStats>, f64, u64)>) -> ParallelOutcome {
    let mut telemetry = ParallelTelemetry::default();
    let mut iter = shards.into_iter();
    let (mut result, first_intervals, pos_secs, advanced) =
        iter.next().expect("at least one shard");
    telemetry.position_seconds += pos_secs;
    telemetry.advanced_instructions += advanced;
    let mut intervals: Vec<IntervalStats> = first_intervals;

    for (shard_result, shard_intervals, pos_secs, advanced) in iter {
        telemetry.position_seconds += pos_secs;
        telemetry.advanced_instructions += advanced;
        // Re-accumulate the shard's cumulative fields on top of the
        // global totals so far.
        let (base_instr, base_cycles, base_bpu) = intervals
            .last()
            .map(|iv| (iv.instructions, iv.cycles, iv.bpu))
            .unwrap_or_default();
        for iv in &shard_intervals {
            intervals.push(IntervalStats {
                index: intervals.len() as u64,
                instructions: base_instr + iv.instructions,
                cycles: base_cycles + iv.cycles,
                delta_instructions: iv.delta_instructions,
                delta_cycles: iv.delta_cycles,
                bpu: {
                    let mut b = base_bpu;
                    b.merge(&iv.bpu);
                    b
                },
            });
        }
        result.stats.merge(&shard_result.stats);
    }
    ParallelOutcome {
        result,
        intervals,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btbx_core::storage::BudgetPoint;
    use btbx_core::OrgKind;
    use btbx_trace::record::TraceInstr;
    use btbx_trace::source::VecSource;

    fn straight_line(n: u64) -> VecSource {
        VecSource::new(
            "line",
            (0..n)
                .map(|i| TraceInstr::other(0x1000 + i * 4, 4))
                .collect(),
        )
    }

    #[test]
    fn one_shard_equals_serial_session() {
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        let sharded = ParallelSession::new(|| straight_line(60_000), spec)
            .config(SimConfig::without_fdip())
            .warmup(5_000)
            .measure(30_000)
            .run()
            .unwrap();
        let serial = SimSession::new(straight_line(60_000))
            .btb_spec(spec)
            .fdip(false)
            .warmup(5_000)
            .measure(30_000)
            .run()
            .unwrap();
        assert_eq!(sharded.result.stats.instructions, serial.stats.instructions);
        assert_eq!(sharded.result.stats.cycles, serial.stats.cycles);
        assert_eq!(sharded.result.stats.bpu, serial.stats.bpu);
        assert_eq!(sharded.result.org, serial.org);
        assert_eq!(sharded.intervals.len(), 1);
    }

    #[test]
    fn invalid_spec_is_reported() {
        let spec = BtbSpec::of(OrgKind::BtbX).budget_bits(3);
        let err = ParallelSession::new(|| straight_line(100), spec)
            .run()
            .unwrap_err();
        assert!(matches!(err, SessionError::Spec(_)), "{err}");
    }

    #[test]
    fn unbounded_measure_cannot_shard() {
        let spec = BtbSpec::of(OrgKind::Conv);
        let err = ParallelSession::new(|| straight_line(100), spec)
            .shards(4)
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::UnboundedMeasure);
    }

    #[test]
    fn unbounded_measure_single_shard_runs_to_trace_end() {
        let spec = BtbSpec::of(OrgKind::Conv);
        let out = ParallelSession::new(|| straight_line(5_000), spec)
            .config(SimConfig::without_fdip())
            .run()
            .unwrap();
        assert!(out.result.stats.instructions > 0);
        assert!(out.result.stats.instructions <= 5_000);
    }

    #[test]
    fn shard_instruction_coverage_is_exact() {
        // Whatever the boundary effects, the measured instruction count
        // must cover the requested window (each shard measures its chunk,
        // possibly overshooting by < commit width).
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        let out = ParallelSession::new(|| straight_line(200_000), spec)
            .config(SimConfig::without_fdip())
            .warmup(10_000)
            .measure(80_000)
            .shards(4)
            .carry_in(2_000)
            .run()
            .unwrap();
        assert!(out.result.stats.instructions >= 80_000);
        assert!(out.result.stats.instructions < 80_000 + 4 * 6);
        assert_eq!(out.intervals.len(), 4);
        let sum: u64 = out.intervals.iter().map(|iv| iv.delta_instructions).sum();
        assert_eq!(sum, out.result.stats.instructions);
        let last = out.intervals.last().unwrap();
        assert_eq!(last.instructions, out.result.stats.instructions);
        assert_eq!(last.cycles, out.result.stats.cycles);
        for (i, iv) in out.intervals.iter().enumerate() {
            assert_eq!(iv.index, i as u64);
        }
    }

    #[test]
    fn tiny_measure_with_many_shards_partitions_cleanly() {
        // Regression: chunk rounding used to leave tail shards with
        // `measure - i * chunk` underflowing (or zero instructions to
        // measure); the empty tail must be dropped instead.
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        for (measure, shards) in [(10u64, 7usize), (10, 6), (10, 16), (1, 4), (3, 2)] {
            let out = ParallelSession::new(|| straight_line(50_000), spec)
                .config(SimConfig::without_fdip())
                .warmup(64)
                .measure(measure)
                .shards(shards)
                .run()
                .unwrap_or_else(|e| panic!("measure {measure} over {shards} shards: {e}"));
            assert!(
                out.result.stats.instructions >= measure,
                "measure {measure} over {shards} shards under-covered"
            );
            let sum: u64 = out.intervals.iter().map(|iv| iv.delta_instructions).sum();
            assert_eq!(sum, out.result.stats.instructions, "{measure}/{shards}");
        }
    }

    #[test]
    fn reruns_are_byte_identical() {
        let spec = BtbSpec::of(OrgKind::BtbX).at(BudgetPoint::Kb3_6);
        let run = || {
            ParallelSession::new(|| straight_line(150_000), spec)
                .config(SimConfig::without_fdip())
                .warmup(8_000)
                .measure(60_000)
                .shards(3)
                .carry_in(1_000)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.result.stats.instructions, b.result.stats.instructions);
        assert_eq!(a.result.stats.cycles, b.result.stats.cycles);
        assert_eq!(a.result.stats.bpu, b.result.stats.bpu);
        assert_eq!(a.result.stats.btb_counts, b.result.stats.btb_counts);
        assert_eq!(a.intervals.len(), b.intervals.len());
        for (x, y) in a.intervals.iter().zip(&b.intervals) {
            assert_eq!(x.instructions, y.instructions);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.bpu, y.bpu);
        }
    }

    #[test]
    fn shared_ladder_reruns_are_byte_identical_and_skip_positioning() {
        let spec = BtbSpec::of(OrgKind::BtbX).at(BudgetPoint::Kb3_6);
        let ladder = CheckpointLadder::new();
        let run = |ladder: Option<&CheckpointLadder<u64>>| {
            let mut s = ParallelSession::new(|| straight_line(150_000), spec)
                .config(SimConfig::without_fdip())
                .warmup(8_000)
                .measure(60_000)
                .shards(4)
                .carry_in(1_000)
                .threads(1);
            if let Some(l) = ladder {
                s = s.ladder(l);
            }
            s.run().unwrap()
        };
        let cold = run(None);
        let first = run(Some(&ladder));
        assert!(
            !ladder.is_empty(),
            "shard boundaries must be published to the shared ladder"
        );
        let warm = run(Some(&ladder));
        assert_eq!(
            warm.telemetry.advanced_instructions, 0,
            "every shard start must be served from the ladder"
        );
        for out in [&first, &warm] {
            assert_eq!(
                out.result.stats.instructions,
                cold.result.stats.instructions
            );
            assert_eq!(out.result.stats.cycles, cold.result.stats.cycles);
            assert_eq!(out.result.stats.bpu, cold.result.stats.bpu);
            assert_eq!(out.result.stats.btb_counts, cold.result.stats.btb_counts);
        }
    }

    #[test]
    fn telemetry_reports_streaming_costs() {
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        let out = ParallelSession::new(|| straight_line(100_000), spec)
            .config(SimConfig::without_fdip())
            .warmup(10_000)
            .measure(40_000)
            .shards(4)
            .carry_in(1_000)
            .threads(2)
            .run()
            .unwrap();
        // Cold run with a fresh per-run ladder and one worker claiming in
        // order: shard 0 advances to its own start; later shards restore
        // published boundaries, so the total advanced count stays at or
        // below the sum of all window starts.
        assert!(out.telemetry.advanced_instructions >= 9_000);
        let lo_sum: u64 = (0..4u64).map(|i| 10_000 + i * 10_000 - 1_000).sum();
        assert!(out.telemetry.advanced_instructions <= lo_sum);
        assert_eq!(
            out.telemetry.peak_event_buffer_bytes,
            2 * EVENT_BLOCK_BYTES,
            "two concurrent shards, one packed block each"
        );
        assert!(out.telemetry.serial_setup_seconds < 1.0);
    }

    #[test]
    #[should_panic(expected = "refusing to reuse")]
    fn ladder_rejects_a_different_workload() {
        let ladder: CheckpointLadder<u64> = CheckpointLadder::new();
        ladder.bind("workload-a");
        ladder.bind("workload-b");
    }

    /// A pseudo-random branchy trace (calls, returns, conditionals,
    /// indirect branches, loads and stores) whose microarchitectural
    /// state never converges — the adversarial case for carry-in
    /// sharding.
    fn branchy(n: u64) -> VecSource {
        use btbx_core::types::{BranchClass, BranchEvent};
        use btbx_trace::record::MemAccess;
        let mut v = Vec::with_capacity(n as usize);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pc = 0x1_0000 + (state % 0x8000) * 4;
            let instr = match state % 7 {
                0 => {
                    let class = BranchClass::ALL[(state >> 16) as usize % BranchClass::ALL.len()];
                    let target = 0x1_0000 + ((state >> 24) % 0x8000) * 4;
                    let ev = if class.is_always_taken() || state & 0x100 != 0 {
                        BranchEvent::taken(pc, target, class)
                    } else {
                        BranchEvent::not_taken(pc, target)
                    };
                    TraceInstr::branch(pc, 4, ev)
                }
                1 => TraceInstr::mem(pc, 4, MemAccess::Load(0x80_0000 + (state >> 20) % 0x10000)),
                2 => TraceInstr::mem(pc, 4, MemAccess::Store(0x90_0000 + (state >> 20) % 0x10000)),
                _ => TraceInstr::other(pc, 4),
            };
            v.push(instr);
        }
        VecSource::new("branchy", v)
    }

    #[test]
    fn checkpoint_mode_matches_serial_bit_exactly() {
        // The exactness claim of checkpoint mode: for a workload where
        // carry-in sharding measurably diverges, every shard count must
        // still equal the serial run — all counters, not just MPKI.
        let spec = BtbSpec::of(OrgKind::BtbX).at(BudgetPoint::Kb3_6);
        let serial = SimSession::new(branchy(90_000))
            .btb_spec(spec)
            .warmup(8_000)
            .measure(50_000)
            .run()
            .unwrap();
        for shards in [2usize, 3, 5] {
            let out = ParallelSession::new(|| branchy(90_000), spec)
                .warmup(8_000)
                .measure(50_000)
                .shards(shards)
                .checkpoints(true)
                .run()
                .unwrap();
            assert_eq!(out.result.stats, serial.stats, "shards = {shards}");
            assert_eq!(out.result.org, serial.org);
            let sum: u64 = out.intervals.iter().map(|iv| iv.delta_instructions).sum();
            assert_eq!(sum, out.result.stats.instructions);
        }
    }

    #[test]
    fn checkpoint_mode_ignores_carry_in() {
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        let run = |carry: u64| {
            ParallelSession::new(|| branchy(80_000), spec)
                .config(SimConfig::without_fdip())
                .warmup(6_000)
                .measure(40_000)
                .shards(4)
                .carry_in(carry)
                .checkpoints(true)
                .run()
                .unwrap()
        };
        let a = run(0);
        let b = run(6_000);
        assert_eq!(
            a.result.stats, b.result.stats,
            "checkpoint mode must not depend on the carry-in setting"
        );
    }

    #[test]
    fn warm_ladder_rerun_is_exact_and_skips_the_warmup() {
        let spec = BtbSpec::of(OrgKind::Pdede).at(BudgetPoint::Kb3_6);
        let warm = WarmLadder::new();
        let run = || {
            ParallelSession::new(|| branchy(90_000), spec)
                .config(SimConfig::without_fdip())
                .warmup(8_000)
                .measure(48_000)
                .shards(3)
                .warm_ladder(&warm)
                .run()
                .unwrap()
        };
        let cold = run();
        assert!(
            cold.telemetry.warmed_instructions >= 8_000,
            "the cold run must simulate the warm-up once"
        );
        assert!(cold.telemetry.snapshot_bytes > 0);
        assert_eq!(warm.len(), 3, "warm-up rung plus two hand-off rungs");
        let rerun = run();
        assert_eq!(
            rerun.telemetry.warmed_instructions, 0,
            "a warm re-run must restore every boundary in O(state)"
        );
        assert_eq!(rerun.result.stats, cold.result.stats);
        for (x, y) in rerun.intervals.iter().zip(&cold.intervals) {
            assert_eq!(x.instructions, y.instructions);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.bpu, y.bpu);
        }
    }

    #[test]
    fn warm_ladder_reuses_rungs_across_shard_geometries() {
        // Keys are nominal (`warmup + i·chunk`), so a 2-shard run and a
        // 4-shard run of the same identity share the rungs where their
        // boundaries coincide — and both match the serial trajectory.
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        let warm = WarmLadder::new();
        let run = |shards: usize| {
            ParallelSession::new(|| branchy(80_000), spec)
                .config(SimConfig::without_fdip())
                .warmup(4_000)
                .measure(40_000)
                .shards(shards)
                .warm_ladder(&warm)
                .run()
                .unwrap()
        };
        let two = run(2);
        let four = run(4);
        assert_eq!(two.result.stats, four.result.stats);
        assert_eq!(
            four.telemetry.warmed_instructions, 0,
            "the 4-shard run must reuse the 2-shard run's warm rung"
        );
    }

    #[test]
    #[should_panic(expected = "refusing to reuse")]
    fn warm_ladder_rejects_a_different_identity() {
        let ladder: WarmLadder<u64> = WarmLadder::new();
        ladder.bind("line|conv|14848b|warm100|SimConfig { .. }");
        ladder.bind("line|btbx|14848b|warm100|SimConfig { .. }");
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poisoned_warm_ladder_fails_waiters_fast() {
        let ladder: WarmLadder<u64> = WarmLadder::new();
        ladder.poison();
        ladder.wait(0);
    }
}
