//! Interval-sharded simulation: split one run's measurement window into
//! `K` trace shards, replay them on the [`crate::runner`] thread pool, and
//! deterministically merge the results.
//!
//! # How a shard replays
//!
//! A serial run warms `W` instructions and measures `M`. A sharded run
//! splits `[W, W + M)` into `K` contiguous chunks at exact
//! trace-instruction boundaries. Shard `i` rebuilds state for its chunk by
//! simulating a bounded **warm-up carry-in** of `C` instructions
//! immediately before its chunk:
//!
//! ```text
//! shard i:  carry-in C (warm-up)  →  measure M/K     over trace
//!           [W + i·M/K − C, W + (i+1)·M/K)
//! ```
//!
//! The windows are materialized by **one shared generation pass** over
//! the trace (plus a short tail so pipelines drain exactly as they would
//! mid-stream), so trace generation is paid once — not once per shard —
//! and the simulated work drops from `W + M` to `K·C + M`. That work
//! reduction wins wall-clock even on one core when `K·C < W`, and the
//! shards then parallelize perfectly across cores. The buffered windows
//! cost `(K·C + M) × sizeof(TraceInstr)` bytes of memory.
//!
//! # Determinism and serial equivalence
//!
//! The merge is a pure, order-independent reduction over per-shard
//! counters, so a sharded run is byte-identical across repetitions and
//! thread schedules. Equivalence with a *serial* [`SimSession`] holds:
//!
//! * **always** for `shards = 1` with the default carry-in — the shard
//!   replays exactly the serial session;
//! * **exactly** for `shards > 1` when the carry-in fully converges
//!   microarchitectural state before each chunk (the workload's working
//!   set fits the modelled structures and `C` covers its steady state, as
//!   in the synthetic loop suites — pinned by
//!   `tests/parallel_determinism.rs`);
//! * **approximately** otherwise: each shard measures its exact chunk of
//!   the trace, but state at a chunk boundary reflects `C` instructions of
//!   history instead of the full prefix, perturbing boundary-local counts.
//!
//! See EXPERIMENTS.md ("Interval sharding") for the user-facing contract.

use crate::runner::run_named_jobs;
use crate::session::{IntervalStats, SessionError, SimSession};
use crate::stats::SimResult;
use crate::SimConfig;
use btbx_core::spec::BtbSpec;
use btbx_trace::record::TraceInstr;
use btbx_trace::source::VecSource;
use btbx_trace::TraceSource;

/// Instructions buffered past a shard's measurement window so the
/// front-end drains exactly as it would mid-stream. Fetch can run ahead
/// of commit by at most the FTQ plus the ROB plus one fetch group —
/// well under this.
const TAIL_SLACK: u64 = 4096;

/// Outcome of a sharded run: the merged result plus the merged
/// per-interval statistics stream.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Merged simulation result (counters summed over shards, derived
    /// metrics recomputed).
    pub result: SimResult,
    /// Global interval stream: shard-local intervals re-indexed and
    /// re-accumulated in trace order, matching what a serial
    /// [`SimSession::every`] observer would see under the equivalence
    /// conditions above.
    pub intervals: Vec<IntervalStats>,
}

/// Builder for an interval-sharded simulation of one workload.
///
/// `factory` must produce a fresh, identical trace stream per call (every
/// [`btbx_trace::suite::WorkloadSpec`] and any `Clone` source qualifies);
/// each shard consumes its own stream from the beginning.
pub struct ParallelSession<F> {
    factory: F,
    spec: BtbSpec,
    config: SimConfig,
    label: Option<String>,
    warmup: u64,
    measure: u64,
    shards: usize,
    carry_in: Option<u64>,
    interval: Option<u64>,
    threads: usize,
}

impl<S, F> ParallelSession<F>
where
    S: TraceSource + Send,
    F: Fn() -> S + Sync,
{
    /// Start a sharded session: `factory` yields one trace stream per
    /// shard, `spec` describes the BTB under test.
    ///
    /// Defaults: Table II config, no warm-up, 1 shard, carry-in equal to
    /// the warm-up, one interval per shard, one thread per shard (capped
    /// at the host's parallelism).
    pub fn new(factory: F, spec: BtbSpec) -> Self {
        ParallelSession {
            factory,
            spec,
            config: SimConfig::default(),
            label: None,
            warmup: 0,
            measure: u64::MAX,
            shards: 1,
            carry_in: None,
            interval: None,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Replace the whole simulator configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the organization label recorded in the result.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Serial-equivalent warm-up: the measurement window starts after this
    /// many committed instructions.
    pub fn warmup(mut self, instructions: u64) -> Self {
        self.warmup = instructions;
        self
    }

    /// Total measured instructions. Must be finite to shard.
    pub fn measure(mut self, instructions: u64) -> Self {
        self.measure = instructions;
        self
    }

    /// Number of shards `K` (0 is treated as 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Simulated warm-up carry-in per shard (default: the full `warmup`,
    /// the most conservative setting). Smaller values trade boundary
    /// accuracy for speed; the skipped prefix is never simulated.
    pub fn carry_in(mut self, instructions: u64) -> Self {
        self.carry_in = Some(instructions);
        self
    }

    /// Emit merged [`IntervalStats`] every `interval` measured
    /// instructions (default: one interval per shard chunk). For aligned
    /// boundaries use an interval that divides the chunk size.
    pub fn every(mut self, interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        self.interval = Some(interval);
        self
    }

    /// Cap worker threads (default: host parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run every shard and merge.
    ///
    /// # Errors
    ///
    /// [`SessionError::Spec`] when the BTB spec does not validate and
    /// [`SessionError::UnboundedMeasure`] when more than one shard is
    /// requested without a finite [`measure`](Self::measure) window.
    pub fn run(self) -> Result<ParallelOutcome, SessionError> {
        self.spec.validate().map_err(SessionError::Spec)?;
        if self.measure == u64::MAX && self.shards > 1 {
            return Err(SessionError::UnboundedMeasure);
        }
        let shards = if self.measure == u64::MAX {
            1
        } else {
            // Never create empty shards.
            self.shards.min(self.measure.max(1) as usize).max(1)
        };
        let spec = self.spec;
        let interval = self.interval;

        if shards == 1 {
            // Streamed directly: no buffering, and `measure` may be
            // unbounded. This is exactly the serial session.
            let mut intervals = Vec::new();
            let mut session = SimSession::new((self.factory)())
                .btb_spec(spec)
                .config(self.config.clone())
                .warmup(self.warmup)
                .measure(self.measure);
            if let Some(l) = &self.label {
                session = session.label(l.clone());
            }
            let result = session
                .every(interval.unwrap_or(self.measure).min(self.measure), |iv| {
                    intervals.push(*iv)
                })
                .run()
                .expect("spec validated above");
            return Ok(ParallelOutcome { result, intervals });
        }

        let chunk = self.measure.div_ceil(shards as u64);
        // Rounding `chunk` up can leave the tail shards with nothing to
        // measure (e.g. measure 10 over 7 shards → chunk 2 covers the
        // window in 5); drop the empty tail so every shard measures at
        // least one instruction.
        let shards = self.measure.div_ceil(chunk) as usize;
        let carry = self.carry_in.unwrap_or(self.warmup);

        // One shared generation pass materializes every shard's
        // carry-in + chunk (+ drain tail) window: trace generation is
        // paid once, not once per shard.
        struct ShardPlan {
            lo: u64,
            start: u64,
            measure: u64,
            window: Vec<TraceInstr>,
        }
        let mut plans: Vec<ShardPlan> = (0..shards as u64)
            .map(|i| {
                let start = self.warmup + i * chunk;
                let measure = chunk.min(self.measure - i * chunk);
                let lo = start.saturating_sub(carry);
                ShardPlan {
                    lo,
                    start,
                    measure,
                    window: Vec::with_capacity((start - lo + measure) as usize + 64),
                }
            })
            .collect();
        let mut source = (self.factory)();
        let trace_name = source.source_name().to_string();
        let last_hi = {
            let last = plans.last().expect("at least one shard");
            (last.start + last.measure).saturating_add(TAIL_SLACK)
        };
        // `lo` and the window ends are both non-decreasing in shard
        // index, so the shards covering position `g` are a sliding
        // contiguous range [active, upto).
        let (mut active, mut upto) = (0usize, 0usize);
        for g in 0..last_hi {
            let Some(instr) = source.next_instr() else {
                break;
            };
            while upto < plans.len() && plans[upto].lo <= g {
                upto += 1;
            }
            while active < upto
                && g >= (plans[active].start + plans[active].measure).saturating_add(TAIL_SLACK)
            {
                active += 1;
            }
            for plan in &mut plans[active..upto] {
                plan.window.push(instr);
            }
        }

        let config = &self.config;
        let label = &self.label;
        let name = &trace_name;
        let jobs: Vec<(String, _)> = plans
            .into_iter()
            .enumerate()
            .map(|(i, plan)| {
                let job = move || {
                    let mut intervals = Vec::new();
                    let mut session = SimSession::new(VecSource::new(name.clone(), plan.window))
                        .btb_spec(spec)
                        .config(config.clone())
                        .warmup(plan.start - plan.lo)
                        .measure(plan.measure);
                    if let Some(l) = label {
                        session = session.label(l.clone());
                    }
                    let result = session
                        .every(interval.unwrap_or(plan.measure).min(plan.measure), |iv| {
                            intervals.push(*iv)
                        })
                        .run()
                        .expect("spec validated before sharding");
                    (result, intervals)
                };
                (format!("shard{i}"), job)
            })
            .collect();

        let pool_label = self
            .label
            .clone()
            .unwrap_or_else(|| spec.org.id().to_string());
        let shard_outputs = run_named_jobs(&pool_label, self.threads.min(shards), jobs);
        Ok(merge(shard_outputs))
    }
}

/// Deterministically merge per-shard results and interval streams in
/// shard (= trace) order.
fn merge(shards: Vec<(SimResult, Vec<IntervalStats>)>) -> ParallelOutcome {
    let mut iter = shards.into_iter();
    let (mut result, first_intervals) = iter.next().expect("at least one shard");
    let mut intervals: Vec<IntervalStats> = first_intervals;

    for (shard_result, shard_intervals) in iter {
        // Re-accumulate the shard's cumulative fields on top of the
        // global totals so far.
        let (base_instr, base_cycles, base_bpu) = intervals
            .last()
            .map(|iv| (iv.instructions, iv.cycles, iv.bpu))
            .unwrap_or_default();
        for iv in &shard_intervals {
            intervals.push(IntervalStats {
                index: intervals.len() as u64,
                instructions: base_instr + iv.instructions,
                cycles: base_cycles + iv.cycles,
                delta_instructions: iv.delta_instructions,
                delta_cycles: iv.delta_cycles,
                bpu: {
                    let mut b = base_bpu;
                    b.merge(&iv.bpu);
                    b
                },
            });
        }
        result.stats.merge(&shard_result.stats);
    }
    ParallelOutcome { result, intervals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btbx_core::storage::BudgetPoint;
    use btbx_core::OrgKind;
    use btbx_trace::record::TraceInstr;
    use btbx_trace::source::VecSource;

    fn straight_line(n: u64) -> VecSource {
        VecSource::new(
            "line",
            (0..n)
                .map(|i| TraceInstr::other(0x1000 + i * 4, 4))
                .collect(),
        )
    }

    #[test]
    fn one_shard_equals_serial_session() {
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        let sharded = ParallelSession::new(|| straight_line(60_000), spec)
            .config(SimConfig::without_fdip())
            .warmup(5_000)
            .measure(30_000)
            .run()
            .unwrap();
        let serial = SimSession::new(straight_line(60_000))
            .btb_spec(spec)
            .fdip(false)
            .warmup(5_000)
            .measure(30_000)
            .run()
            .unwrap();
        assert_eq!(sharded.result.stats.instructions, serial.stats.instructions);
        assert_eq!(sharded.result.stats.cycles, serial.stats.cycles);
        assert_eq!(sharded.result.stats.bpu, serial.stats.bpu);
        assert_eq!(sharded.result.org, serial.org);
        assert_eq!(sharded.intervals.len(), 1);
    }

    #[test]
    fn invalid_spec_is_reported() {
        let spec = BtbSpec::of(OrgKind::BtbX).budget_bits(3);
        let err = ParallelSession::new(|| straight_line(100), spec)
            .run()
            .unwrap_err();
        assert!(matches!(err, SessionError::Spec(_)), "{err}");
    }

    #[test]
    fn unbounded_measure_cannot_shard() {
        let spec = BtbSpec::of(OrgKind::Conv);
        let err = ParallelSession::new(|| straight_line(100), spec)
            .shards(4)
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::UnboundedMeasure);
    }

    #[test]
    fn unbounded_measure_single_shard_runs_to_trace_end() {
        let spec = BtbSpec::of(OrgKind::Conv);
        let out = ParallelSession::new(|| straight_line(5_000), spec)
            .config(SimConfig::without_fdip())
            .run()
            .unwrap();
        assert!(out.result.stats.instructions > 0);
        assert!(out.result.stats.instructions <= 5_000);
    }

    #[test]
    fn shard_instruction_coverage_is_exact() {
        // Whatever the boundary effects, the measured instruction count
        // must cover the requested window (each shard measures its chunk,
        // possibly overshooting by < commit width).
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        let out = ParallelSession::new(|| straight_line(200_000), spec)
            .config(SimConfig::without_fdip())
            .warmup(10_000)
            .measure(80_000)
            .shards(4)
            .carry_in(2_000)
            .run()
            .unwrap();
        assert!(out.result.stats.instructions >= 80_000);
        assert!(out.result.stats.instructions < 80_000 + 4 * 6);
        assert_eq!(out.intervals.len(), 4);
        let sum: u64 = out.intervals.iter().map(|iv| iv.delta_instructions).sum();
        assert_eq!(sum, out.result.stats.instructions);
        let last = out.intervals.last().unwrap();
        assert_eq!(last.instructions, out.result.stats.instructions);
        assert_eq!(last.cycles, out.result.stats.cycles);
        for (i, iv) in out.intervals.iter().enumerate() {
            assert_eq!(iv.index, i as u64);
        }
    }

    #[test]
    fn tiny_measure_with_many_shards_partitions_cleanly() {
        // Regression: chunk rounding used to leave tail shards with
        // `measure - i * chunk` underflowing (or zero instructions to
        // measure); the empty tail must be dropped instead.
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8);
        for (measure, shards) in [(10u64, 7usize), (10, 6), (10, 16), (1, 4), (3, 2)] {
            let out = ParallelSession::new(|| straight_line(50_000), spec)
                .config(SimConfig::without_fdip())
                .warmup(64)
                .measure(measure)
                .shards(shards)
                .run()
                .unwrap_or_else(|e| panic!("measure {measure} over {shards} shards: {e}"));
            assert!(
                out.result.stats.instructions >= measure,
                "measure {measure} over {shards} shards under-covered"
            );
            let sum: u64 = out.intervals.iter().map(|iv| iv.delta_instructions).sum();
            assert_eq!(sum, out.result.stats.instructions, "{measure}/{shards}");
        }
    }

    #[test]
    fn reruns_are_byte_identical() {
        let spec = BtbSpec::of(OrgKind::BtbX).at(BudgetPoint::Kb3_6);
        let run = || {
            ParallelSession::new(|| straight_line(150_000), spec)
                .config(SimConfig::without_fdip())
                .warmup(8_000)
                .measure(60_000)
                .shards(3)
                .carry_in(1_000)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.result.stats.instructions, b.result.stats.instructions);
        assert_eq!(a.result.stats.cycles, b.result.stats.cycles);
        assert_eq!(a.result.stats.bpu, b.result.stats.bpu);
        assert_eq!(a.result.stats.btb_counts, b.result.stats.btb_counts);
        assert_eq!(a.intervals.len(), b.intervals.len());
        for (x, y) in a.intervals.iter().zip(&b.intervals) {
            assert_eq!(x.instructions, y.instructions);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.bpu, y.bpu);
        }
    }
}
