//! The cycle-level simulator tying BPU, FTQ, fetch, FDIP, caches and a
//! simplified in-order-commit backend together.
//!
//! Per cycle, in order: commit (≤ 6, in order, ROB-bounded), fetch
//! (≤ 6 from the FTQ, gated by per-block L1-I readiness), FDIP scan, and
//! BPU prediction (fills the FTQ from the trace until it inserts a
//! mispredicted branch, then stalls until that branch's resolution stage —
//! the bubble a real front-end would spend on the wrong path).
//!
//! The methodology mirrors Section VI-A: structures warm for a configured
//! instruction count before statistics are collected; the BTB is updated
//! at commit by taken branches; BTB-missing unconditional-direct branches
//! and taken-predicted conditionals resteer at decode.

use crate::bpu::{Bpu, Resolution};
use crate::config::SimConfig;
use crate::fdip::Fdip;
use crate::ftq::Ftq;
use crate::hierarchy::{Hierarchy, Port};
use crate::session::IntervalStats;
use crate::stats::{SimResult, SimStats};
use btbx_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use btbx_core::types::BranchEvent;
use btbx_trace::packed::PackedBuf;
use btbx_trace::record::{MemAccess, Op, TraceInstr};
use btbx_trace::TraceSource;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Events per trace block pulled from the source in one refill. The
/// prediction stage consumes from this staging buffer instead of calling
/// `next_instr` per event, amortizing the per-event pull; the block is
/// the *only* event buffering a streaming simulation performs.
pub const EVENT_BLOCK_EVENTS: usize = 256;

/// Bytes of event buffering one live simulator holds
/// ([`EVENT_BLOCK_EVENTS`] packed 16-byte events) — O(1) in the window
/// length, reported by `btbx bench` as the peak per-shard buffer cost.
pub const EVENT_BLOCK_BYTES: u64 = EVENT_BLOCK_EVENTS as u64 * 16;

/// Panic message used when a run is cancelled through an abort flag
/// ([`Simulator::set_abort`]). Callers that catch simulation panics
/// (the result store, `btbx serve`) match on this marker to distinguish
/// a deliberate deadline abort from a genuine simulator failure.
pub const ABORT_MARKER: &str = "btbx: simulation aborted";

/// Ticks between abort-flag polls: rare enough that the atomic load is
/// invisible in the hot loop, frequent enough that an abort lands within
/// microseconds of the flag flipping.
const ABORT_POLL_MASK: u32 = (1 << 12) - 1;

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    complete_at: u64,
    branch: Option<BranchEvent>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BpuState {
    /// Predicting normally.
    Running,
    /// A mispredicted branch is in the FTQ but has not been fetched yet,
    /// so its resolution time is unknown.
    BlockedUnknown,
    /// Resolution time known; resume at the contained cycle.
    BlockedUntil(u64),
}

/// A configured simulation of one workload on one BTB organization.
///
/// Generic over the trace source and the BTB representation: with a
/// concrete `B` (e.g. [`btbx_core::BtbEngine`]) every per-event BTB probe
/// is statically dispatched; `Box<dyn Btb>` remains the compatibility
/// path for out-of-tree organizations.
pub struct Simulator<S, B: btbx_core::Btb = Box<dyn btbx_core::Btb>> {
    config: SimConfig,
    trace: S,
    bpu: Bpu<B>,
    ftq: Ftq,
    hierarchy: Hierarchy,
    fdip: Option<Fdip>,
    rob: VecDeque<RobEntry>,
    /// Packed staging block of upcoming trace events (see
    /// [`EVENT_BLOCK_EVENTS`]).
    block: PackedBuf,
    block_pos: usize,
    cycle: u64,
    committed: u64,
    bpu_state: BpuState,
    bpu_busy_until: u64,
    last_complete: u64,
    trace_done: bool,
    // Measurement bookkeeping.
    measuring: bool,
    measure_start_cycle: u64,
    measure_start_committed: u64,
    bubble_cycles: u64,
    fetch_starved_cycles: u64,
    rob_full_cycles: u64,
    org_id: String,
    budget_bits: u64,
    /// Cooperative cancellation: when set and flipped true, the driving
    /// loops panic with [`ABORT_MARKER`] at the next poll boundary.
    abort: Option<Arc<AtomicBool>>,
    abort_poll: u32,
    /// Skip provably inert cycles in O(1) jumps (see
    /// [`Self::fast_forward_span`]). Off by default: the plain tick loop
    /// is the reference trajectory; the batched executor turns this on
    /// and the differential suite pins the two bit-identical.
    fast_forward: bool,
    /// Number of leading FTQ entries known to have issued their L1-I
    /// access (`block_ready` is `Some`). Derived state, never serialized:
    /// a snapshot restore resets it to 0 and the next ifetch window
    /// rebuilds it. The invariant is an *under*-count — entries below the
    /// prefix are always issued; entries above it may be too — so a stale
    /// low value only costs a redundant scan, never skips an issue.
    issued_prefix: usize,
}

impl<S: TraceSource, B: btbx_core::Btb> Simulator<S, B> {
    /// Assemble a simulator. `bpu` carries the BTB under test; `org_id`
    /// and `budget_bits` are recorded in the result for reporting.
    pub fn new(
        config: SimConfig,
        trace: S,
        bpu: Bpu<B>,
        org_id: impl Into<String>,
        budget_bits: u64,
    ) -> Self {
        let hierarchy = Hierarchy::new(&config);
        let ftq = Ftq::new(config.ftq_entries);
        let fdip = config
            .fdip
            .then(|| Fdip::new(config.fetch_width as usize * 2));
        Simulator {
            config,
            trace,
            bpu,
            ftq,
            hierarchy,
            fdip,
            rob: VecDeque::with_capacity(512),
            block: PackedBuf::with_capacity(EVENT_BLOCK_EVENTS),
            block_pos: 0,
            cycle: 0,
            committed: 0,
            bpu_state: BpuState::Running,
            bpu_busy_until: 0,
            last_complete: 0,
            trace_done: false,
            measuring: false,
            measure_start_cycle: 0,
            measure_start_committed: 0,
            bubble_cycles: 0,
            fetch_starved_cycles: 0,
            rob_full_cycles: 0,
            org_id: org_id.into(),
            budget_bits,
            abort: None,
            abort_poll: 0,
            fast_forward: false,
            issued_prefix: 0,
        }
    }

    /// Enable inert-cycle fast-forwarding: spans of cycles in which every
    /// stage is provably a no-op (up to stall counters) are skipped in one
    /// O(1) jump instead of being ticked one by one. The resulting
    /// trajectory — every counter, every structure — is bit-identical to
    /// the plain tick loop; `crates/bench/tests/batch_differential.rs`
    /// pins this for every organization. The serial session leaves this off so it stays
    /// the plain reference model; the batched executor turns it on.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Attach a cancellation flag: once `flag` turns true, the driving
    /// loops panic with [`ABORT_MARKER`] within [`ABORT_POLL_MASK`] + 1
    /// ticks. Used by `btbx serve` to enforce per-request deadlines.
    pub fn set_abort(&mut self, flag: Arc<AtomicBool>) {
        self.abort = Some(flag);
    }

    /// Check the abort flag on a sparse tick schedule.
    #[inline]
    fn poll_abort(&mut self) {
        let Some(flag) = &self.abort else { return };
        self.abort_poll = self.abort_poll.wrapping_add(1);
        if self.abort_poll & ABORT_POLL_MASK == 0 && flag.load(Ordering::Relaxed) {
            panic!("{ABORT_MARKER}");
        }
    }

    /// Warm structures over `warmup` committed instructions, then measure
    /// the next `measure` instructions and return the results
    /// (Section VI-A methodology).
    pub fn run(self, warmup: u64, measure: u64) -> SimResult {
        self.run_observed(warmup, measure, None, &mut |_| {})
    }

    /// [`run`](Self::run), streaming an [`IntervalStats`] snapshot to
    /// `observer` after every `interval` committed instructions of the
    /// measurement window (plus a trailing partial interval when the run
    /// ends between boundaries). Used by [`crate::session::SimSession`];
    /// pass `interval: None` to disable streaming.
    pub fn run_observed(
        mut self,
        warmup: u64,
        measure: u64,
        interval: Option<u64>,
        observer: &mut dyn FnMut(&IntervalStats),
    ) -> SimResult {
        // Warm-up phase.
        self.run_until_committed(warmup);
        self.begin_measurement();
        let target = self.committed.saturating_add(measure);
        self.run_measured(target, interval, observer);
        self.finish()
    }

    /// Tick until the *absolute* committed-instruction count reaches
    /// `target` (or the trace drains). The warm-up building block of both
    /// the serial path and checkpoint-mode shards.
    pub fn run_until_committed(&mut self, target: u64) {
        while self.committed < target && !self.finished() {
            if !(self.fast_forward && self.fast_forward_span()) {
                self.tick();
            }
            self.poll_abort();
        }
    }

    /// Tick the measurement window until the *absolute* committed count
    /// reaches `target`, streaming interval snapshots (boundaries are
    /// relative to the [`Self::begin_measurement`] point). Callers must
    /// have started measurement first.
    pub fn run_measured(
        &mut self,
        target: u64,
        interval: Option<u64>,
        observer: &mut dyn FnMut(&IntervalStats),
    ) {
        self.run_measured_aligned(target, interval, 0, observer);
    }

    /// [`run_measured`](Self::run_measured) with the interval grid
    /// anchored `grid_offset` instructions *before* this simulator's
    /// measurement start. Checkpoint-mode shards restore mid-window — the
    /// predecessor's cut overshoots the nominal boundary by up to
    /// `commit_width - 1` instructions — and pass that overshoot here so
    /// boundaries still fire at the exact committed counts the serial
    /// interval stream crosses (the records themselves stay shard-local;
    /// the merge re-accumulates them).
    ///
    /// Returns `true` when the final record was an off-grid trailing
    /// partial (the run ended between grid points). A serial run keeps
    /// that record; a non-final shard's caller pops it and carries it as
    /// pure accumulation state, because the serial stream has no boundary
    /// at an interior shard cut.
    pub fn run_measured_aligned(
        &mut self,
        target: u64,
        interval: Option<u64>,
        grid_offset: u64,
        observer: &mut dyn FnMut(&IntervalStats),
    ) -> bool {
        let step = interval.unwrap_or(u64::MAX);
        // First grid point strictly past the restore position: boundaries
        // at or before `grid_offset` were already emitted upstream.
        let mut next_boundary = (grid_offset / step)
            .saturating_add(1)
            .saturating_mul(step)
            .saturating_sub(grid_offset);
        let mut index = 0u64;
        let (mut emitted_instr, mut emitted_cycles) = (0u64, 0u64);
        let mut emit = |sim: &Self, index: u64, emitted_instr: u64, emitted_cycles: u64| {
            let instructions = sim.committed - sim.measure_start_committed;
            let cycles = sim.cycle - sim.measure_start_cycle;
            let iv = IntervalStats {
                index,
                instructions,
                cycles,
                delta_instructions: instructions - emitted_instr,
                delta_cycles: cycles - emitted_cycles,
                bpu: sim.bpu.stats(),
            };
            observer(&iv);
            (instructions, cycles)
        };
        while self.committed < target && !self.finished() {
            if self.fast_forward && self.fast_forward_span() {
                // A jump commits nothing, so no boundary can fire.
                self.poll_abort();
                continue;
            }
            self.tick();
            self.poll_abort();
            if self.committed - self.measure_start_committed >= next_boundary {
                (emitted_instr, emitted_cycles) = emit(self, index, emitted_instr, emitted_cycles);
                index += 1;
                next_boundary = next_boundary.saturating_add(step);
            }
        }
        // Trailing partial interval.
        if interval.is_some() && self.committed - self.measure_start_committed > emitted_instr {
            emit(self, index, emitted_instr, emitted_cycles);
            return true;
        }
        false
    }

    /// `true` when the trace has drained and the pipeline is empty.
    pub fn finished(&self) -> bool {
        self.trace_done && self.ftq.is_empty() && self.rob.is_empty()
    }

    /// Committed instructions since construction (absolute, not relative
    /// to the measurement window).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Borrow the trace source (checkpoint-mode shards record the source
    /// position alongside a microarchitectural snapshot).
    pub fn trace(&self) -> &S {
        &self.trace
    }

    /// Mutable trace source access.
    pub fn trace_mut(&mut self) -> &mut S {
        &mut self.trace
    }

    /// Pop the next trace event from the staging block, refilling it from
    /// the source in [`EVENT_BLOCK_EVENTS`]-sized batches.
    #[inline]
    fn next_event(&mut self) -> Option<btbx_trace::record::TraceInstr> {
        if self.block_pos == self.block.len() {
            self.block.clear();
            self.block_pos = 0;
            if self.trace.fill_block(&mut self.block, EVENT_BLOCK_EVENTS) == 0 {
                return None;
            }
        }
        let instr = self.block.get(self.block_pos);
        self.block_pos += 1;
        Some(instr)
    }

    /// Mark the warm-up boundary: statistics reset, structures keep their
    /// warmed contents (Section VI-A). Idempotent in effect — only the
    /// counters collected afterwards are reported.
    pub fn begin_measurement(&mut self) {
        self.measuring = true;
        self.measure_start_cycle = self.cycle;
        self.measure_start_committed = self.committed;
        self.bubble_cycles = 0;
        self.fetch_starved_cycles = 0;
        self.rob_full_cycles = 0;
        self.bpu.reset_stats();
        self.hierarchy.reset_stats();
        if let Some(f) = &mut self.fdip {
            f.reset_stats();
        }
    }

    /// Consume the simulator and report the measurement window.
    pub fn into_result(self) -> SimResult {
        self.finish()
    }

    fn finish(mut self) -> SimResult {
        let (l1i, l1d, l2, llc) = self.hierarchy.stats();
        let bubble = self.bubble_cycles;
        let stats = SimStats {
            instructions: self.committed - self.measure_start_committed,
            cycles: self.cycle - self.measure_start_cycle,
            bpu: self.bpu.stats(),
            l1i,
            l1d,
            l2,
            llc,
            fdip: self.fdip.as_ref().map(|f| f.stats()).unwrap_or_default(),
            btb_counts: self.bpu.btb().counts(),
            bubble_cycles: bubble,
            fetch_starved_cycles: self.fetch_starved_cycles,
            rob_full_cycles: self.rob_full_cycles,
            wrong_path_btb_reads: bubble * (self.config.fetch_width as u64 / 2),
        };
        SimResult {
            workload: self.trace.source_name().to_string(),
            org: std::mem::take(&mut self.org_id),
            fdip_enabled: self.config.fdip,
            btb_budget_bits: self.budget_bits,
            stats,
        }
    }

    /// Try to jump over a span of inert cycles in O(1); returns `true`
    /// and advances `cycle` (plus the per-cycle stall counters) when the
    /// current cycle provably executes no state change, `false` when a
    /// real [`tick`](Self::tick) is required.
    ///
    /// A cycle is *inert* when every stage is a no-op up to counters:
    ///
    /// * **commit** — ROB empty, or its head completes later;
    /// * **fetch** — FTQ empty (the cycle only counts fetch starvation),
    ///   or the whole ifetch window has issued its L1-I accesses and the
    ///   head is blocked (ROB full, or its block not yet within the hit
    ///   horizon);
    /// * **FDIP** — absent, or its cursor has caught up with the FTQ;
    /// * **predict** — blocked on an unresolved mispredict, blocked until
    ///   a future resolution cycle, or running but gated (trace drained,
    ///   PDede second cycle, or FTQ full).
    ///
    /// Every condition is then stable until a known wake cycle: the ROB
    /// head's completion, the head block's fetchability, the resteer
    /// resolution, or the predictor becoming free. Jumping to the
    /// earliest wake and bumping the stall counters by the span length
    /// reproduces the plain loop's trajectory exactly: inert cycles
    /// change nothing else by construction.
    #[inline]
    fn fast_forward_span(&mut self) -> bool {
        let c = self.cycle;
        // Commit stage: quiet iff the ROB head (if any) completes later.
        let commit_wake = match self.rob.front() {
            Some(e) if e.complete_at <= c => return false,
            Some(e) => Some(e.complete_at),
            None => None,
        };
        // Fetch stage.
        let ftq_len = self.ftq.len();
        let ftq_empty = ftq_len == 0;
        let rob_full = self.rob.len() >= self.config.rob_entries;
        let mut fetch_wake = None;
        if !ftq_empty {
            // The ifetch window must have nothing left to issue. The
            // issued prefix is an under-count, so `prefix >= window`
            // proves it; a stale low prefix merely falls back to a real
            // tick, which rebuilds it.
            let window = (self.config.fetch_width as usize * 2).min(ftq_len);
            if self.issued_prefix < window {
                return false;
            }
            let head_ready = self
                .ftq
                .head()
                .expect("ftq non-empty")
                .block_ready
                .expect("whole window issued");
            let l1i_latency = self.config.l1i.latency as u64;
            if rob_full {
                // Blocked by the ROB; the commit wake bounds the span
                // (a full ROB is non-empty).
            } else if head_ready > c + l1i_latency {
                fetch_wake = Some(head_ready - l1i_latency);
            } else {
                return false; // head is fetchable this cycle
            }
        }
        // FDIP: quiet iff the scan cursor has caught up.
        if let Some(f) = &self.fdip {
            if f.cursor() < ftq_len {
                return false;
            }
        }
        // Predict stage.
        let predict_wake = match self.bpu_state {
            BpuState::BlockedUnknown => None,
            BpuState::BlockedUntil(t) if c >= t => return false,
            BpuState::BlockedUntil(t) => Some(t),
            BpuState::Running => {
                if self.trace_done {
                    None
                } else if c < self.bpu_busy_until {
                    Some(self.bpu_busy_until)
                } else if !self.ftq.has_room() {
                    // Room appears only when fetch pops, bounded above.
                    None
                } else {
                    return false; // would predict this cycle
                }
            }
        };
        let next = [commit_wake, fetch_wake, predict_wake]
            .into_iter()
            .flatten()
            .min();
        let Some(next) = next else {
            // No wake cycle: only possible when the pipeline has fully
            // drained (`finished()`); let the driving loop observe that.
            return false;
        };
        debug_assert!(next > c, "wake cycles lie strictly ahead of a quiet cycle");
        let delta = next - c;
        if self.bpu_state != BpuState::Running {
            self.bubble_cycles += delta;
        }
        if ftq_empty {
            self.fetch_starved_cycles += delta;
        } else if rob_full {
            self.rob_full_cycles += delta;
        }
        self.cycle = next;
        true
    }

    /// Advance one cycle.
    fn tick(&mut self) {
        self.commit_stage();
        self.fetch_stage();
        if self.fdip.is_some() {
            let mut fdip = self.fdip.take().unwrap();
            fdip.tick(&self.ftq, &mut self.hierarchy, self.cycle);
            self.fdip = Some(fdip);
        }
        self.predict_stage();
        if self.bpu_state != BpuState::Running {
            self.bubble_cycles += 1;
        }
        self.cycle += 1;
    }

    fn commit_stage(&mut self) {
        for _ in 0..self.config.commit_width {
            match self.rob.front() {
                Some(e) if e.complete_at <= self.cycle => {
                    let e = self.rob.pop_front().unwrap();
                    if let Some(ev) = e.branch {
                        self.bpu.commit(&ev);
                    }
                    self.committed += 1;
                }
                _ => break,
            }
        }
    }

    /// Issue L1-I accesses for the next few FTQ entries (the ifetch
    /// buffer): misses overlap in the MSHRs instead of serializing, as in
    /// ChampSim's `FETCH_WIDTH × 2`-entry IFETCH_BUFFER.
    fn issue_ifetch_window(&mut self) {
        let window = self.config.fetch_width as usize * 2;
        let cycle = self.cycle;
        let limit = window.min(self.ftq.len());
        // Entries below the issued prefix are already `Some`; re-scanning
        // them is a no-op, so starting there is semantically identical
        // and saves the O(window) rescan every cycle. The reference path
        // keeps the full scan so the oracle stays the plain model.
        let start = if self.fast_forward {
            self.issued_prefix.min(limit)
        } else {
            0
        };
        for idx in start..limit {
            // Safe: idx < len.
            let (pc, pending) = {
                let e = self.ftq.get(idx).unwrap();
                (e.instr.pc, e.block_ready.is_none())
            };
            if pending {
                let r = self.hierarchy.access(Port::Instr, pc, cycle);
                if let Some(e) = self.ftq.get_mut(idx) {
                    e.block_ready = Some(r);
                }
            }
        }
        self.issued_prefix = self.issued_prefix.max(limit);
    }

    fn fetch_stage(&mut self) {
        if self.ftq.is_empty() {
            self.fetch_starved_cycles += 1;
            return;
        }
        self.issue_ifetch_window();
        let l1i_latency = self.config.l1i.latency as u64;
        let mut fetched = 0usize;
        while fetched < self.config.fetch_width as usize {
            if self.rob.len() >= self.config.rob_entries {
                self.rob_full_cycles += 1;
                break;
            }
            let cycle = self.cycle;
            let Some(head) = self.ftq.head_mut() else {
                break;
            };
            let ready = match head.block_ready {
                Some(r) => r,
                None => {
                    let pc = head.instr.pc;
                    let r = self.hierarchy.access(Port::Instr, pc, cycle);
                    head.block_ready = Some(r);
                    r
                }
            };
            // A hit's latency is pipeline depth, not a stall; only misses
            // (ready beyond the hit horizon) block fetch.
            if ready > cycle + l1i_latency {
                break;
            }
            let entry = self.ftq.pop().unwrap();
            self.issued_prefix = self.issued_prefix.saturating_sub(1);
            if let Some(f) = &mut self.fdip {
                f.on_fetch(1);
            }
            fetched += 1;

            // Backend completion time.
            let base = cycle + self.config.execute_depth as u64;
            let complete = match entry.instr.op {
                Op::Mem(MemAccess::Load(addr)) => {
                    let issue = cycle + self.config.issue_depth as u64;
                    let dready = self.hierarchy.access(Port::Data, addr, issue);
                    base.max(dready)
                }
                Op::Mem(MemAccess::Store(addr)) => {
                    // Stores retire without waiting for the fill; the
                    // access still exercises the data hierarchy.
                    let issue = cycle + self.config.issue_depth as u64;
                    let _ = self.hierarchy.access(Port::Data, addr, issue);
                    base
                }
                _ => base,
            };
            // In-order commit: completion is monotone.
            let complete = complete.max(self.last_complete);
            self.last_complete = complete;
            self.rob.push_back(RobEntry {
                complete_at: complete,
                branch: entry.instr.branch_event().copied(),
            });

            // A mispredicted branch reaching fetch pins down its
            // resolution time; the BPU resumes after the resteer.
            match entry.verdict.resolution {
                Resolution::Correct => {}
                Resolution::DecodeResteer => {
                    let resolve = cycle
                        + self.config.decode_depth as u64
                        + self.config.redirect_penalty as u64;
                    self.bpu_state = BpuState::BlockedUntil(resolve);
                    break; // nothing valid to fetch behind a resteer
                }
                Resolution::ExecuteResteer => {
                    let resolve = cycle
                        + self.config.execute_depth as u64
                        + self.config.redirect_penalty as u64;
                    self.bpu_state = BpuState::BlockedUntil(resolve);
                    break;
                }
            }
        }
    }

    fn predict_stage(&mut self) {
        match self.bpu_state {
            BpuState::Running => {}
            BpuState::BlockedUnknown => return,
            BpuState::BlockedUntil(t) => {
                if self.cycle >= t {
                    self.bpu_state = BpuState::Running;
                    if let Some(f) = &mut self.fdip {
                        f.on_flush();
                    }
                } else {
                    return;
                }
            }
        }
        if self.cycle < self.bpu_busy_until || self.trace_done {
            return;
        }
        let mut predicted = 0;
        let mut taken_budget = self.config.bpu_taken_per_cycle;
        while predicted < self.config.bpu_width && taken_budget > 0 && self.ftq.has_room() {
            let Some(instr) = self.next_event() else {
                self.trace_done = true;
                break;
            };
            let verdict = self.bpu.predict(instr.pc, instr.size, instr.branch_event());
            if verdict.extra_bpu_cycles > 0 {
                // PDede's second-cycle Page-/Region-BTB access occupies
                // the predictor.
                self.bpu_busy_until = self.cycle + 1 + verdict.extra_bpu_cycles as u64;
            }
            if verdict.predicted_taken {
                taken_budget -= 1;
            }
            let mispredicted = verdict.resolution != Resolution::Correct;
            self.ftq.push(instr, verdict);
            predicted += 1;
            if mispredicted {
                // The BPU is now on the wrong path; stall until the
                // branch is fetched and resolved.
                self.bpu_state = BpuState::BlockedUnknown;
                break;
            }
            if verdict.extra_bpu_cycles > 0 {
                break;
            }
        }
    }
}

impl<S: TraceSource, B: btbx_core::Btb + Snapshot> Snapshot for Simulator<S, B> {
    /// Serialize the complete microarchitectural state — pipeline, BPU,
    /// caches, prefetcher, staging block and all counters. The trace
    /// source is *not* included: a snapshot pairs with a trace checkpoint
    /// taken at the same moment (the source sits ahead of commit by the
    /// in-flight instructions, which the snapshot carries).
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.budget_bits);
        self.bpu.save_state(w);
        self.ftq.save_state(w);
        self.hierarchy.save_state(w);
        match &self.fdip {
            None => w.bool(false),
            Some(f) => {
                w.bool(true);
                f.save_state(w);
            }
        }
        w.u64(self.rob.len() as u64);
        for e in &self.rob {
            w.u64(e.complete_at);
            match &e.branch {
                None => w.bool(false),
                Some(ev) => {
                    w.bool(true);
                    ev.save_state(w);
                }
            }
        }
        // Unconsumed remnant of the staging block, re-serialized as wide
        // records (the paired trace checkpoint sits just past it).
        w.u64((self.block.len() - self.block_pos) as u64);
        for i in self.block_pos..self.block.len() {
            self.block.get(i).save_snap(w);
        }
        w.u64(self.cycle);
        w.u64(self.committed);
        match self.bpu_state {
            BpuState::Running => w.u8(0),
            BpuState::BlockedUnknown => w.u8(1),
            BpuState::BlockedUntil(t) => {
                w.u8(2);
                w.u64(t);
            }
        }
        w.u64(self.bpu_busy_until);
        w.u64(self.last_complete);
        w.bool(self.trace_done);
        w.bool(self.measuring);
        w.u64(self.measure_start_cycle);
        w.u64(self.measure_start_committed);
        w.u64(self.bubble_cycles);
        w.u64(self.fetch_starved_cycles);
        w.u64(self.rob_full_cycles);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.budget_bits, "btb budget bits")?;
        self.bpu.restore_state(r)?;
        self.ftq.restore_state(r)?;
        self.hierarchy.restore_state(r)?;
        let has_fdip = r.bool()?;
        if has_fdip != self.fdip.is_some() {
            return Err(SnapError::Corrupt("fdip configuration mismatch"));
        }
        if let Some(f) = &mut self.fdip {
            f.restore_state(r)?;
        }
        let rob_len = r.u64()? as usize;
        if rob_len > self.config.rob_entries {
            return Err(SnapError::Corrupt("rob occupancy exceeds capacity"));
        }
        self.rob.clear();
        for _ in 0..rob_len {
            let complete_at = r.u64()?;
            let branch = if r.bool()? {
                Some(BranchEvent::load_state(r)?)
            } else {
                None
            };
            self.rob.push_back(RobEntry {
                complete_at,
                branch,
            });
        }
        let remnant = r.u64()? as usize;
        if remnant > EVENT_BLOCK_EVENTS {
            return Err(SnapError::Corrupt("staging block exceeds capacity"));
        }
        self.block.clear();
        self.block_pos = 0;
        for _ in 0..remnant {
            self.block.push(TraceInstr::load_snap(r)?);
        }
        // Derived, not serialized: rebuilt by the next ifetch window.
        self.issued_prefix = 0;
        self.cycle = r.u64()?;
        self.committed = r.u64()?;
        self.bpu_state = match r.u8()? {
            0 => BpuState::Running,
            1 => BpuState::BlockedUnknown,
            2 => BpuState::BlockedUntil(r.u64()?),
            _ => return Err(SnapError::Corrupt("bpu state discriminant")),
        };
        self.bpu_busy_until = r.u64()?;
        self.last_complete = r.u64()?;
        self.trace_done = r.bool()?;
        self.measuring = r.bool()?;
        self.measure_start_cycle = r.u64()?;
        self.measure_start_committed = r.u64()?;
        self.bubble_cycles = r.u64()?;
        self.fetch_starved_cycles = r.u64()?;
        self.rob_full_cycles = r.u64()?;
        Ok(())
    }
}

impl<S: TraceSource, B: btbx_core::Btb> std::fmt::Debug for Simulator<S, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.cycle)
            .field("committed", &self.committed)
            .field("org", &self.org_id)
            .finish()
    }
}

/// Positional convenience over [`crate::session::SimSession`]: run
/// `trace` against an already-built BTB — boxed (`Box<dyn Btb>`) or
/// concrete (e.g. [`btbx_core::BtbEngine`], which dispatches statically).
/// Prefer the session builder for new code — it validates specs and
/// exposes interval streaming.
pub fn simulate<S: TraceSource, B: btbx_core::Btb>(
    config: SimConfig,
    trace: S,
    btb: B,
    org_id: &str,
    warmup: u64,
    measure: u64,
) -> SimResult {
    crate::session::SimSession::new(trace)
        .btb(btb)
        .config(config)
        .label(org_id)
        .warmup(warmup)
        .measure(measure)
        .run()
        .expect("an instance-backed session always runs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use btbx_core::storage::BudgetPoint;
    use btbx_core::types::{Arch, BranchClass};
    use btbx_core::{factory, OrgKind};
    use btbx_trace::record::TraceInstr;
    use btbx_trace::source::VecSource;
    use btbx_trace::synth::{ProgramImage, SynthParams, SyntheticTrace};

    fn btb(kind: OrgKind) -> Box<dyn btbx_core::Btb> {
        factory::build(kind, BudgetPoint::Kb14_5.bits(Arch::Arm64), Arch::Arm64)
    }

    fn straight_line(n: u64) -> VecSource {
        VecSource::new(
            "line",
            (0..n)
                .map(|i| TraceInstr::other(0x1000 + i * 4, 4))
                .collect(),
        )
    }

    /// 1024 sequential instructions (4 KB, fits L1-I) ending in a jump
    /// back to the start, repeated.
    fn resident_kernel(passes: u64) -> VecSource {
        let mut v = Vec::new();
        for _ in 0..passes {
            for i in 0..1023u64 {
                v.push(TraceInstr::other(0x1000 + i * 4, 4));
            }
            let pc = 0x1000 + 1023 * 4;
            v.push(TraceInstr::branch(
                pc,
                4,
                BranchEvent::taken(pc, 0x1000, BranchClass::UncondDirect),
            ));
        }
        VecSource::new("kernel", v)
    }

    #[test]
    fn resident_code_streams_at_near_fetch_width() {
        let r = simulate(
            SimConfig::without_fdip(),
            resident_kernel(100),
            btb(OrgKind::Conv),
            "conv",
            20_000,
            60_000,
        );
        let ipc = r.stats.ipc();
        assert!(
            (4.0..=6.0).contains(&ipc),
            "warm L1-I-resident code should stream near fetch width, got {ipc}"
        );
        assert_eq!(r.stats.btb_mpki(), 0.0);
    }

    #[test]
    fn cold_streaming_code_is_miss_bandwidth_bound() {
        // 60 K instructions of never-revisited code: every block is a
        // cold L1-I miss; without a prefetcher IPC collapses — the
        // front-end bottleneck the paper opens with.
        let r = simulate(
            SimConfig::without_fdip(),
            straight_line(60_000),
            btb(OrgKind::Conv),
            "conv",
            10_000,
            40_000,
        );
        let ipc = r.stats.ipc();
        assert!(ipc < 2.0, "cold streaming should be slow, got {ipc}");
        assert!(r.stats.l1i_mpki() > 10.0);
    }

    #[test]
    fn tight_loop_is_predictable_after_warmup() {
        // A 16-instruction loop ending in a taken backward branch.
        let mut instrs = Vec::new();
        for _ in 0..4000u64 {
            for i in 0..15u64 {
                instrs.push(TraceInstr::other(0x2000 + i * 4, 4));
            }
            instrs.push(TraceInstr::branch(
                0x203c,
                4,
                BranchEvent::taken(0x203c, 0x2000, BranchClass::UncondDirect),
            ));
        }
        let r = simulate(
            SimConfig::without_fdip(),
            VecSource::new("loop", instrs),
            btb(OrgKind::BtbX),
            "btbx",
            30_000,
            30_000,
        );
        assert_eq!(r.stats.btb_mpki(), 0.0, "warm loop must not miss");
        assert!(r.stats.ipc() > 3.0, "ipc {}", r.stats.ipc());
    }

    #[test]
    fn synthetic_server_runs_end_to_end() {
        let image = ProgramImage::generate(&SynthParams::server(200), 5);
        let trace = SyntheticTrace::new(image, "server_mini", 5);
        let r = simulate(
            SimConfig::with_fdip(),
            trace,
            btb(OrgKind::BtbX),
            "btbx",
            50_000,
            100_000,
        );
        // Commit is 6-wide, so the window may overshoot by < 6.
        assert!((100_000..100_006).contains(&r.stats.instructions));
        assert!(r.stats.ipc() > 0.2, "ipc {}", r.stats.ipc());
        assert!(r.stats.bpu.lookups >= 100_000);
    }

    #[test]
    fn fdip_improves_ipc_on_large_footprint() {
        // A large-footprint server workload from the calibrated suite.
        let spec = btbx_trace::suite::ipc1_server()
            .into_iter()
            .find(|s| s.name == "server_033")
            .unwrap();
        let base = simulate(
            SimConfig::without_fdip(),
            spec.build_trace(),
            btb(OrgKind::BtbX),
            "btbx",
            200_000,
            400_000,
        );
        let fdip = simulate(
            SimConfig::with_fdip(),
            spec.build_trace(),
            btb(OrgKind::BtbX),
            "btbx",
            200_000,
            400_000,
        );
        assert!(
            fdip.stats.ipc() > base.stats.ipc() * 1.02,
            "FDIP should help: {} vs {}",
            fdip.stats.ipc(),
            base.stats.ipc()
        );
        assert!(fdip.stats.fdip.issued > 0);
        assert!(fdip.stats.l1i.prefetch_hits > 0);
    }

    #[test]
    fn btbx_beats_conv_on_server_mpki() {
        // Long enough to cycle through the branch working set so capacity
        // misses (not compulsory misses) dominate.
        let spec = btbx_trace::suite::ipc1_server()
            .into_iter()
            .find(|s| s.name == "server_030")
            .unwrap();
        let conv = simulate(
            SimConfig::with_fdip(),
            spec.build_trace(),
            btb(OrgKind::Conv),
            "conv",
            400_000,
            400_000,
        );
        let bx = simulate(
            SimConfig::with_fdip(),
            spec.build_trace(),
            btb(OrgKind::BtbX),
            "btbx",
            400_000,
            400_000,
        );
        assert!(
            bx.stats.btb_mpki() < conv.stats.btb_mpki() * 0.9,
            "BTB-X {} vs Conv {}",
            bx.stats.btb_mpki(),
            conv.stats.btb_mpki()
        );
        assert!(bx.stats.ipc() >= conv.stats.ipc());
    }

    #[test]
    fn decode_resteer_outperforms_execute_only() {
        let image = ProgramImage::generate(&SynthParams::server(900), 13);
        let mut no_dr = SimConfig::without_fdip();
        no_dr.decode_resteer = false;
        let slow = simulate(
            no_dr,
            SyntheticTrace::new(image.clone(), "srv", 13),
            btb(OrgKind::Conv),
            "conv",
            80_000,
            150_000,
        );
        let fast = simulate(
            SimConfig::without_fdip(),
            SyntheticTrace::new(image, "srv", 13),
            btb(OrgKind::Conv),
            "conv",
            80_000,
            150_000,
        );
        assert!(
            fast.stats.ipc() > slow.stats.ipc(),
            "decode resteer must reduce the miss penalty: {} vs {}",
            fast.stats.ipc(),
            slow.stats.ipc()
        );
    }

    #[test]
    fn finite_trace_terminates_cleanly() {
        let r = simulate(
            SimConfig::without_fdip(),
            straight_line(5_000),
            btb(OrgKind::Conv),
            "conv",
            1_000,
            100_000, // more than available: must stop at trace end
        );
        assert!(r.stats.instructions <= 4_000);
    }
}
