//! The branch prediction unit: BTB + hashed perceptron + RAS.
//!
//! Each cycle the BPU walks the upcoming instruction stream (the trace is
//! the correct path), probes the BTB for *every* PC — branches are only
//! discoverable through the BTB (Section II) — and classifies what the
//! front-end would do:
//!
//! * correct prediction: fetch continues seamlessly;
//! * decode-stage resteer (Section VI-A): BTB-missing unconditional
//!   *direct* branches, taken-predicted BTB-missing conditionals, and
//!   false BTB hits on non-branches — decode sees the instruction bytes
//!   and fixes the front-end after `decode_depth` cycles;
//! * execute-stage resteer: direction mispredictions, target
//!   mispredictions (indirect branches, aliased entries), BTB-missing
//!   returns and indirect branches.
//!
//! The BPU also keeps the RAS (calls push, returns pop) and trains the
//! direction predictor.

use crate::perceptron::HashedPerceptron;
use crate::ras::ReturnAddressStack;
use btbx_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use btbx_core::types::{BranchClass, BranchEvent, BtbBranchType, TargetSource};
use btbx_core::Btb;
use serde::{Deserialize, Serialize};

/// Where (whether) a misprediction is resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Prediction was correct; no pipeline disturbance.
    Correct,
    /// Fixed at decode: bubble of `decode_depth` + redirect.
    DecodeResteer,
    /// Fixed at execute: bubble of `execute_depth` + redirect.
    ExecuteResteer,
}

/// Why an execute/decode resteer happened (statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MispredictKind {
    /// Taken branch missed in the BTB.
    BtbMissTaken,
    /// Conditional direction mispredicted.
    Direction,
    /// Target mismatch (indirect branch or aliased entry).
    Target,
    /// BTB falsely identified a non-branch as a taken branch.
    FalseHit,
}

/// Per-instruction BPU verdict handed to the FTQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// How the front-end recovers.
    pub resolution: Resolution,
    /// Why (when not correct).
    pub kind: Option<MispredictKind>,
    /// The BTB supplied a (possibly wrong) next-fetch target this cycle.
    pub predicted_taken: bool,
    /// Extra BPU cycles consumed by the BTB lookup (PDede's second-cycle
    /// Page-/Region-BTB access for taken different-page branches).
    pub extra_bpu_cycles: u32,
}

impl Verdict {
    /// Serialize into a [`SnapWriter`] (FTQ entries carry verdicts through
    /// checkpoint/restore).
    pub fn save_snap(&self, w: &mut SnapWriter) {
        w.u8(match self.resolution {
            Resolution::Correct => 0,
            Resolution::DecodeResteer => 1,
            Resolution::ExecuteResteer => 2,
        });
        w.u8(match self.kind {
            None => 0,
            Some(MispredictKind::BtbMissTaken) => 1,
            Some(MispredictKind::Direction) => 2,
            Some(MispredictKind::Target) => 3,
            Some(MispredictKind::FalseHit) => 4,
        });
        w.bool(self.predicted_taken);
        w.u32(self.extra_bpu_cycles);
    }

    /// Deserialize a verdict written by [`Verdict::save_snap`].
    pub fn load_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let resolution = match r.u8()? {
            0 => Resolution::Correct,
            1 => Resolution::DecodeResteer,
            2 => Resolution::ExecuteResteer,
            _ => return Err(SnapError::Corrupt("verdict resolution discriminant")),
        };
        let kind = match r.u8()? {
            0 => None,
            1 => Some(MispredictKind::BtbMissTaken),
            2 => Some(MispredictKind::Direction),
            3 => Some(MispredictKind::Target),
            4 => Some(MispredictKind::FalseHit),
            _ => return Err(SnapError::Corrupt("verdict kind discriminant")),
        };
        Ok(Verdict {
            resolution,
            kind,
            predicted_taken: r.bool()?,
            extra_bpu_cycles: r.u32()?,
        })
    }
}

/// BPU statistics over the measurement window.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BpuStats {
    /// Instructions examined (BTB lookups on the correct path).
    pub lookups: u64,
    /// Dynamic branches seen.
    pub branches: u64,
    /// Dynamic taken branches seen.
    pub taken_branches: u64,
    /// Taken branches that missed in the BTB — the numerator of the
    /// paper's BTB MPKI (Section VI-C).
    pub btb_miss_taken: u64,
    /// Conditional direction mispredictions.
    pub direction_mispredicts: u64,
    /// Target mispredictions on BTB hits.
    pub target_mispredicts: u64,
    /// False BTB hits on non-branches that caused a bogus redirect.
    pub false_hits: u64,
    /// Decode-stage resteers.
    pub decode_resteers: u64,
    /// Execute-stage resteers.
    pub execute_resteers: u64,
    /// Conditional branches predicted by the perceptron.
    pub cond_predictions: u64,
}

impl BpuStats {
    /// BTB misses (taken branches) per kilo-instruction, given committed
    /// instructions.
    pub fn btb_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.btb_miss_taken as f64 * 1000.0 / instructions as f64
        }
    }

    /// All pipeline-flushing events.
    pub fn flushes(&self) -> u64 {
        self.decode_resteers + self.execute_resteers
    }

    /// Merge counters from another window (shard/interval aggregation).
    pub fn merge(&mut self, o: &BpuStats) {
        self.lookups += o.lookups;
        self.branches += o.branches;
        self.taken_branches += o.taken_branches;
        self.btb_miss_taken += o.btb_miss_taken;
        self.direction_mispredicts += o.direction_mispredicts;
        self.target_mispredicts += o.target_mispredicts;
        self.false_hits += o.false_hits;
        self.decode_resteers += o.decode_resteers;
        self.execute_resteers += o.execute_resteers;
        self.cond_predictions += o.cond_predictions;
    }
}

impl Snapshot for BpuStats {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.lookups);
        w.u64(self.branches);
        w.u64(self.taken_branches);
        w.u64(self.btb_miss_taken);
        w.u64(self.direction_mispredicts);
        w.u64(self.target_mispredicts);
        w.u64(self.false_hits);
        w.u64(self.decode_resteers);
        w.u64(self.execute_resteers);
        w.u64(self.cond_predictions);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.lookups = r.u64()?;
        self.branches = r.u64()?;
        self.taken_branches = r.u64()?;
        self.btb_miss_taken = r.u64()?;
        self.direction_mispredicts = r.u64()?;
        self.target_mispredicts = r.u64()?;
        self.false_hits = r.u64()?;
        self.decode_resteers = r.u64()?;
        self.execute_resteers = r.u64()?;
        self.cond_predictions = r.u64()?;
        Ok(())
    }
}

/// The branch prediction unit.
///
/// Generic over the BTB representation: `Box<dyn Btb>` (the default) keeps
/// the open, object-safe compatibility path, while a concrete type such as
/// [`btbx_core::BtbEngine`] monomorphizes every probe on the hot path.
pub struct Bpu<B: Btb = Box<dyn Btb>> {
    btb: B,
    dir: HashedPerceptron,
    ras: ReturnAddressStack,
    decode_resteer_enabled: bool,
    stats: BpuStats,
}

impl<B: Btb> Bpu<B> {
    /// Assemble a BPU around a BTB organization.
    pub fn new(btb: B, ras_entries: usize, decode_resteer: bool) -> Self {
        Bpu {
            btb,
            dir: HashedPerceptron::new(),
            ras: ReturnAddressStack::new(ras_entries),
            decode_resteer_enabled: decode_resteer,
            stats: BpuStats::default(),
        }
    }

    /// Borrow the underlying BTB (for storage/energy reporting).
    pub fn btb(&self) -> &B {
        &self.btb
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BpuStats {
        self.stats
    }

    /// Reset statistics and the BTB's access counters (warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = BpuStats::default();
        self.btb.reset_counts();
    }

    fn resteer(&mut self, decode_ok: bool, kind: MispredictKind) -> (Resolution, MispredictKind) {
        if decode_ok && self.decode_resteer_enabled {
            self.stats.decode_resteers += 1;
            (Resolution::DecodeResteer, kind)
        } else {
            self.stats.execute_resteers += 1;
            (Resolution::ExecuteResteer, kind)
        }
    }

    /// Examine the next correct-path instruction at prediction time.
    ///
    /// `branch` is `Some` when the instruction is a branch (with its
    /// actual outcome); `size` gives the fall-through distance.
    pub fn predict(&mut self, pc: u64, size: u8, branch: Option<&BranchEvent>) -> Verdict {
        self.stats.lookups += 1;
        let hit = self.btb.lookup(pc);

        let Some(ev) = branch else {
            // Non-branch instruction. A tag alias can make the BTB claim
            // it is a branch; if that claim redirects fetch, decode
            // discovers the instruction is not a branch and resteers.
            if let Some(h) = hit {
                let redirects = match h.btype {
                    BtbBranchType::Conditional => {
                        // Direction predictor consulted; only a taken
                        // prediction disturbs fetch.
                        self.dir.predict(pc).taken
                    }
                    _ => true,
                };
                if redirects {
                    self.btb.note_target_consumed(&h);
                    self.stats.false_hits += 1;
                    let (resolution, kind) = self.resteer(true, MispredictKind::FalseHit);
                    return Verdict {
                        resolution,
                        kind: Some(kind),
                        predicted_taken: true,
                        extra_bpu_cycles: h.extra_latency(),
                    };
                }
            }
            return Verdict {
                resolution: Resolution::Correct,
                kind: None,
                predicted_taken: false,
                extra_bpu_cycles: 0,
            };
        };

        self.stats.branches += 1;
        if ev.taken {
            self.stats.taken_branches += 1;
        }

        // Direction prediction is made for every conditional, BTB hit or
        // not — the fetch stage forwards it to decode (Section VI-A).
        let dir_pred = if ev.class == BranchClass::CondDirect {
            self.stats.cond_predictions += 1;
            Some(self.dir.predict(pc))
        } else {
            None
        };

        // Speculative RAS maintenance on the correct path.
        let ras_target = if ev.class == BranchClass::Return {
            self.ras.pop()
        } else {
            None
        };
        if ev.class.is_call() {
            self.ras.push(pc + size as u64);
        }

        let verdict = match hit {
            Some(h) => {
                let predicted_taken = match h.btype {
                    BtbBranchType::Conditional => dir_pred.map_or(ev.taken, |p| p.taken),
                    _ => true,
                };
                let extra = if predicted_taken {
                    h.extra_latency()
                } else {
                    0
                };
                if predicted_taken {
                    self.btb.note_target_consumed(&h);
                }
                let predicted_target = match h.target {
                    TargetSource::ReturnStack => ras_target,
                    TargetSource::Address(a) => Some(a),
                };
                if predicted_taken && ev.taken {
                    if predicted_target == Some(ev.target) {
                        (Resolution::Correct, None, predicted_taken, extra)
                    } else {
                        self.stats.target_mispredicts += 1;
                        let (r, k) = self.resteer(false, MispredictKind::Target);
                        (r, Some(k), predicted_taken, extra)
                    }
                } else if !predicted_taken && !ev.taken {
                    (Resolution::Correct, None, predicted_taken, extra)
                } else {
                    // Direction misprediction (either polarity): resolved
                    // at execute.
                    self.stats.direction_mispredicts += 1;
                    let (r, k) = self.resteer(false, MispredictKind::Direction);
                    (r, Some(k), predicted_taken, extra)
                }
            }
            None => {
                // BTB miss: fetch falls through. Harmless for not-taken
                // conditionals; a resteer otherwise.
                if !ev.taken {
                    (Resolution::Correct, None, false, 0)
                } else {
                    self.stats.btb_miss_taken += 1;
                    // Section VI-A: decode resteers unconditional direct
                    // branches and taken-predicted conditionals; returns
                    // and indirect branches wait for execute.
                    let decode_ok = match ev.class {
                        BranchClass::UncondDirect | BranchClass::CallDirect => true,
                        BranchClass::CondDirect => dir_pred.is_some_and(|p| p.taken),
                        _ => false,
                    };
                    let (r, k) = self.resteer(decode_ok, MispredictKind::BtbMissTaken);
                    (r, Some(k), false, 0)
                }
            }
        };

        // Train the direction predictor; record taken control flow in the
        // global history.
        if let Some(p) = dir_pred {
            self.dir.train(p, ev.taken);
        } else if ev.taken {
            self.dir.note_unconditional();
        }

        Verdict {
            resolution: verdict.0,
            kind: verdict.1,
            predicted_taken: verdict.2,
            extra_bpu_cycles: verdict.3,
        }
    }

    /// Commit-time BTB update (taken branches only allocate —
    /// Section VI-A; the call ignores not-taken events internally).
    pub fn commit(&mut self, ev: &BranchEvent) {
        self.btb.update(ev);
    }
}

impl<B: Btb + Snapshot> Snapshot for Bpu<B> {
    fn save_state(&self, w: &mut SnapWriter) {
        w.bool(self.decode_resteer_enabled);
        self.btb.save_state(w);
        self.dir.save_state(w);
        self.ras.save_state(w);
        self.stats.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.bool()? != self.decode_resteer_enabled {
            return Err(SnapError::Corrupt("decode-resteer configuration mismatch"));
        }
        self.btb.restore_state(r)?;
        self.dir.restore_state(r)?;
        self.ras.restore_state(r)?;
        self.stats.restore_state(r)
    }
}

impl<B: Btb> std::fmt::Debug for Bpu<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bpu")
            .field("btb", &self.btb.name())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btbx_core::storage::BudgetPoint;
    use btbx_core::types::Arch;
    use btbx_core::{factory, OrgKind};

    fn bpu() -> Bpu {
        let bits = BudgetPoint::Kb14_5.bits(Arch::Arm64);
        Bpu::new(factory::build(OrgKind::BtbX, bits, Arch::Arm64), 64, true)
    }

    fn taken(pc: u64, target: u64, class: BranchClass) -> BranchEvent {
        BranchEvent::taken(pc, target, class)
    }

    #[test]
    fn cold_taken_direct_jump_resteers_at_decode() {
        let mut b = bpu();
        let ev = taken(0x1000, 0x2000, BranchClass::UncondDirect);
        let v = b.predict(0x1000, 4, Some(&ev));
        assert_eq!(v.resolution, Resolution::DecodeResteer);
        assert_eq!(v.kind, Some(MispredictKind::BtbMissTaken));
        assert_eq!(b.stats().btb_miss_taken, 1);
    }

    #[test]
    fn cold_return_resolves_at_execute() {
        let mut b = bpu();
        let ev = taken(0x1000, 0x9000, BranchClass::Return);
        let v = b.predict(0x1000, 4, Some(&ev));
        assert_eq!(
            v.resolution,
            Resolution::ExecuteResteer,
            "returns are indirect; decode cannot produce the target"
        );
    }

    #[test]
    fn warm_branch_predicts_correctly() {
        let mut b = bpu();
        let ev = taken(0x1000, 0x2000, BranchClass::UncondDirect);
        b.predict(0x1000, 4, Some(&ev));
        b.commit(&ev);
        let v = b.predict(0x1000, 4, Some(&ev));
        assert_eq!(v.resolution, Resolution::Correct);
        assert!(v.predicted_taken);
    }

    #[test]
    fn decode_resteer_disabled_falls_back_to_execute() {
        let bits = BudgetPoint::Kb14_5.bits(Arch::Arm64);
        let mut b = Bpu::new(factory::build(OrgKind::BtbX, bits, Arch::Arm64), 64, false);
        let ev = taken(0x1000, 0x2000, BranchClass::UncondDirect);
        let v = b.predict(0x1000, 4, Some(&ev));
        assert_eq!(v.resolution, Resolution::ExecuteResteer);
    }

    #[test]
    fn call_return_pair_uses_ras() {
        let mut b = bpu();
        let call = taken(0x1000, 0x8000, BranchClass::CallDirect);
        let ret = taken(0x8010, 0x1004, BranchClass::Return);
        // Warm both into the BTB.
        b.predict(0x1000, 4, Some(&call));
        b.commit(&call);
        b.predict(0x8010, 4, Some(&ret));
        b.commit(&ret);
        // Second pass: call pushes 0x1004; return must pop it and match.
        assert_eq!(
            b.predict(0x1000, 4, Some(&call)).resolution,
            Resolution::Correct
        );
        assert_eq!(
            b.predict(0x8010, 4, Some(&ret)).resolution,
            Resolution::Correct
        );
    }

    #[test]
    fn ras_mismatch_is_target_mispredict() {
        let mut b = bpu();
        let call = taken(0x1000, 0x8000, BranchClass::CallDirect);
        let ret = taken(0x8010, 0x1004, BranchClass::Return);
        b.predict(0x1000, 4, Some(&call));
        b.commit(&call);
        b.predict(0x8010, 4, Some(&ret));
        b.commit(&ret);
        // A return with no matching call on the RAS (stack was drained).
        let bogus_ret = taken(0x8010, 0x5555_0000, BranchClass::Return);
        b.predict(0x1000, 4, Some(&call)); // push 0x1004
        let v = b.predict(0x8010, 4, Some(&bogus_ret)); // pops 0x1004 ≠ target
        assert_eq!(v.resolution, Resolution::ExecuteResteer);
        assert_eq!(v.kind, Some(MispredictKind::Target));
    }

    #[test]
    fn not_taken_conditional_btb_miss_is_free() {
        let mut b = bpu();
        let ev = BranchEvent::not_taken(0x3000, 0x4000);
        let v = b.predict(0x3000, 4, Some(&ev));
        assert_eq!(v.resolution, Resolution::Correct);
        assert_eq!(
            b.stats().btb_miss_taken,
            0,
            "paper counts taken misses only"
        );
    }

    #[test]
    fn conditional_direction_learned_then_mispredicted_on_flip() {
        let mut b = bpu();
        let t = taken(0x5000, 0x5100, BranchClass::CondDirect);
        // Teach taken.
        for _ in 0..80 {
            b.predict(0x5000, 4, Some(&t));
            b.commit(&t);
        }
        assert_eq!(
            b.predict(0x5000, 4, Some(&t)).resolution,
            Resolution::Correct
        );
        // Now the branch falls through once: direction mispredict.
        let nt = BranchEvent { taken: false, ..t };
        let v = b.predict(0x5000, 4, Some(&nt));
        assert_eq!(v.resolution, Resolution::ExecuteResteer);
        assert_eq!(v.kind, Some(MispredictKind::Direction));
    }

    #[test]
    fn indirect_retarget_is_target_mispredict() {
        let mut b = bpu();
        let a = taken(0x6000, 0x7000, BranchClass::CallIndirect);
        b.predict(0x6000, 4, Some(&a));
        b.commit(&a);
        let other = taken(0x6000, 0x7400, BranchClass::CallIndirect);
        let v = b.predict(0x6000, 4, Some(&other));
        assert_eq!(v.resolution, Resolution::ExecuteResteer);
        assert_eq!(v.kind, Some(MispredictKind::Target));
        assert_eq!(b.stats().target_mispredicts, 1);
    }

    #[test]
    fn mpki_accounting() {
        let mut b = bpu();
        for i in 0..10u64 {
            let ev = taken(0x10_0000 + i * 0x40, 0x20_0000, BranchClass::UncondDirect);
            b.predict(ev.pc, 4, Some(&ev));
        }
        assert_eq!(b.stats().btb_miss_taken, 10);
        assert!((b.stats().btb_mpki(10_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pdede_different_page_hits_cost_an_extra_bpu_cycle() {
        let bits = BudgetPoint::Kb14_5.bits(Arch::Arm64);
        let mut b = Bpu::new(factory::build(OrgKind::Pdede, bits, Arch::Arm64), 64, true);
        // Same-page branch: single-cycle lookup.
        let near = taken(0x1000, 0x1400, BranchClass::UncondDirect);
        b.predict(near.pc, 4, Some(&near));
        b.commit(&near);
        let v = b.predict(near.pc, 4, Some(&near));
        assert_eq!(v.extra_bpu_cycles, 0, "same-page: one cycle");
        // Different-page branch: the sequential Page-/Region-BTB access
        // costs a second cycle (Section VI-E).
        let far = taken(0x2000, 0x7f00_0040, BranchClass::CallDirect);
        b.predict(far.pc, 4, Some(&far));
        b.commit(&far);
        let v = b.predict(far.pc, 4, Some(&far));
        assert_eq!(v.resolution, Resolution::Correct);
        assert_eq!(v.extra_bpu_cycles, 1, "different-page: two cycles");
    }

    #[test]
    fn infinite_btb_only_misses_cold() {
        let mut b = Bpu::new(factory::build(OrgKind::Infinite, 0, Arch::Arm64), 64, true);
        for i in 0..2000u64 {
            let ev = taken(0x10_0000 + i * 8, 0x20_0000, BranchClass::UncondDirect);
            b.predict(ev.pc, 4, Some(&ev));
            b.commit(&ev);
        }
        assert_eq!(b.stats().btb_miss_taken, 2000, "every first sight misses");
        b.reset_stats();
        for i in 0..2000u64 {
            let ev = taken(0x10_0000 + i * 8, 0x20_0000, BranchClass::UncondDirect);
            b.predict(ev.pc, 4, Some(&ev));
        }
        assert_eq!(b.stats().btb_miss_taken, 0, "no capacity misses ever");
    }

    #[test]
    fn non_branch_usually_harmless() {
        let mut b = bpu();
        let v = b.predict(0x9000, 4, None);
        assert_eq!(v.resolution, Resolution::Correct);
        assert_eq!(b.stats().branches, 0);
        assert_eq!(b.stats().lookups, 1);
    }
}
