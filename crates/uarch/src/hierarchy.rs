//! The memory hierarchy of Table II: split L1-I/L1-D, unified L2, LLC and
//! main memory, wired for demand accesses and FDIP prefetch fills.

use crate::cache::{block_of, Cache, CacheStats, Probe};
use crate::config::SimConfig;
use btbx_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Which L1 a request enters through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Port {
    /// Instruction fetch (L1-I).
    Instr,
    /// Data access (L1-D).
    Data,
}

/// The full cache hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    memory_latency: u32,
}

impl Hierarchy {
    /// Build the hierarchy from a simulation configuration.
    pub fn new(config: &SimConfig) -> Self {
        Hierarchy {
            l1i: Cache::new("L1I", config.l1i),
            l1d: Cache::new("L1D", config.l1d),
            l2: Cache::new("L2", config.l2),
            llc: Cache::new("LLC", config.llc),
            memory_latency: config.memory_latency,
        }
    }

    /// Demand access for the byte at `addr` entering through `port` at
    /// cycle `now`; returns the cycle the data is usable.
    pub fn access(&mut self, port: Port, addr: u64, now: u64) -> u64 {
        let block = block_of(addr);
        let l1 = match port {
            Port::Instr => &mut self.l1i,
            Port::Data => &mut self.l1d,
        };
        match l1.probe(block, now) {
            Probe::Hit(t) | Probe::Pending(t) => t,
            Probe::Miss(start) => {
                let l1_lat = l1.latency as u64;
                let fill = self.lower_access(block, start + l1_lat);
                let l1 = match port {
                    Port::Instr => &mut self.l1i,
                    Port::Data => &mut self.l1d,
                };
                l1.record_fill(block, fill, false);
                fill
            }
        }
    }

    /// FDIP prefetch of the instruction block containing `addr`; returns
    /// `true` if a prefetch was issued (an L1-I MSHR was allocated).
    pub fn prefetch_instr(&mut self, addr: u64, now: u64) -> bool {
        let block = block_of(addr);
        let Some(start) = self.l1i.probe_prefetch(block, now) else {
            return false;
        };
        let l1_lat = self.l1i.latency as u64;
        let fill = self.lower_access(block, start + l1_lat);
        self.l1i.record_fill(block, fill, true);
        true
    }

    /// `true` when the instruction block holding `addr` would hit in the
    /// L1-I right now (probe without statistics side effects is not
    /// needed; FDIP uses `probe_prefetch` which is side-effect-aware).
    pub fn l1i_inflight(&mut self, now: u64) -> usize {
        self.l1i.inflight(now)
    }

    fn lower_access(&mut self, block: u64, now: u64) -> u64 {
        match self.l2.probe(block, now) {
            Probe::Hit(t) | Probe::Pending(t) => t,
            Probe::Miss(start) => {
                let l2_lat = self.l2.latency as u64;
                let fill = match self.llc.probe(block, start + l2_lat) {
                    Probe::Hit(t) | Probe::Pending(t) => t,
                    Probe::Miss(llc_start) => {
                        let f = llc_start + self.llc.latency as u64 + self.memory_latency as u64;
                        self.llc.record_fill(block, f, false);
                        f
                    }
                };
                self.l2.record_fill(block, fill, false);
                fill
            }
        }
    }

    /// Per-level statistics `(L1I, L1D, L2, LLC)`.
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats, CacheStats) {
        (
            self.l1i.stats(),
            self.l1d.stats(),
            self.l2.stats(),
            self.llc.stats(),
        )
    }

    /// Reset statistics at the warm-up boundary (contents preserved).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
    }
}

impl Snapshot for Hierarchy {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.memory_latency as u64);
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l2.save_state(w);
        self.llc.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.memory_latency as u64, "memory latency")?;
        self.l1i.restore_state(r)?;
        self.l1d.restore_state(r)?;
        self.l2.restore_state(r)?;
        self.llc.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&SimConfig::default())
    }

    #[test]
    fn l1i_hit_costs_l1i_latency() {
        let mut h = hierarchy();
        let _ = h.access(Port::Instr, 0x1000, 0); // cold fill
        let ready = h.access(Port::Instr, 0x1000, 1000);
        assert_eq!(ready, 1004);
    }

    #[test]
    fn cold_instruction_miss_goes_to_memory() {
        let mut h = hierarchy();
        let ready = h.access(Port::Instr, 0x1000, 0);
        // L1I(4) + L2(15) + LLC(35) + memory(200) = 254.
        assert_eq!(ready, 254);
    }

    #[test]
    fn l2_hit_path_is_much_cheaper() {
        let mut h = hierarchy();
        let _ = h.access(Port::Instr, 0x1000, 0);
        // Evict from tiny L1I by touching 9 conflicting blocks (8 ways);
        // blocks conflict when block % 64 matches.
        for i in 1..=9u64 {
            let _ = h.access(Port::Instr, 0x1000 + i * 64 * 64, 10_000 * i);
        }
        let ready = h.access(Port::Instr, 0x1000, 200_000);
        // L1I miss (4) + L2 hit (15): well under a memory access.
        assert!(ready <= 200_000 + 4 + 15, "ready {ready}");
    }

    #[test]
    fn data_and_instruction_paths_are_separate() {
        let mut h = hierarchy();
        let _ = h.access(Port::Instr, 0x1000, 0);
        // Same address through the data port still misses L1D (hits L2).
        let ready = h.access(Port::Data, 0x1000, 1000);
        assert!(ready > 1005, "L1D must not hit on an L1I fill");
        let (l1i, l1d, _, _) = h.stats();
        assert_eq!(l1i.accesses, 1);
        assert_eq!(l1d.accesses, 1);
    }

    #[test]
    fn prefetch_then_demand_hit() {
        let mut h = hierarchy();
        assert!(h.prefetch_instr(0x2000, 0));
        // After the fill completes, the demand access is an L1I hit.
        let ready = h.access(Port::Instr, 0x2000, 300);
        assert_eq!(ready, 304);
        let (l1i, ..) = h.stats();
        assert_eq!(l1i.prefetches, 1);
        assert_eq!(l1i.prefetch_hits, 1);
    }

    #[test]
    fn late_prefetch_still_shortens_the_miss() {
        let mut h = hierarchy();
        assert!(h.prefetch_instr(0x3000, 0));
        // Demand arrives while the prefetch is in flight: it merges and
        // waits until the prefetch fill, not a fresh memory access.
        let ready = h.access(Port::Instr, 0x3000, 10);
        assert_eq!(ready, 254, "merged with the in-flight prefetch");
    }

    #[test]
    fn duplicate_prefetch_is_dropped() {
        let mut h = hierarchy();
        assert!(h.prefetch_instr(0x4000, 0));
        assert!(!h.prefetch_instr(0x4000, 1));
    }
}
