//! Aggregate simulation statistics: IPC, BTB MPKI, flush and prefetch
//! accounting — the raw material for the paper's Figures 9–11 and
//! Table V.

use crate::bpu::BpuStats;
use crate::cache::CacheStats;
use crate::fdip::FdipStats;
use btbx_core::stats::AccessCounts;
use serde::{Deserialize, Serialize};

/// Statistics over the measurement window of one simulation.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Committed instructions.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Branch prediction unit counters.
    pub bpu: BpuStats,
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// LLC counters.
    pub llc: CacheStats,
    /// FDIP counters.
    pub fdip: FdipStats,
    /// BTB access counters (reads/writes/page searches) for the Table V
    /// energy analysis.
    pub btb_counts: AccessCounts,
    /// Cycles the BPU was stalled on an unresolved misprediction: the
    /// window in which a real front-end would fetch the wrong path.
    pub bubble_cycles: u64,
    /// Cycles fetch found an empty FTQ.
    pub fetch_starved_cycles: u64,
    /// Cycles fetch was blocked by a full ROB.
    pub rob_full_cycles: u64,
    /// Estimated wrong-path BTB lookups: `bubble_cycles ×` half the fetch
    /// width. Trace-driven simulation cannot replay the wrong path, so
    /// Table V charges this estimate on top of correct-path reads, as
    /// discussed in DESIGN.md.
    pub wrong_path_btb_reads: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Taken-branch BTB misses per kilo-instruction (Figure 9's metric).
    pub fn btb_mpki(&self) -> f64 {
        self.bpu.btb_mpki(self.instructions)
    }

    /// Pipeline flushes per kilo-instruction.
    pub fn flush_pki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.bpu.flushes() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L1-I demand misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.l1i.misses + self.l1i.mshr_merges) as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Total BTB reads charged for energy: correct-path lookups plus the
    /// wrong-path estimate.
    pub fn btb_reads_for_energy(&self) -> u64 {
        self.btb_counts.reads + self.wrong_path_btb_reads
    }

    /// Merge every counter from another measurement window — the
    /// deterministic reduction [`crate::parallel::ParallelSession`] uses
    /// to combine shard results (derived metrics like IPC are recomputed
    /// from the merged counters, never averaged).
    pub fn merge(&mut self, o: &SimStats) {
        self.instructions += o.instructions;
        self.cycles += o.cycles;
        self.bpu.merge(&o.bpu);
        self.l1i.merge(&o.l1i);
        self.l1d.merge(&o.l1d);
        self.l2.merge(&o.l2);
        self.llc.merge(&o.llc);
        self.fdip.merge(&o.fdip);
        self.btb_counts.merge(&o.btb_counts);
        self.bubble_cycles += o.bubble_cycles;
        self.fetch_starved_cycles += o.fetch_starved_cycles;
        self.rob_full_cycles += o.rob_full_cycles;
        self.wrong_path_btb_reads += o.wrong_path_btb_reads;
    }
}

/// A finished simulation: workload/organization identity plus statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// BTB organization id (`conv`, `pdede`, `btbx`, …).
    pub org: String,
    /// Whether FDIP was enabled.
    pub fdip_enabled: bool,
    /// Storage budget in bits for the BTB under test.
    pub btb_budget_bits: u64,
    /// Measurement-window statistics.
    pub stats: SimStats,
}

impl SimResult {
    /// Speedup of this run's IPC over a baseline IPC.
    pub fn speedup_over(&self, baseline_ipc: f64) -> f64 {
        if baseline_ipc == 0.0 {
            0.0
        } else {
            self.stats.ipc() / baseline_ipc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let stats = SimStats {
            instructions: 10_000,
            cycles: 5_000,
            bpu: BpuStats {
                btb_miss_taken: 50,
                decode_resteers: 30,
                execute_resteers: 20,
                ..BpuStats::default()
            },
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.0).abs() < 1e-12);
        assert!((stats.btb_mpki() - 5.0).abs() < 1e-12);
        assert!((stats.flush_pki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn energy_reads_include_wrong_path() {
        let mut stats = SimStats::default();
        stats.btb_counts.reads = 100;
        stats.wrong_path_btb_reads = 40;
        assert_eq!(stats.btb_reads_for_energy(), 140);
    }

    #[test]
    fn speedup_is_relative() {
        let r = SimResult {
            workload: "w".into(),
            org: "btbx".into(),
            fdip_enabled: true,
            btb_budget_bits: 0,
            stats: SimStats {
                instructions: 100,
                cycles: 50,
                ..SimStats::default()
            },
        };
        assert!((r.speedup_over(1.0) - 2.0).abs() < 1e-12);
        assert_eq!(r.speedup_over(0.0), 0.0);
    }
}
