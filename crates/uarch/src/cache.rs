//! Set-associative caches with MSHR-based miss tracking.
//!
//! Timing model: a lookup at cycle `t` returns the cycle at which the data
//! is usable. Hits cost the level's latency; misses allocate an MSHR and
//! are filled by the next level (the hierarchy wires levels together).
//! Concurrent misses to the same block merge into one MSHR (one fill
//! serves all), and a full MSHR file back-pressures demand accesses —
//! both first-order effects for FDIP, which keeps many instruction misses
//! in flight (Table II gives the L1-I just 8 MSHRs).

use crate::config::CacheParams;
use btbx_core::replacement::LruSet;
use btbx_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// Cache block size (bytes) used throughout the hierarchy.
pub const BLOCK_BYTES: u64 = 64;

/// Convert a byte address to a block address.
#[inline]
pub fn block_of(addr: u64) -> u64 {
    addr / BLOCK_BYTES
}

/// Per-cache access statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand lookups.
    pub accesses: u64,
    /// Demand hits (tag present and fill already complete).
    pub hits: u64,
    /// Demand lookups that merged into an in-flight miss.
    pub mshr_merges: u64,
    /// Demand misses that allocated a new MSHR.
    pub misses: u64,
    /// Cycles lost waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
    /// Prefetches issued (allocated an MSHR).
    pub prefetches: u64,
    /// Prefetches dropped (hit, already in flight, or MSHRs full).
    pub prefetch_drops: u64,
    /// Demand hits on blocks brought in by a prefetch (useful
    /// prefetches).
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Demand miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.misses + self.mshr_merges) as f64 / self.accesses as f64
        }
    }

    /// Merge counters (for aggregation across runs).
    pub fn merge(&mut self, o: &CacheStats) {
        self.accesses += o.accesses;
        self.hits += o.hits;
        self.mshr_merges += o.mshr_merges;
        self.misses += o.misses;
        self.mshr_stall_cycles += o.mshr_stall_cycles;
        self.prefetches += o.prefetches;
        self.prefetch_drops += o.prefetch_drops;
        self.prefetch_hits += o.prefetch_hits;
    }
}

#[derive(Debug, Clone, Copy)]
struct Mshr {
    block: u64,
    fill_at: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    block: u64,
    prefetched: bool,
}

const INVALID: Line = Line {
    block: u64::MAX,
    prefetched: false,
};

/// Outcome of a cache probe, before next-level involvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Present; data usable at the contained cycle.
    Hit(u64),
    /// An in-flight miss already covers this block; usable at fill time.
    Pending(u64),
    /// Genuine miss; the caller must fetch from the next level, starting
    /// no earlier than the contained cycle (accounts for MSHR stalls).
    Miss(u64),
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    sets: usize,
    ways: usize,
    /// Hit latency (cycles).
    pub latency: u32,
    lines: Vec<Line>,
    lru: Vec<LruSet>,
    mshrs: Vec<Mshr>,
    mshr_capacity: usize,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache level from parameters.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield at least one set.
    pub fn new(name: &'static str, params: CacheParams) -> Self {
        let sets = params.sets();
        assert!(sets > 0, "{name}: geometry yields zero sets");
        Cache {
            name,
            sets,
            ways: params.ways,
            latency: params.latency,
            lines: vec![INVALID; sets * params.ways],
            lru: vec![LruSet::new(params.ways); sets],
            mshrs: Vec::with_capacity(params.mshrs),
            mshr_capacity: params.mshrs,
            stats: CacheStats::default(),
        }
    }

    /// Level name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (contents preserved — used at the warm-up
    /// boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    fn expire_mshrs(&mut self, now: u64) {
        self.mshrs.retain(|m| m.fill_at > now);
    }

    fn find(&self, block: u64) -> Option<(usize, usize)> {
        let set = self.set_of(block);
        let base = set * self.ways;
        (0..self.ways)
            .find(|&w| self.lines[base + w].block == block)
            .map(|w| (set, w))
    }

    /// Demand probe at cycle `now`.
    pub fn probe(&mut self, block: u64, now: u64) -> Probe {
        self.expire_mshrs(now);
        self.stats.accesses += 1;
        if let Some((set, way)) = self.find(block) {
            self.lru[set].touch(way);
            let line = &mut self.lines[set * self.ways + way];
            if line.prefetched {
                // Useful prefetch: demand touched a prefetched block
                // (possibly while its fill is still in flight — a late
                // but still useful prefetch).
                line.prefetched = false;
                self.stats.prefetch_hits += 1;
            }
            // The tag is installed at miss time; the data is usable only
            // once the corresponding fill completes.
            if let Some(m) = self.mshrs.iter().find(|m| m.block == block) {
                self.stats.mshr_merges += 1;
                return Probe::Pending(m.fill_at.max(now + self.latency as u64));
            }
            self.stats.hits += 1;
            return Probe::Hit(now + self.latency as u64);
        }
        if let Some(m) = self.mshrs.iter().find(|m| m.block == block) {
            // The line was evicted while its fill is still in flight.
            self.stats.mshr_merges += 1;
            return Probe::Pending(m.fill_at.max(now + self.latency as u64));
        }
        // Miss. If the MSHR file is full, the access must wait for the
        // earliest fill to free a slot.
        let mut start = now;
        if self.mshrs.len() >= self.mshr_capacity {
            let earliest = self.mshrs.iter().map(|m| m.fill_at).min().unwrap();
            self.stats.mshr_stall_cycles += earliest.saturating_sub(now);
            start = earliest;
            self.mshrs.retain(|m| m.fill_at > start);
        }
        self.stats.misses += 1;
        Probe::Miss(start)
    }

    /// Record an outstanding miss filling at `fill_at`, and install the
    /// block (victim chosen by LRU). `prefetched` marks prefetch fills
    /// for usefulness accounting.
    pub fn record_fill(&mut self, block: u64, fill_at: u64, prefetched: bool) {
        debug_assert!(
            self.mshrs.len() < self.mshr_capacity,
            "{}: MSHR overflow",
            self.name
        );
        self.mshrs.push(Mshr { block, fill_at });
        let set = self.set_of(block);
        let base = set * self.ways;
        let way = (0..self.ways)
            .find(|&w| self.lines[base + w] == INVALID)
            .unwrap_or_else(|| self.lru[set].victim());
        self.lines[base + way] = Line { block, prefetched };
        self.lru[set].touch(way);
    }

    /// Prefetch probe: returns `Some(start_cycle)` when a prefetch should
    /// be issued to the next level, `None` when it should be dropped
    /// (already present, already in flight, or no MSHR available —
    /// prefetches never stall for MSHRs).
    pub fn probe_prefetch(&mut self, block: u64, now: u64) -> Option<u64> {
        self.expire_mshrs(now);
        if self.find(block).is_some() || self.mshrs.iter().any(|m| m.block == block) {
            self.stats.prefetch_drops += 1;
            return None;
        }
        if self.mshrs.len() >= self.mshr_capacity {
            self.stats.prefetch_drops += 1;
            return None;
        }
        self.stats.prefetches += 1;
        Some(now)
    }

    /// Number of in-flight misses (after expiry at `now`).
    pub fn inflight(&mut self, now: u64) -> usize {
        self.expire_mshrs(now);
        self.mshrs.len()
    }
}

impl Snapshot for CacheStats {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.accesses);
        w.u64(self.hits);
        w.u64(self.mshr_merges);
        w.u64(self.misses);
        w.u64(self.mshr_stall_cycles);
        w.u64(self.prefetches);
        w.u64(self.prefetch_drops);
        w.u64(self.prefetch_hits);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.accesses = r.u64()?;
        self.hits = r.u64()?;
        self.mshr_merges = r.u64()?;
        self.misses = r.u64()?;
        self.mshr_stall_cycles = r.u64()?;
        self.prefetches = r.u64()?;
        self.prefetch_drops = r.u64()?;
        self.prefetch_hits = r.u64()?;
        Ok(())
    }
}

impl Snapshot for Cache {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.sets as u64);
        w.u64(self.ways as u64);
        w.u64(self.mshr_capacity as u64);
        for line in &self.lines {
            w.u64(line.block);
            w.bool(line.prefetched);
        }
        for l in &self.lru {
            l.save_state(w);
        }
        w.u64(self.mshrs.len() as u64);
        for m in &self.mshrs {
            w.u64(m.block);
            w.u64(m.fill_at);
        }
        self.stats.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.sets as u64, "cache set count")?;
        r.expect_u64(self.ways as u64, "cache way count")?;
        r.expect_u64(self.mshr_capacity as u64, "cache mshr capacity")?;
        for line in &mut self.lines {
            *line = Line {
                block: r.u64()?,
                prefetched: r.bool()?,
            };
        }
        for l in &mut self.lru {
            l.restore_state(r)?;
        }
        let inflight = r.u64()? as usize;
        if inflight > self.mshr_capacity {
            return Err(SnapError::Corrupt("cache mshr occupancy exceeds capacity"));
        }
        self.mshrs.clear();
        for _ in 0..inflight {
            self.mshrs.push(Mshr {
                block: r.u64()?,
                fill_at: r.u64()?,
            });
        }
        self.stats.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(
            "t",
            CacheParams {
                bytes: 8 * 64, // 8 blocks
                ways: 2,
                latency: 4,
                mshrs: 2,
            },
        )
    }

    #[test]
    fn cold_miss_then_pending_merge() {
        let mut c = tiny();
        match c.probe(10, 0) {
            Probe::Miss(start) => {
                assert_eq!(start, 0);
                c.record_fill(10, 50, false);
            }
            p => panic!("expected miss, got {p:?}"),
        }
        // Before the fill completes, a second access merges and waits for
        // the fill — it must NOT look like a 4-cycle hit.
        assert_eq!(c.probe(10, 10), Probe::Pending(50));
    }

    #[test]
    fn pending_merge_returns_fill_time() {
        let mut c = tiny();
        assert!(matches!(c.probe(10, 0), Probe::Miss(_)));
        c.record_fill(10, 100, false);
        match c.probe(10, 5) {
            Probe::Pending(t) => assert_eq!(t, 100),
            p => panic!("in-flight block must merge, got {p:?}"),
        }
        assert_eq!(c.stats().mshr_merges, 1);
    }

    #[test]
    fn hit_after_fill_expires() {
        let mut c = tiny();
        assert!(matches!(c.probe(10, 0), Probe::Miss(_)));
        c.record_fill(10, 50, false);
        match c.probe(10, 60) {
            Probe::Hit(t) => assert_eq!(t, 64),
            p => panic!("expected plain hit, got {p:?}"),
        }
    }

    #[test]
    fn mshr_full_delays_start() {
        let mut c = tiny(); // 2 MSHRs
        assert!(matches!(c.probe(1, 0), Probe::Miss(_)));
        c.record_fill(1, 100, false);
        assert!(matches!(c.probe(2, 0), Probe::Miss(_)));
        c.record_fill(2, 120, false);
        match c.probe(3, 0) {
            Probe::Miss(start) => assert_eq!(start, 100, "waits for earliest fill"),
            p => panic!("{p:?}"),
        }
        assert!(c.stats().mshr_stall_cycles >= 100);
    }

    #[test]
    fn lru_evicts_cold_block() {
        let mut c = tiny(); // 4 sets × 2 ways; blocks 0,4,8 share set 0
        for b in [0u64, 4, 8] {
            if let Probe::Miss(_) = c.probe(b, 0) {
                c.record_fill(b, 0, false);
            }
        }
        // Block 0 was LRU; it must be gone. 4 and 8 remain.
        assert!(matches!(c.probe(0, 10), Probe::Miss(_)));
    }

    #[test]
    fn prefetch_dropped_when_present_or_full() {
        let mut c = tiny();
        if let Probe::Miss(_) = c.probe(1, 0) {
            c.record_fill(1, 10, false);
        }
        assert!(c.probe_prefetch(1, 0).is_none(), "present → drop");
        assert!(c.probe_prefetch(2, 0).is_some());
        c.record_fill(2, 30, true);
        assert!(c.probe_prefetch(3, 0).is_none(), "MSHRs full → drop");
        assert_eq!(c.stats().prefetch_drops, 2);
    }

    #[test]
    fn prefetch_hit_is_counted_once() {
        let mut c = tiny();
        let start = c.probe_prefetch(7, 0).unwrap();
        c.record_fill(7, start + 20, true);
        // Demand access after the fill: a useful prefetch.
        assert!(matches!(c.probe(7, 30), Probe::Hit(_)));
        assert_eq!(c.stats().prefetch_hits, 1);
        // Second access is a plain hit.
        assert!(matches!(c.probe(7, 40), Probe::Hit(_)));
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn miss_ratio_math() {
        let s = CacheStats {
            accesses: 10,
            misses: 2,
            mshr_merges: 1,
            ..CacheStats::default()
        };
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
    }
}
