//! Fetch-directed instruction prefetching (FDIP), Figure 2.
//!
//! The prefetch engine scans the FTQ — the stream of *predicted* upcoming
//! instruction addresses — ahead of the fetch pointer and issues L1-I
//! prefetches for blocks that are neither resident nor in flight. Because
//! the FTQ is filled by the BPU, FDIP's reach is exactly as good as the
//! BTB lets it be: a BTB miss stalls prediction and starves the
//! prefetcher, which is the coupling the paper exploits (Section II-C).

use crate::ftq::Ftq;
use crate::hierarchy::Hierarchy;
use btbx_core::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use serde::{Deserialize, Serialize};

/// FDIP statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdipStats {
    /// Prefetches issued to the hierarchy.
    pub issued: u64,
    /// FTQ entries examined.
    pub scanned: u64,
}

impl FdipStats {
    /// Merge counters from another window (shard aggregation).
    pub fn merge(&mut self, o: &FdipStats) {
        self.issued += o.issued;
        self.scanned += o.scanned;
    }
}

/// The prefetch engine.
#[derive(Debug, Clone)]
pub struct Fdip {
    /// Index of the next FTQ entry to examine (relative to the head).
    cursor: usize,
    /// Entries examined per cycle.
    scan_width: usize,
    stats: FdipStats,
}

impl Fdip {
    /// A prefetch engine scanning up to `scan_width` FTQ entries per
    /// cycle.
    pub fn new(scan_width: usize) -> Self {
        Fdip {
            cursor: 0,
            scan_width,
            stats: FdipStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FdipStats {
        self.stats
    }

    /// Index of the next FTQ entry to examine. A tick is a no-op exactly
    /// when the cursor has caught up with the FTQ tail; the batched
    /// executor's inert-cycle detector relies on this.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Reset statistics (cursor preserved).
    pub fn reset_stats(&mut self) {
        self.stats = FdipStats::default();
    }

    /// Account for `n` entries popped from the FTQ head (the cursor is
    /// relative to the head).
    pub fn on_fetch(&mut self, n: usize) {
        self.cursor = self.cursor.saturating_sub(n);
    }

    /// The FTQ was flushed; restart scanning from the new head.
    pub fn on_flush(&mut self) {
        self.cursor = 0;
    }

    /// One cycle of scanning: examine up to `scan_width` entries beyond
    /// the cursor and prefetch their instruction blocks.
    pub fn tick(&mut self, ftq: &Ftq, hierarchy: &mut Hierarchy, now: u64) {
        let mut examined = 0;
        while examined < self.scan_width {
            let Some(entry) = ftq.get(self.cursor) else {
                break;
            };
            self.stats.scanned += 1;
            if hierarchy.prefetch_instr(entry.instr.pc, now) {
                self.stats.issued += 1;
            }
            // Instructions spanning a block boundary prefetch the tail
            // block too (relevant for x86).
            let last_byte = entry.instr.pc + entry.instr.size.max(1) as u64 - 1;
            if last_byte / 64 != entry.instr.pc / 64 && hierarchy.prefetch_instr(last_byte, now) {
                self.stats.issued += 1;
            }
            self.cursor += 1;
            examined += 1;
        }
    }
}

impl Snapshot for Fdip {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.scan_width as u64);
        w.u64(self.cursor as u64);
        w.u64(self.stats.issued);
        w.u64(self.stats.scanned);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.scan_width as u64, "fdip scan width")?;
        self.cursor = r.u64()? as usize;
        self.stats.issued = r.u64()?;
        self.stats.scanned = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpu::{Resolution, Verdict};
    use crate::config::SimConfig;
    use crate::hierarchy::Port;
    use btbx_trace::TraceInstr;

    fn verdict() -> Verdict {
        Verdict {
            resolution: Resolution::Correct,
            kind: None,
            predicted_taken: false,
            extra_bpu_cycles: 0,
        }
    }

    fn setup() -> (Ftq, Hierarchy, Fdip) {
        (
            Ftq::new(128),
            Hierarchy::new(&SimConfig::default()),
            Fdip::new(8),
        )
    }

    #[test]
    fn prefetches_distinct_blocks_ahead() {
        let (mut ftq, mut h, mut fdip) = setup();
        for i in 0..8u64 {
            ftq.push(TraceInstr::other(0x1_0000 + i * 64, 4), verdict());
        }
        fdip.tick(&ftq, &mut h, 0);
        assert_eq!(fdip.stats().issued, 8);
        // Demand fetch later hits prefetched blocks.
        let ready = h.access(Port::Instr, 0x1_0000, 500);
        assert_eq!(ready, 504, "prefetched block is an L1I hit");
    }

    #[test]
    fn same_block_prefetched_once() {
        let (mut ftq, mut h, mut fdip) = setup();
        for i in 0..8u64 {
            ftq.push(TraceInstr::other(0x2_0000 + i * 4, 4), verdict());
        }
        fdip.tick(&ftq, &mut h, 0);
        assert_eq!(fdip.stats().issued, 1, "all eight share one block");
    }

    #[test]
    fn cursor_advances_across_ticks() {
        let (mut ftq, mut h, mut fdip) = setup();
        for i in 0..16u64 {
            ftq.push(TraceInstr::other(0x3_0000 + i * 64, 4), verdict());
        }
        fdip.tick(&ftq, &mut h, 0); // first 8 (MSHR capacity limits fills)
        fdip.tick(&ftq, &mut h, 1); // next 8 — mostly dropped (MSHRs full)
        assert_eq!(fdip.stats().scanned, 16);
    }

    #[test]
    fn fetch_moves_cursor_back() {
        let (mut ftq, mut h, mut fdip) = setup();
        for i in 0..4u64 {
            ftq.push(TraceInstr::other(0x4_0000 + i * 64, 4), verdict());
        }
        fdip.tick(&ftq, &mut h, 0);
        // Fetch pops two entries; the cursor must track the new head.
        ftq.pop();
        ftq.pop();
        fdip.on_fetch(2);
        // New entries appended are scanned next tick.
        ftq.push(TraceInstr::other(0x9_0000, 4), verdict());
        fdip.tick(&ftq, &mut h, 1);
        assert!(fdip.stats().scanned >= 5);
    }

    #[test]
    fn flush_resets_cursor() {
        let (mut ftq, mut h, mut fdip) = setup();
        ftq.push(TraceInstr::other(0x5_0000, 4), verdict());
        fdip.tick(&ftq, &mut h, 0);
        ftq.clear();
        fdip.on_flush();
        ftq.push(TraceInstr::other(0x6_0000, 4), verdict());
        fdip.tick(&ftq, &mut h, 1);
        assert_eq!(fdip.stats().issued, 2);
    }
}
