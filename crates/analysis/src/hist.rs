//! Offset-length histogram aggregation across workloads.
//!
//! Figures 4, 12 and 13 plot, per workload (or averaged), the cumulative
//! fraction of dynamic branches whose stored target offsets fit in N
//! bits. [`OffsetAggregate`] merges per-workload histograms (as collected
//! by `btbx_trace::TraceStats`) and renders [`CdfSeries`] for the
//! harnesses.

use btbx_trace::TraceStats;
use serde::{Deserialize, Serialize};

/// A named cumulative-distribution series over offset bits 0..=46.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdfSeries {
    /// Series label (workload name or "average").
    pub label: String,
    /// `cdf[b]` = fraction of dynamic branches with stored offsets ≤ `b`
    /// bits.
    pub cdf: Vec<f64>,
}

impl CdfSeries {
    /// Value at `bits` (clamped to the last point).
    pub fn at(&self, bits: usize) -> f64 {
        self.cdf[bits.min(self.cdf.len() - 1)]
    }
}

/// Accumulates offset histograms over many workloads.
#[derive(Debug, Clone, Default)]
pub struct OffsetAggregate {
    series: Vec<(String, Vec<u64>, u64)>, // (name, hist, total branches)
}

impl OffsetAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one workload's statistics.
    pub fn add(&mut self, name: impl Into<String>, stats: &TraceStats) {
        self.series
            .push((name.into(), stats.offset_hist.clone(), stats.branches));
    }

    /// Number of workloads added.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when nothing was added.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Per-workload CDF series, in insertion order.
    pub fn per_workload(&self) -> Vec<CdfSeries> {
        self.series
            .iter()
            .map(|(name, hist, total)| CdfSeries {
                label: name.clone(),
                cdf: cdf_of(hist, *total),
            })
            .collect()
    }

    /// The unweighted mean CDF across workloads (the paper averages
    /// workload curves, not dynamic branches, in Figures 12/13).
    pub fn average(&self, label: impl Into<String>) -> CdfSeries {
        let per = self.per_workload();
        let n = per.len().max(1) as f64;
        let len = per.first().map_or(47, |s| s.cdf.len());
        let mut avg = vec![0.0; len];
        for s in &per {
            for (i, v) in s.cdf.iter().enumerate() {
                avg[i] += v / n;
            }
        }
        CdfSeries {
            label: label.into(),
            cdf: avg,
        }
    }
}

fn cdf_of(hist: &[u64], total: u64) -> Vec<f64> {
    let mut acc = 0u64;
    hist.iter()
        .take(47)
        .map(|&c| {
            acc += c;
            if total == 0 {
                0.0
            } else {
                acc as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btbx_core::types::{Arch, BranchClass, BranchEvent};
    use btbx_trace::record::TraceInstr;

    fn stats_with(branches: &[(u64, u64, BranchClass)]) -> TraceStats {
        let mut s = TraceStats {
            instructions: 0,
            branches: 0,
            taken: 0,
            per_class: [0; 6],
            loads: 0,
            stores: 0,
            offset_hist: vec![0; 49],
            taken_branch_working_set: 0,
            code_blocks: 0,
        };
        for &(pc, target, class) in branches {
            s.observe(
                &TraceInstr::branch(pc, 4, BranchEvent::taken(pc, target, class)),
                Arch::Arm64,
            );
        }
        s
    }

    #[test]
    fn cdf_reaches_one() {
        let s = stats_with(&[
            (0x1000, 0x1010, BranchClass::CondDirect),
            (0x1000, 0x9000_0000, BranchClass::CallDirect),
        ]);
        let mut agg = OffsetAggregate::new();
        agg.add("w", &s);
        let cdf = &agg.per_workload()[0];
        assert!((cdf.at(46) - 1.0).abs() < 1e-12);
        assert!(cdf.at(2) < 1.0);
    }

    #[test]
    fn returns_anchor_the_zero_bucket() {
        let s = stats_with(&[(0x1000, 0xffff_0000, BranchClass::Return)]);
        let mut agg = OffsetAggregate::new();
        agg.add("w", &s);
        assert!((agg.per_workload()[0].at(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_is_unweighted() {
        // One workload all-short, one all-long: average CDF at small bits
        // must be 0.5 even though branch counts differ wildly.
        let short = stats_with(&[(0x1000, 0x1008, BranchClass::CondDirect)]);
        let mut long = stats_with(&[]);
        for i in 0..100u64 {
            long.observe(
                &TraceInstr::branch(
                    0x1000 + i * 4,
                    4,
                    BranchEvent::taken(0x1000 + i * 4, 0x4000_0000, BranchClass::CallDirect),
                ),
                Arch::Arm64,
            );
        }
        let mut agg = OffsetAggregate::new();
        agg.add("short", &short);
        agg.add("long", &long);
        let avg = agg.average("avg");
        assert!((avg.at(5) - 0.5).abs() < 1e-9);
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn empty_aggregate_average_is_zero() {
        let avg = OffsetAggregate::new().average("avg");
        assert_eq!(avg.at(46), 0.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let s = stats_with(&[
            (0x1000, 0x1008, BranchClass::CondDirect),
            (0x1000, 0x1200, BranchClass::CondDirect),
            (0x1000, 0x9000_0000, BranchClass::CallDirect),
        ]);
        let mut agg = OffsetAggregate::new();
        agg.add("w", &s);
        let cdf = &agg.per_workload()[0];
        for b in 1..47 {
            assert!(cdf.at(b) >= cdf.at(b - 1));
        }
    }
}
