//! The paper's published numbers, centralized so harnesses can print
//! paper-vs-measured columns and integration tests can assert
//! reproduction tolerances.

/// Table I: BTB storage cost across Samsung Exynos generations
/// (`(CPU, KB)`), from Grayson et al., ISCA 2020 (paper reference [21]).
pub const TABLE_I_EXYNOS_BTB_KB: [(&str, f64); 5] = [
    ("M1/M2", 98.9),
    ("M3", 175.8),
    ("M4", 288.0),
    ("M5", 310.8),
    ("M6", 561.5),
];

/// Figure 4 anchor points on the average Arm64 offset CDF:
/// `(stored bits, fraction of dynamic branches covered)` (Section V-A).
pub const FIG4_ARM64_CDF_ANCHORS: [(u32, f64); 8] = [
    (0, 0.20),
    (4, 0.36),
    (5, 0.46),
    (7, 0.61),
    (9, 0.72),
    (11, 0.79),
    (19, 0.90),
    (25, 0.99),
];

/// Headline offset statistics (Section I / III): ≤ 6 bits, 7–10 bits, and
/// > 25 bits fractions.
pub const OFFSETS_LE6: f64 = 0.54;
pub const OFFSETS_7_TO_10: f64 = 0.22;
pub const OFFSETS_GT25: f64 = 0.01;

/// Table IV: branches per storage budget `(BTB-X, +XC, PDede, Conv)`.
pub const TABLE_IV_BRANCHES: [(u64, u64, u64, u64); 7] = [
    (256, 4, 210, 116),
    (512, 8, 415, 232),
    (1024, 16, 820, 464),
    (2048, 32, 1617, 928),
    (4096, 64, 3190, 1856),
    (8192, 128, 6292, 3712),
    (16384, 256, 12405, 7424),
];

/// Headline capacity ratios (abstract / Section VI-B / VI-G).
pub const CAPACITY_VS_CONV_ARM64: f64 = 2.24;
pub const CAPACITY_VS_CONV_X86: f64 = 2.18;
pub const CAPACITY_VS_PDEDE_LOW: f64 = 1.24;
pub const CAPACITY_VS_PDEDE_HIGH: f64 = 1.34;

/// Figure 9: average BTB MPKI on server workloads at the 14.5 KB budget
/// `(Conv, PDede, BTB-X)`.
pub const FIG9_SERVER_MPKI: (f64, f64, f64) = (25.0, 13.7, 9.5);

/// Figure 10: geometric-mean server speedups over Conv-BTB-no-prefetch
/// `(Conv+FDIP, PDede+FDIP, BTB-X+FDIP)` and without FDIP
/// `(PDede, BTB-X)`.
pub const FIG10_SERVER_GAIN_FDIP: (f64, f64, f64) = (1.24, 1.33, 1.39);
pub const FIG10_SERVER_GAIN_NOFDIP: (f64, f64) = (1.08, 1.13);

/// Figure 11a datapoint called out in the text: at 14.5 KB,
/// `(Conv, PDede, BTB-X)` server gains over the 0.9 KB Conv baseline.
pub const FIG11_SERVER_GAIN_14_5KB: (f64, f64, f64) = (1.20, 1.29, 1.35);

/// Table V: per-access energies in pJ.
pub const TABLE_V_CONV_READ_PJ: f64 = 13.2;
pub const TABLE_V_CONV_WRITE_PJ: f64 = 25.2;
pub const TABLE_V_PDEDE_MAIN_READ_PJ: f64 = 8.4;
pub const TABLE_V_PDEDE_MAIN_WRITE_PJ: f64 = 12.5;
pub const TABLE_V_PAGE_READ_PJ: f64 = 0.9;
pub const TABLE_V_PAGE_WRITE_PJ: f64 = 0.8;
pub const TABLE_V_PAGE_SEARCH_PJ: f64 = 6.2;
pub const TABLE_V_BTBX_READ_PJ: f64 = 8.5;
pub const TABLE_V_BTBX_WRITE_PJ: f64 = 11.4;

/// Table V: total energies in µJ `(Conv, PDede, BTB-X)`.
pub const TABLE_V_TOTAL_UJ: (f64, f64, f64) = (2232.0, 1058.0, 999.0);

/// Section VI-E access latencies in ns `(Conv, PDede main, PDede page,
/// BTB-X)`.
pub const LATENCY_NS: (f64, f64, f64, f64) = (0.36, 0.34, 0.13, 0.33);

/// Relative-error helper used by tests and harness report columns.
pub fn rel_err(measured: f64, paper: f64) -> f64 {
    if paper == 0.0 {
        0.0
    } else {
        (measured - paper) / paper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_monotone() {
        let mut prev = 0.0;
        for (_, f) in FIG4_ARM64_CDF_ANCHORS {
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn exynos_storage_grows() {
        for w in TABLE_I_EXYNOS_BTB_KB.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn rel_err_math() {
        assert!((rel_err(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(5.0, 0.0), 0.0);
    }

    #[test]
    fn table_iv_consistent_with_headlines() {
        // The published Table IV ratios average to ~2.24× vs Conv.
        let avg: f64 = TABLE_IV_BRANCHES
            .iter()
            .map(|&(x, xc, _, c)| (x + xc) as f64 / c as f64)
            .sum::<f64>()
            / TABLE_IV_BRANCHES.len() as f64;
        assert!((avg - CAPACITY_VS_CONV_ARM64).abs() < 0.02);
    }
}
