//! Metric aggregation: means, geometric means, and speedup tables.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean; `0.0` for empty input.
///
/// The paper reports performance as geometric-mean speedups over the
/// baseline (Figures 10 and 11).
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A labelled speedup relative to a baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Speedup {
    /// Configuration label.
    pub label: String,
    /// Ratio over the baseline (1.0 = parity).
    pub value: f64,
}

impl Speedup {
    /// Construct from raw IPCs.
    pub fn from_ipc(label: impl Into<String>, ipc: f64, baseline_ipc: f64) -> Self {
        Speedup {
            label: label.into(),
            value: if baseline_ipc > 0.0 {
                ipc / baseline_ipc
            } else {
                0.0
            },
        }
    }

    /// Percentage gain over baseline (e.g. 1.39 → 39.0).
    pub fn percent_gain(&self) -> f64 {
        (self.value - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_basic() {
        assert_eq!(gmean(&[]), 0.0);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_below_arithmetic_mean() {
        let v = [1.0, 10.0, 2.5];
        assert!(gmean(&v) < mean(&v));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        gmean(&[1.0, 0.0]);
    }

    #[test]
    fn speedup_percent() {
        let s = Speedup::from_ipc("btbx", 1.39, 1.0);
        assert!((s.percent_gain() - 39.0).abs() < 1e-9);
        assert_eq!(Speedup::from_ipc("x", 1.0, 0.0).value, 0.0);
    }
}
