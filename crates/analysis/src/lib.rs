//! Analysis and reporting for the BTB-X reproduction.
//!
//! * [`hist`] — offset-length histograms and CDF series (Figures 4, 12
//!   and 13);
//! * [`metrics`] — geometric means, speedups and per-suite aggregation
//!   (Figures 9–11);
//! * [`table`] — plain-text table and CSV rendering used by every
//!   experiment harness;
//! * [`reference`] — the paper's published numbers (Table I, Figure 4
//!   anchors, Table IV/V values, headline gains), kept in one place so
//!   harnesses can print paper-vs-measured columns and tests can assert
//!   reproduction tolerances.

pub mod hist;
pub mod metrics;
pub mod reference;
pub mod table;

pub use hist::{CdfSeries, OffsetAggregate};
pub use metrics::{gmean, mean, Speedup};
pub use table::{Align, TextTable};
