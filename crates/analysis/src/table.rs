//! Plain-text table and CSV rendering for the experiment harnesses.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-justified (labels).
    Left,
    /// Right-justified (numbers).
    Right,
}

/// A simple fixed-width text table that also serializes to CSV.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    align: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers; all columns default to
    /// right-aligned except the first.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let align = header
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            header,
            align,
            rows: Vec::new(),
        }
    }

    /// Override column alignments.
    pub fn align(mut self, align: Vec<Align>) -> Self {
        assert_eq!(align.len(), self.header.len(), "alignment arity mismatch");
        self.align = align;
        self
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the header.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], align: &[Align]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                match align[i] {
                    Align::Left => line.push_str(&format!("{:<w$}", cells[i], w = widths[i])),
                    Align::Right => line.push_str(&format!("{:>w$}", cells[i], w = widths[i])),
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths, &self.align));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.align));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `digits` decimal places (helper for harnesses).
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1.5"]);
        t.row(["b", "10.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Numbers right-aligned: both end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["x,y", "1"]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",1\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
    }

    #[test]
    fn empty_state() {
        let t = TextTable::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
