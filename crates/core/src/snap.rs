//! Deterministic binary snapshot codec for microarchitectural state.
//!
//! Sharded simulation (see `btbx-uarch`) closes its accuracy gap by
//! restoring *warmed* microarchitectural state instead of replaying a
//! warm-up prefix. That requires every stateful model — each
//! [`crate::OrgKind`]'s BTB, the direction predictor, the return-address
//! stack, the cache hierarchy — to serialize into bytes that are
//! **byte-deterministic** (the same state always produces the same bytes,
//! so snapshots can be content-hashed and cached like `.btbt` containers)
//! and **versioned** (a snapshot taken by one build of the simulator must
//! never be silently restored into an incompatible one).
//!
//! The codec is intentionally primitive: little-endian fixed-width
//! integers, length-prefixed byte strings, `u8` enum discriminants, no
//! self-description. Every [`Snapshot`] implementation writes its own
//! geometry (set counts, way counts, capacities) ahead of its state and
//! validates it on restore, so restoring into a differently configured
//! model fails loudly with [`SnapError::Corrupt`] instead of corrupting
//! the simulation.
//!
//! [`seal`]/[`unseal`] wrap a payload in the versioned envelope used for
//! anything that leaves the process: a magic tag, the codec version, a
//! caller-chosen identity key (org + spec + config + warm-up), and an
//! FNV-1a content hash over the whole record — the same integrity scheme
//! `.btbt` containers use.

use std::fmt;

/// Codec version written into every sealed snapshot. Bump whenever any
/// [`Snapshot`] implementation changes its byte layout.
pub const SNAP_VERSION: u32 = 1;

const SNAP_MAGIC: [u8; 4] = *b"btbS";

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the state was fully read.
    Truncated,
    /// Bytes were left over after the state was fully read.
    Trailing(usize),
    /// A structural invariant failed (geometry mismatch, bad
    /// discriminant, invalid field value). The message names the check.
    Corrupt(&'static str),
    /// The sealed envelope was written for a different identity key.
    KeyMismatch { expected: String, found: String },
    /// The sealed envelope was written by a different codec version.
    VersionMismatch { expected: u32, found: u32 },
    /// The sealed envelope's content hash does not match its bytes.
    HashMismatch,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::Trailing(n) => write!(f, "snapshot has {n} trailing bytes"),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::KeyMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot key mismatch: expected `{expected}`, found `{found}`"
                )
            }
            SnapError::VersionMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot version mismatch: expected {expected}, found {found}"
                )
            }
            SnapError::HashMismatch => write!(f, "snapshot content hash mismatch"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Serializes state into a deterministic little-endian byte stream.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        SnapWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Deserializes state written by [`SnapWriter`], validating as it goes.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.buf.len() < n {
            return Err(SnapError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool discriminant")),
        }
    }

    pub fn i8(&mut self) -> Result<i8, SnapError> {
        Ok(self.u8()? as i8)
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("utf-8 string"))
    }

    /// Read a `u64` and require it to equal `expected` — the geometry
    /// guard every structural field uses on restore.
    pub fn expect_u64(&mut self, expected: u64, what: &'static str) -> Result<(), SnapError> {
        if self.u64()? != expected {
            return Err(SnapError::Corrupt(what));
        }
        Ok(())
    }

    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Require the stream to be fully consumed.
    pub fn done(&self) -> Result<(), SnapError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(SnapError::Trailing(self.buf.len()))
        }
    }
}

/// State that can round-trip through the snapshot codec.
///
/// Contract: `save_state` followed by `restore_state` on a freshly
/// constructed value *with the same configuration/geometry* must
/// reproduce the saved value exactly — every subsequent operation
/// (lookups, updates, statistics) behaves bit-identically to the
/// original. `restore_state` must validate geometry and reject bytes
/// written for a differently shaped instance.
pub trait Snapshot {
    fn save_state(&self, w: &mut SnapWriter);
    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError>;
}

/// 64-bit FNV-1a over `bytes` — the same hash `.btbt` containers and the
/// sweep cache keys use for content addressing.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Wrap `payload` in the versioned, content-hashed snapshot envelope.
///
/// `key` is the caller's identity string (org, spec, config, warm-up —
/// whatever must match for a restore to be meaningful); [`unseal`]
/// refuses payloads sealed under a different key.
pub fn seal(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.buf.extend_from_slice(&SNAP_MAGIC);
    w.u32(SNAP_VERSION);
    w.str(key);
    w.bytes(payload);
    let hash = fnv64(&w.buf);
    w.u64(hash);
    w.into_vec()
}

/// Validate a sealed envelope (magic, version, key, content hash) and
/// return its payload.
pub fn unseal<'a>(bytes: &'a [u8], key: &str) -> Result<&'a [u8], SnapError> {
    if bytes.len() < 8 {
        return Err(SnapError::Truncated);
    }
    let (body, hash_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(hash_bytes.try_into().unwrap());
    if fnv64(body) != stored {
        return Err(SnapError::HashMismatch);
    }
    let mut r = SnapReader::new(body);
    let magic = r.take(4)?;
    if magic != SNAP_MAGIC {
        return Err(SnapError::Corrupt("snapshot magic"));
    }
    let version = r.u32()?;
    if version != SNAP_VERSION {
        return Err(SnapError::VersionMismatch {
            expected: SNAP_VERSION,
            found: version,
        });
    }
    let found = r.str()?;
    if found != key {
        return Err(SnapError::KeyMismatch {
            expected: key.to_string(),
            found,
        });
    }
    let payload = r.bytes()?;
    r.done()?;
    Ok(payload)
}

/// Serialize `state` and seal it under `key`.
pub fn save_sealed<T: Snapshot + ?Sized>(key: &str, state: &T) -> Vec<u8> {
    let mut w = SnapWriter::new();
    state.save_state(&mut w);
    seal(key, &w.into_vec())
}

/// Unseal `bytes` under `key` and restore `state` from the payload,
/// requiring the payload to be fully consumed.
pub fn restore_sealed<T: Snapshot + ?Sized>(
    state: &mut T,
    key: &str,
    bytes: &[u8],
) -> Result<(), SnapError> {
    let payload = unseal(bytes, key)?;
    let mut r = SnapReader::new(payload);
    state.restore_state(&mut r)?;
    r.done()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(0xab);
        w.bool(true);
        w.bool(false);
        w.i8(-5);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.u128(u128::MAX / 3);
        w.bytes(b"payload");
        w.str("a string");
        let bytes = w.into_vec();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.i8().unwrap(), -5);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.str().unwrap(), "a string");
        r.done().unwrap();
    }

    #[test]
    fn truncated_and_trailing_are_detected() {
        let mut w = SnapWriter::new();
        w.u64(7);
        let bytes = w.into_vec();
        let mut r = SnapReader::new(&bytes[..4]);
        assert_eq!(r.u64(), Err(SnapError::Truncated));
        let r = SnapReader::new(&bytes);
        assert_eq!(r.done(), Err(SnapError::Trailing(8)));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut r = SnapReader::new(&[2]);
        assert!(matches!(r.bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn seal_round_trips_and_validates() {
        let sealed = seal("conv/1k/w8000", b"state bytes");
        assert_eq!(unseal(&sealed, "conv/1k/w8000").unwrap(), b"state bytes");

        assert!(matches!(
            unseal(&sealed, "pdede/1k/w8000"),
            Err(SnapError::KeyMismatch { .. })
        ));

        let mut flipped = sealed.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert_eq!(
            unseal(&flipped, "conv/1k/w8000"),
            Err(SnapError::HashMismatch)
        );

        assert_eq!(
            unseal(&sealed[..6], "conv/1k/w8000"),
            Err(SnapError::Truncated)
        );
    }

    #[test]
    fn sealing_is_deterministic() {
        assert_eq!(seal("k", b"abc"), seal("k", b"abc"));
        assert_ne!(seal("k", b"abc"), seal("k", b"abd"));
        assert_ne!(seal("k1", b"abc"), seal("k2", b"abc"));
    }

    #[test]
    fn expect_u64_guards_geometry() {
        let mut w = SnapWriter::new();
        w.u64(64);
        let bytes = w.into_vec();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.expect_u64(32, "set count"),
            Err(SnapError::Corrupt("set count"))
        );
    }
}
