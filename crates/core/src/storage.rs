//! Storage-budget arithmetic reproducing the paper's Table III (BTB-X
//! storage requirements) and Table IV (branches trackable per budget by
//! BTB-X, PDede and the conventional BTB), plus the Section VI-G x86
//! variant of the same analysis.
//!
//! The paper defines seven budget tiers as "the storage required by a
//! BTB-X with 256 … 16 K entries" (0.9 KB … 58 KB). Everything here is
//! exact integer arithmetic; the unit tests pin the published numbers.

use crate::conv::CONV_ENTRY_BITS;
use crate::pdede::{PdedeSizing, PAGE_ENTRY_BITS, REGION_BITS};
use crate::types::Arch;
use crate::x::{BtbXConfig, BTBXC_ENTRY_BITS, XC_ENTRY_DIVISOR};
use serde::{Deserialize, Serialize};

/// The seven storage-budget tiers of Tables III/IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BudgetPoint {
    /// 256-entry BTB-X ≈ 0.9 KB.
    Kb0_9,
    /// 512-entry BTB-X ≈ 1.8 KB.
    Kb1_8,
    /// 1K-entry BTB-X ≈ 3.6 KB.
    Kb3_6,
    /// 2K-entry BTB-X ≈ 7.25 KB.
    Kb7_25,
    /// 4K-entry BTB-X ≈ 14.5 KB — the paper's default evaluation budget.
    Kb14_5,
    /// 8K-entry BTB-X ≈ 29 KB.
    Kb29,
    /// 16K-entry BTB-X ≈ 58 KB.
    Kb58,
}

impl BudgetPoint {
    /// All tiers, smallest first.
    pub const ALL: [BudgetPoint; 7] = [
        BudgetPoint::Kb0_9,
        BudgetPoint::Kb1_8,
        BudgetPoint::Kb3_6,
        BudgetPoint::Kb7_25,
        BudgetPoint::Kb14_5,
        BudgetPoint::Kb29,
        BudgetPoint::Kb58,
    ];

    /// BTB-X entry count that defines this tier (Table III).
    pub const fn btbx_entries(self) -> usize {
        match self {
            BudgetPoint::Kb0_9 => 256,
            BudgetPoint::Kb1_8 => 512,
            BudgetPoint::Kb3_6 => 1024,
            BudgetPoint::Kb7_25 => 2048,
            BudgetPoint::Kb14_5 => 4096,
            BudgetPoint::Kb29 => 8192,
            BudgetPoint::Kb58 => 16384,
        }
    }

    /// Total bits of the tier-defining BTB-X (+BTB-XC) for `arch`.
    pub fn bits(self, arch: Arch) -> u64 {
        btbx_total_bits(self.btbx_entries(), arch)
    }

    /// The paper's label for the Arm64 tier ("0.9KB" … "58KB").
    pub const fn label(self) -> &'static str {
        match self {
            BudgetPoint::Kb0_9 => "0.9KB",
            BudgetPoint::Kb1_8 => "1.8KB",
            BudgetPoint::Kb3_6 => "3.6KB",
            BudgetPoint::Kb7_25 => "7.25KB",
            BudgetPoint::Kb14_5 => "14.5KB",
            BudgetPoint::Kb29 => "29KB",
            BudgetPoint::Kb58 => "58KB",
        }
    }
}

impl std::fmt::Display for BudgetPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Total storage (bits) of a BTB-X with `entries` entries plus its BTB-XC
/// (Table III construction).
pub fn btbx_total_bits(entries: usize, arch: Arch) -> u64 {
    let sets = entries / 8;
    let xc_entries = (entries / XC_ENTRY_DIVISOR).max(1);
    sets as u64 * BtbXConfig::paper(arch).set_bits() + xc_entries as u64 * BTBXC_ENTRY_BITS
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableIiiRow {
    /// BTB-X entries.
    pub entries: usize,
    /// BTB-XC entries.
    pub xc_entries: usize,
    /// BTB-X sets.
    pub sets: usize,
    /// Bits per BTB-X set (224 on Arm64).
    pub set_bits: u64,
    /// Bits per BTB-XC entry (64).
    pub xc_entry_bits: u64,
    /// Total storage in KB.
    pub storage_kb: f64,
}

/// Compute Table III for `arch` (the paper presents Arm64).
pub fn table_iii(arch: Arch) -> Vec<TableIiiRow> {
    BudgetPoint::ALL
        .iter()
        .map(|&bp| {
            let entries = bp.btbx_entries();
            let sets = entries / 8;
            TableIiiRow {
                entries,
                xc_entries: (entries / XC_ENTRY_DIVISOR).max(1),
                sets,
                set_bits: BtbXConfig::paper(arch).set_bits(),
                xc_entry_bits: BTBXC_ENTRY_BITS,
                storage_kb: bp.bits(arch) as f64 / 8192.0,
            }
        })
        .collect()
}

/// One row of Table IV: branch capacity of each organization at one
/// storage budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableIvRow {
    /// Budget tier.
    pub budget: BudgetPoint,
    /// Total budget in bits.
    pub budget_bits: u64,
    /// BTB-X branches (main entries).
    pub btbx_branches: u64,
    /// BTB-XC branches.
    pub btbxc_branches: u64,
    /// PDede Page-BTB budget in KB.
    pub pdede_page_kb: f64,
    /// PDede Main-BTB budget in KB.
    pub pdede_main_kb: f64,
    /// PDede average Main-BTB entry size in bits.
    pub pdede_entry_bits: f64,
    /// PDede branches (idealized `main_bits / avg_entry`, as the paper
    /// tabulates).
    pub pdede_branches: u64,
    /// Conventional-BTB entry size in bits (64).
    pub conv_entry_bits: u64,
    /// Conventional-BTB branches.
    pub conv_branches: u64,
}

impl TableIvRow {
    /// Capacity ratio BTB-X : conventional (the paper's 2.24×).
    pub fn btbx_vs_conv(&self) -> f64 {
        (self.btbx_branches + self.btbxc_branches) as f64 / self.conv_branches as f64
    }

    /// Capacity ratio BTB-X : PDede (the paper's 1.24–1.34×).
    pub fn btbx_vs_pdede(&self) -> f64 {
        (self.btbx_branches + self.btbxc_branches) as f64 / self.pdede_branches as f64
    }
}

/// Compute Table IV for Arm64 exactly as the paper does.
///
/// The per-organization conventions (all from Section VI-B):
/// * BTB-X defines the budget: `sets × 224 + XC × 64` bits;
/// * PDede's Page-BTB gets 32 entries per 0.9 KB tier (doubling), the
///   Region-BTB a fixed 88 bits, the Main-BTB the rest, with capacity
///   `main_bits / avg_entry_bits`;
/// * the conventional BTB holds `budget / 64` branches.
pub fn table_iv(arch: Arch) -> Vec<TableIvRow> {
    BudgetPoint::ALL
        .iter()
        .map(|&bp| table_iv_row(bp, arch))
        .collect()
}

fn table_iv_row(bp: BudgetPoint, arch: Arch) -> TableIvRow {
    let bits = bp.bits(arch);
    // PDede sizing is defined by the Arm64 tier geometry regardless of the
    // BTB-X ISA: Section VI-G resizes only BTB-X for x86 and keeps the
    // competitor layouts fixed, which is how the published 1.21×/1.31×
    // ratios arise.
    let sizing = PdedeSizing::for_budget(bits);
    let page_bits = sizing.page_entries as u64 * PAGE_ENTRY_BITS;
    let main_bits = bits - page_bits - REGION_BITS;
    let avg = PdedeSizing::avg_entry_bits(sizing.page_ptr_bits);
    let entries = bp.btbx_entries();
    TableIvRow {
        budget: bp,
        budget_bits: bits,
        btbx_branches: entries as u64,
        btbxc_branches: (entries / XC_ENTRY_DIVISOR).max(1) as u64,
        pdede_page_kb: page_bits as f64 / 8192.0,
        pdede_main_kb: main_bits as f64 / 8192.0,
        pdede_entry_bits: avg,
        pdede_branches: (main_bits as f64 / avg).round() as u64,
        conv_entry_bits: CONV_ENTRY_BITS,
        conv_branches: bits / CONV_ENTRY_BITS,
    }
}

/// Section VI-G: the same capacity analysis with BTB-X resized for x86
/// (ways 0/5/6/7/9/12/20/27, 86 offset bits per set).
pub fn table_x86() -> Vec<TableIvRow> {
    table_iv(Arch::X86)
}

/// Average of `btbx_vs_conv` across all tiers — the paper's headline
/// "about 2.24×" (Arm64) / "2.18×" (x86).
pub fn mean_capacity_vs_conv(arch: Arch) -> f64 {
    let rows = table_iv(arch);
    rows.iter().map(TableIvRow::btbx_vs_conv).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_matches_paper() {
        let rows = table_iii(Arch::Arm64);
        let expect_kb = [0.90625, 1.8125, 3.625, 7.25, 14.5, 29.0, 58.0];
        let expect_sets = [32, 64, 128, 256, 512, 1024, 2048];
        let expect_xc = [4, 8, 16, 32, 64, 128, 256];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.set_bits, 224);
            assert_eq!(row.xc_entry_bits, 64);
            assert_eq!(row.sets, expect_sets[i]);
            assert_eq!(row.xc_entries, expect_xc[i]);
            assert!(
                (row.storage_kb - expect_kb[i]).abs() < 0.01,
                "row {i}: {} vs {}",
                row.storage_kb,
                expect_kb[i]
            );
        }
    }

    #[test]
    fn table_iv_matches_paper_arm64() {
        let rows = table_iv(Arch::Arm64);
        // Paper Table IV columns (PDede branches, Conv branches).
        let pdede = [210u64, 415, 820, 1617, 3190, 6292, 12405];
        let conv = [116u64, 232, 464, 928, 1856, 3712, 7424];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.conv_branches, conv[i], "conv row {i}");
            // PDede involves floating-point rounding; allow ±2 branches.
            assert!(
                (row.pdede_branches as i64 - pdede[i] as i64).abs() <= 2,
                "pdede row {i}: {} vs {}",
                row.pdede_branches,
                pdede[i]
            );
        }
        // Paper: 1.24× over PDede at 0.9 KB, 1.34× at 58 KB.
        assert!((rows[0].btbx_vs_pdede() - 1.24).abs() < 0.02);
        assert!((rows[6].btbx_vs_pdede() - 1.34).abs() < 0.02);
    }

    #[test]
    fn headline_capacity_ratios() {
        // "about 2.24x more branches than a conventional BTB"
        assert!((mean_capacity_vs_conv(Arch::Arm64) - 2.24).abs() < 0.02);
        // Section VI-G: "2.18x more branches than Conv-BTB for x86"
        assert!((mean_capacity_vs_conv(Arch::X86) - 2.18).abs() < 0.02);
    }

    #[test]
    fn x86_vs_pdede_ratios() {
        let rows = table_x86();
        // Section VI-G: 1.21× at 0.9 KB, 1.31× at 58 KB.
        assert!(
            (rows[0].btbx_vs_pdede() - 1.21).abs() < 0.02,
            "got {}",
            rows[0].btbx_vs_pdede()
        );
        assert!(
            (rows[6].btbx_vs_pdede() - 1.31).abs() < 0.02,
            "got {}",
            rows[6].btbx_vs_pdede()
        );
    }

    #[test]
    fn budgets_double_per_tier() {
        let bits: Vec<u64> = BudgetPoint::ALL
            .iter()
            .map(|bp| bp.bits(Arch::Arm64))
            .collect();
        for i in 1..bits.len() {
            assert_eq!(bits[i], bits[i - 1] * 2);
        }
        assert_eq!(bits[0], 7424);
    }

    #[test]
    fn pdede_budget_split_matches_table_iv() {
        let rows = table_iv(Arch::Arm64);
        let expect_page_kb = [0.078, 0.156, 0.312, 0.625, 1.25, 2.5, 5.0];
        let expect_main_kb = [0.817, 1.645, 3.3, 6.6, 13.2, 26.5, 53.0];
        for (i, row) in rows.iter().enumerate() {
            assert!(
                (row.pdede_page_kb - expect_page_kb[i]).abs() < 0.01,
                "page row {i}: {}",
                row.pdede_page_kb
            );
            assert!(
                (row.pdede_main_kb - expect_main_kb[i]).abs() < 0.15,
                "main row {i}: {}",
                row.pdede_main_kb
            );
        }
    }

    #[test]
    fn pdede_entry_sizes_match_table_iv() {
        let rows = table_iv(Arch::Arm64);
        let expect = [32.0, 32.5, 33.0, 33.5, 34.0, 34.5, 35.0];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.pdede_entry_bits, expect[i], "row {i}");
        }
    }
}
