//! The [`Btb`] trait: the contract every BTB organization implements and
//! the simulator consumes.
//!
//! A BTB answers one question per fetch-stage probe — *is this PC a branch,
//! and if so where does it go?* — and is updated at commit time by taken
//! branches (Section VI-A). Implementations also expose their storage
//! breakdown (for the Table III/IV reproductions) and access counters (for
//! the Table V energy analysis).

use crate::stats::{AccessCounts, StorageReport};
use crate::types::{BranchEvent, BtbBranchType, TargetSource};

/// Which physical structure produced a hit; used for latency modelling and
/// per-partition statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitSite {
    /// The main (or only) set-associative structure; for BTB-X this is one
    /// of the eight offset ways.
    Main,
    /// BTB-X's small direct-mapped overflow BTB holding full targets.
    Overflow,
    /// A hit that required following the Page-/Region-BTB indirection
    /// (PDede different-page entries and every R-BTB hit): the target is
    /// available one cycle later (Section IV-C / VI-E).
    Indirect,
}

/// Outcome of a BTB probe that matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbHit {
    /// Branch type from the entry's 2-bit type field.
    pub btype: BtbBranchType,
    /// Predicted target, or "pop the RAS" for returns.
    pub target: TargetSource,
    /// Which structure supplied the entry.
    pub site: HitSite,
}

impl BtbHit {
    /// Extra lookup cycles beyond a single-cycle probe that the front-end
    /// must charge for this hit.
    ///
    /// PDede's different-page branches pay one extra cycle for the
    /// sequential Page-/Region-BTB access (Section VI-E: the Main-BTB is
    /// accessed in the first cycle and the Page-BTB in the next when the
    /// branch is predicted taken); everything else resolves in one cycle.
    #[inline]
    pub fn extra_latency(&self) -> u32 {
        match self.site {
            HitSite::Indirect => 1,
            HitSite::Main | HitSite::Overflow => 0,
        }
    }
}

/// A branch target buffer organization.
///
/// All methods take `&mut self`: probes update recency state and counters.
/// The trait is object-safe; the simulator stores a `Box<dyn Btb>`.
pub trait Btb {
    /// Probe the BTB at fetch time. Returns `None` when `pc` does not
    /// match any entry (the front-end then assumes a non-branch and
    /// continues sequentially). Counts one read access.
    fn lookup(&mut self, pc: u64) -> Option<BtbHit>;

    /// Commit-time update. Only taken branches allocate or refresh entries
    /// (Section VI-A); implementations must ignore not-taken events except
    /// for recency bookkeeping on an existing entry.
    fn update(&mut self, event: &BranchEvent);

    /// Inform the BTB that the front-end actually consumed the target of
    /// `hit` (the branch was predicted taken).
    ///
    /// PDede's Page-/Region-BTB are physically read only in this case — the
    /// second lookup cycle happens for predicted-taken different-page
    /// branches (Section VI-E) — so the default implementation does nothing
    /// and PDede overrides it to count those reads.
    fn note_target_consumed(&mut self, hit: &BtbHit) {
        let _ = hit;
    }

    /// Itemized storage cost (reproduces the paper's storage tables).
    fn storage(&self) -> StorageReport;

    /// Dynamic access counters accumulated so far.
    fn counts(&self) -> AccessCounts;

    /// Reset dynamic access counters (storage/contents are untouched).
    fn reset_counts(&mut self);

    /// Remove all entries and reset recency state (used between the warm-up
    /// and measurement phases only when explicitly requested).
    fn clear(&mut self);

    /// Short organization name, e.g. `"conv"`, `"pdede"`, `"btbx"`.
    fn name(&self) -> &'static str;

    /// Number of branches this instance can track (Table IV column).
    fn branch_capacity(&self) -> u64 {
        self.storage().branch_capacity
    }
}

impl<T: Btb + ?Sized> Btb for Box<T> {
    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        (**self).lookup(pc)
    }

    #[inline]
    fn update(&mut self, event: &BranchEvent) {
        (**self).update(event)
    }

    #[inline]
    fn note_target_consumed(&mut self, hit: &BtbHit) {
        (**self).note_target_consumed(hit)
    }

    fn storage(&self) -> StorageReport {
        (**self).storage()
    }

    fn counts(&self) -> AccessCounts {
        (**self).counts()
    }

    fn reset_counts(&mut self) {
        (**self).reset_counts()
    }

    fn clear(&mut self) {
        (**self).clear()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn branch_capacity(&self) -> u64 {
        (**self).branch_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indirect_hits_cost_an_extra_cycle() {
        let hit = BtbHit {
            btype: BtbBranchType::Unconditional,
            target: TargetSource::Address(0x40),
            site: HitSite::Indirect,
        };
        assert_eq!(hit.extra_latency(), 1);
        let hit = BtbHit {
            site: HitSite::Main,
            ..hit
        };
        assert_eq!(hit.extra_latency(), 0);
        let hit = BtbHit {
            site: HitSite::Overflow,
            ..hit
        };
        assert_eq!(hit.extra_latency(), 0);
    }
}
