//! Construction of BTB organizations at a given storage budget.
//!
//! The simulator and experiment harness are generic over [`crate::Btb`];
//! this module maps an [`OrgKind`] plus a budget in bits (usually a
//! [`crate::storage::BudgetPoint`]) to a boxed instance sized the way the
//! paper sizes it in Section VI-B.

use crate::conv::ConvBtb;
use crate::pdede::PdedeBtb;
use crate::rbtb::RBtb;
use crate::storage::btbx_total_bits;
use crate::types::Arch;
use crate::x::{BtbX, BtbXConfig};
use crate::Btb;
use serde::{Deserialize, Serialize};

/// Selectable BTB organizations, including the paper's two evaluation
/// baselines and this repository's ablation variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgKind {
    /// Conventional BTB, full targets (Figure 1).
    Conv,
    /// PDede (Figures 6/7), the state-of-the-art baseline.
    Pdede,
    /// BTB-X with BTB-XC (Figure 8), the paper's design.
    BtbX,
    /// Seznec's R-BTB (Figure 5); related-work baseline.
    RBtb,
    /// Hoogerbrugge's mixed-entry-size BTB (Section VII); related-work
    /// baseline.
    Hoogerbrugge,
    /// Idealized infinite-capacity BTB (ChampSim's implicit oracle;
    /// headroom studies). Ignores the storage budget.
    Infinite,
    /// Ablation: BTB-X with eight uniform widest ways.
    BtbXUniform,
    /// Ablation: BTB-X without the BTB-XC overflow structure.
    BtbXNoXc,
}

impl OrgKind {
    /// The three organizations of the paper's evaluation, in the order the
    /// figures plot them.
    pub const PAPER_EVAL: [OrgKind; 3] = [OrgKind::Conv, OrgKind::Pdede, OrgKind::BtbX];

    /// Every organization, paper-evaluation ones first. The canonical list
    /// for conformance suites and CLI parsing — extend it when adding a
    /// variant so downstream coverage picks the new organization up.
    pub const ALL: [OrgKind; 8] = [
        OrgKind::Conv,
        OrgKind::Pdede,
        OrgKind::BtbX,
        OrgKind::RBtb,
        OrgKind::Hoogerbrugge,
        OrgKind::Infinite,
        OrgKind::BtbXUniform,
        OrgKind::BtbXNoXc,
    ];

    /// Short stable identifier used in file names and CSV columns.
    pub const fn id(self) -> &'static str {
        match self {
            OrgKind::Conv => "conv",
            OrgKind::Pdede => "pdede",
            OrgKind::BtbX => "btbx",
            OrgKind::RBtb => "rbtb",
            OrgKind::Hoogerbrugge => "hoogerbrugge",
            OrgKind::Infinite => "infinite",
            OrgKind::BtbXUniform => "btbx-uniform",
            OrgKind::BtbXNoXc => "btbx-noxc",
        }
    }

    /// Display label matching the paper's figure legends where applicable.
    pub const fn label(self) -> &'static str {
        match self {
            OrgKind::Conv => "Conv-BTB",
            OrgKind::Pdede => "PDede",
            OrgKind::BtbX => "BTB-X",
            OrgKind::RBtb => "R-BTB",
            OrgKind::Hoogerbrugge => "Mixed-entry BTB",
            OrgKind::Infinite => "Infinite BTB",
            OrgKind::BtbXUniform => "BTB-X (uniform ways)",
            OrgKind::BtbXNoXc => "BTB-X (no BTB-XC)",
        }
    }
}

impl std::fmt::Display for OrgKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Build an organization that fits `budget_bits` of storage, sized per the
/// paper's Section VI-B conventions.
///
/// For the BTB-X variants the budget is interpreted the way the paper
/// defines the tiers — the entry count whose Table III storage equals the
/// budget — so `build(BtbX, BudgetPoint::Kb14_5.bits(arch), arch)` yields
/// exactly 4096 + 64 entries.
///
/// # Panics
///
/// Panics if the budget is too small to hold the smallest legal instance
/// of the requested organization (one 8-way set).
pub fn build(kind: OrgKind, budget_bits: u64, arch: Arch) -> Box<dyn Btb> {
    match kind {
        OrgKind::Conv => Box::new(ConvBtb::with_budget_bits(budget_bits, arch)),
        OrgKind::Pdede => Box::new(PdedeBtb::with_budget_bits(budget_bits, arch)),
        OrgKind::BtbX => Box::new(BtbX::with_entries(
            btbx_entries_for_budget(budget_bits, arch),
            arch,
        )),
        OrgKind::RBtb => Box::new(RBtb::with_budget_bits(budget_bits, arch)),
        OrgKind::Hoogerbrugge => {
            Box::new(crate::hooger::MixedBtb::with_budget_bits(budget_bits, arch))
        }
        OrgKind::Infinite => Box::new(crate::infinite::InfiniteBtb::new()),
        OrgKind::BtbXUniform => {
            // Same *entry count* as the paper BTB-X at this budget would
            // have, so the bench shows the storage inflation; callers that
            // want equal-storage comparisons should shrink entries instead.
            let entries = btbx_entries_for_budget(budget_bits, arch);
            Box::new(BtbX::with_config(entries, arch, BtbXConfig::uniform(arch)))
        }
        OrgKind::BtbXNoXc => {
            let entries = btbx_entries_for_budget(budget_bits, arch);
            let config = BtbXConfig {
                with_overflow: false,
                ..BtbXConfig::paper(arch)
            };
            Box::new(BtbX::with_config(entries, arch, config))
        }
    }
}

/// Largest BTB-X entry count (multiple of 8) whose Table III storage fits
/// in `budget_bits`.
pub fn btbx_entries_for_budget(budget_bits: u64, arch: Arch) -> usize {
    let mut entries = 8usize;
    while btbx_total_bits(entries + 8, arch) <= budget_bits {
        entries += 8;
    }
    assert!(
        btbx_total_bits(entries, arch) <= budget_bits,
        "budget {budget_bits} too small for one BTB-X set"
    );
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::BudgetPoint;
    use crate::types::{BranchClass, BranchEvent};

    #[test]
    fn budget_tiers_reproduce_exact_entry_counts() {
        for bp in BudgetPoint::ALL {
            let entries = btbx_entries_for_budget(bp.bits(Arch::Arm64), Arch::Arm64);
            assert_eq!(entries, bp.btbx_entries(), "{bp}");
        }
    }

    #[test]
    fn all_organizations_fit_their_budget() {
        let bits = BudgetPoint::Kb14_5.bits(Arch::Arm64);
        for kind in [OrgKind::Conv, OrgKind::Pdede, OrgKind::BtbX, OrgKind::RBtb] {
            let btb = build(kind, bits, Arch::Arm64);
            assert!(
                btb.storage().total_bits <= bits,
                "{kind} exceeds budget: {} > {bits}",
                btb.storage().total_bits
            );
        }
    }

    #[test]
    fn built_instances_function() {
        let bits = BudgetPoint::Kb0_9.bits(Arch::Arm64);
        for kind in OrgKind::ALL {
            let mut btb = build(kind, bits, Arch::Arm64);
            let ev = BranchEvent::taken(0x1000, 0x1080, BranchClass::CondDirect);
            btb.update(&ev);
            assert!(btb.lookup(0x1000).is_some(), "{kind} lost a short branch");
        }
    }

    #[test]
    fn all_enumerates_every_variant() {
        // An exhaustive match: adding an OrgKind variant fails to compile
        // here until OrgKind::ALL (checked below) is extended with it.
        fn armed(kind: OrgKind) {
            match kind {
                OrgKind::Conv
                | OrgKind::Pdede
                | OrgKind::BtbX
                | OrgKind::RBtb
                | OrgKind::Hoogerbrugge
                | OrgKind::Infinite
                | OrgKind::BtbXUniform
                | OrgKind::BtbXNoXc => {}
            }
        }
        let mut ids: Vec<_> = OrgKind::ALL.iter().map(|o| o.id()).collect();
        OrgKind::ALL.into_iter().for_each(armed);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), OrgKind::ALL.len(), "ALL must not repeat");
    }

    #[test]
    fn capacity_ordering_matches_table_iv() {
        // At every tier: BTB-X > PDede > Conv in trackable branches.
        for bp in BudgetPoint::ALL {
            let bits = bp.bits(Arch::Arm64);
            let x = build(OrgKind::BtbX, bits, Arch::Arm64).branch_capacity();
            let p = build(OrgKind::Pdede, bits, Arch::Arm64).branch_capacity();
            let c = build(OrgKind::Conv, bits, Arch::Arm64).branch_capacity();
            assert!(x > p && p > c, "{bp}: x={x} p={p} c={c}");
        }
    }

    #[test]
    fn ids_and_labels_are_stable() {
        assert_eq!(OrgKind::BtbX.id(), "btbx");
        assert_eq!(OrgKind::Pdede.label(), "PDede");
        assert_eq!(OrgKind::PAPER_EVAL.len(), 3);
    }
}
