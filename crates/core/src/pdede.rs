//! PDede: the state-of-the-art partitioned, deduplicated, delta BTB
//! (Soundararajan et al., MICRO 2021; paper Section IV-B, Figures 6 and 7).
//!
//! PDede splits the target address into region (bits 47..28), page
//! (bits 27..12) and page offset (bits 11..0). The **Main-BTB** stores the
//! page offset plus *pointers* into a **Page-BTB** (16-bit page numbers,
//! stored once per page) and a **Region-BTB** (20-bit region numbers,
//! stored once per region). Half of the ways in each Main-BTB set are
//! reserved for *same-page* branches — branch and target on the same (or
//! delta-adjacent) page — which need no pointers at all because the page
//! and region come from the branch PC.
//!
//! The organization's weaknesses, which BTB-X avoids, are modelled
//! faithfully:
//!
//! * **indirection** — different-page hits need a second cycle to read the
//!   Page-/Region-BTB ([`crate::btb::HitSite::Indirect`]);
//! * **associative searches** — allocations must search the Page-BTB set
//!   (16 entries) and the Region-BTB (4 entries, fully associative), which
//!   the Table V energy analysis charges;
//! * **conflict evictions** — evicting a page/region entry invalidates
//!   every Main-BTB entry pointing at it.

use crate::btb::{Btb, BtbHit, HitSite};
use crate::offset::{pdede_page_bits, region_number};
use crate::replacement::{eligibility_mask, LruSet};
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::stats::{AccessCounts, StorageReport};
use crate::tag::{partial_tag, set_index};
use crate::types::{Arch, BranchEvent, BtbBranchType, TargetSource};

const WAYS: usize = 8;
/// Ways `0..SAME_PAGE_WAYS` hold only same-page entries (Figure 7).
const SAME_PAGE_WAYS: usize = 4;
/// Page-BTB associativity: PDede restricts a page number to 16 locations
/// (Section IV-C).
const PAGE_WAYS: usize = 16;
/// Region-BTB entries, fixed across all storage budgets (Section VI-B).
pub const REGION_ENTRIES: usize = 4;

/// Bits of a same-page Main-BTB entry (Figure 7): valid 1 + tag 12 +
/// type 2 + rep 3 + offset 10 + delta 1.
pub const SAME_PAGE_ENTRY_BITS: u64 = 29;
/// Bits of a different-page entry excluding the Page-BTB pointer:
/// valid 1 + tag 12 + type 2 + rep 3 + offset 10 + region pointer 2.
pub const DIFF_PAGE_BASE_BITS: u64 = 30;
/// Bits per Page-BTB entry: 16-bit page number + 4-bit replacement.
pub const PAGE_ENTRY_BITS: u64 = 20;
/// Total Region-BTB bits: 4 × (20-bit region + 2-bit replacement).
pub const REGION_BITS: u64 = (REGION_ENTRIES as u64) * 22;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MainEntry {
    Invalid,
    SamePage {
        tag: u16,
        btype: BtbBranchType,
        /// Page offset with alignment bits dropped (10 bits on Arm64).
        offset: u16,
        /// Target page = PC page + delta (0 or 1).
        delta: bool,
    },
    DiffPage {
        tag: u16,
        btype: BtbBranchType,
        offset: u16,
        /// Global Page-BTB entry index.
        page_ptr: u32,
        /// Region-BTB entry index.
        region_ptr: u8,
    },
}

impl MainEntry {
    fn tag(&self) -> Option<u16> {
        match self {
            MainEntry::Invalid => None,
            MainEntry::SamePage { tag, .. } | MainEntry::DiffPage { tag, .. } => Some(*tag),
        }
    }

    fn save(&self, w: &mut SnapWriter) {
        match *self {
            MainEntry::Invalid => w.u8(0),
            MainEntry::SamePage {
                tag,
                btype,
                offset,
                delta,
            } => {
                w.u8(1);
                w.u16(tag);
                w.u8(btype.snap_code());
                w.u16(offset);
                w.bool(delta);
            }
            MainEntry::DiffPage {
                tag,
                btype,
                offset,
                page_ptr,
                region_ptr,
            } => {
                w.u8(2);
                w.u16(tag);
                w.u8(btype.snap_code());
                w.u16(offset);
                w.u32(page_ptr);
                w.u8(region_ptr);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>, page_entries: usize) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => MainEntry::Invalid,
            1 => MainEntry::SamePage {
                tag: r.u16()?,
                btype: BtbBranchType::from_snap_code(r.u8()?)?,
                offset: r.u16()?,
                delta: r.bool()?,
            },
            2 => {
                let tag = r.u16()?;
                let btype = BtbBranchType::from_snap_code(r.u8()?)?;
                let offset = r.u16()?;
                let page_ptr = r.u32()?;
                let region_ptr = r.u8()?;
                if page_ptr as usize >= page_entries || region_ptr as usize >= REGION_ENTRIES {
                    return Err(SnapError::Corrupt("pdede pointer out of range"));
                }
                MainEntry::DiffPage {
                    tag,
                    btype,
                    offset,
                    page_ptr,
                    region_ptr,
                }
            }
            _ => return Err(SnapError::Corrupt("pdede entry discriminant")),
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    valid: bool,
    page: u16,
}

#[derive(Debug, Clone, Copy)]
struct RegionEntry {
    valid: bool,
    region: u32,
}

/// The PDede BTB organization (Multi-Entry-Size variant, the paper's
/// best-performing configuration).
#[derive(Debug, Clone)]
pub struct PdedeBtb {
    arch: Arch,
    sets: usize,
    main: Vec<MainEntry>,
    main_lru: Vec<LruSet>,
    page_sets: usize,
    pages: Vec<PageEntry>,
    page_lru: Vec<LruSet>,
    regions: [RegionEntry; REGION_ENTRIES],
    region_lru: LruSet,
    counts: AccessCounts,
    page_ptr_bits: u32,
}

/// Sizing derived from a total storage budget, following the paper's
/// Table IV budget split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdedeSizing {
    /// Main-BTB sets (8 ways each).
    pub main_sets: usize,
    /// Page-BTB entries (power of two; 16-way set associative).
    pub page_entries: usize,
    /// Width of a Page-BTB pointer in Main-BTB entries.
    pub page_ptr_bits: u32,
}

impl PdedeSizing {
    /// Split `budget_bits` the way the paper does (Section VI-B): the
    /// Page-BTB gets 32 entries per 0.9 KB of total budget (doubling with
    /// the budget), the Region-BTB is a fixed 88 bits, and the Main-BTB
    /// receives the remainder.
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small to hold one Main-BTB set.
    pub fn for_budget(budget_bits: u64) -> Self {
        // 32 Page-BTB entries at the 7424-bit (0.9 KB) tier, scaling
        // linearly, rounded down to a power of two, floor 16.
        let raw = (32.0 * budget_bits as f64 / 7424.0).max(16.0);
        let page_entries = 1usize << (raw.log2().floor() as u32);
        let page_ptr_bits = page_entries.trailing_zeros();
        let main_bits = budget_bits
            .checked_sub(page_entries as u64 * PAGE_ENTRY_BITS + REGION_BITS)
            .expect("budget too small for PDede page/region partitions");
        let set_bits = Self::set_bits(page_ptr_bits);
        let main_sets = (main_bits / set_bits) as usize;
        assert!(main_sets > 0, "budget too small for one PDede set");
        PdedeSizing {
            main_sets,
            page_entries,
            page_ptr_bits,
        }
    }

    /// Bits per Main-BTB set: 4 same-page entries + 4 different-page
    /// entries whose size depends on the Page-BTB pointer width.
    pub fn set_bits(page_ptr_bits: u32) -> u64 {
        SAME_PAGE_WAYS as u64 * SAME_PAGE_ENTRY_BITS
            + (WAYS - SAME_PAGE_WAYS) as u64 * (DIFF_PAGE_BASE_BITS + page_ptr_bits as u64)
    }

    /// Average Main-BTB entry size (the paper's Table IV "Entry Size"
    /// column): mean of the same-page and different-page entry sizes.
    pub fn avg_entry_bits(page_ptr_bits: u32) -> f64 {
        (SAME_PAGE_ENTRY_BITS as f64 + (DIFF_PAGE_BASE_BITS + page_ptr_bits as u64) as f64) / 2.0
    }
}

impl PdedeBtb {
    /// Build a PDede instance for a total storage budget, using the
    /// paper's budget split (Table IV).
    pub fn with_budget_bits(budget_bits: u64, arch: Arch) -> Self {
        Self::with_sizing(PdedeSizing::for_budget(budget_bits), arch)
    }

    /// Build from an explicit sizing.
    ///
    /// # Panics
    ///
    /// Panics if `page_entries` is zero or not a power of two.
    pub fn with_sizing(sizing: PdedeSizing, arch: Arch) -> Self {
        assert!(
            sizing.page_entries.is_power_of_two(),
            "page entries must be a power of two"
        );
        let page_sets = (sizing.page_entries / PAGE_WAYS).max(1);
        let page_ways = sizing.page_entries.min(PAGE_WAYS);
        PdedeBtb {
            arch,
            sets: sizing.main_sets,
            main: vec![MainEntry::Invalid; sizing.main_sets * WAYS],
            main_lru: vec![LruSet::new(WAYS); sizing.main_sets],
            page_sets,
            pages: vec![
                PageEntry {
                    valid: false,
                    page: 0
                };
                page_sets * page_ways
            ],
            page_lru: vec![LruSet::new(page_ways); page_sets],
            regions: [RegionEntry {
                valid: false,
                region: 0,
            }; REGION_ENTRIES],
            region_lru: LruSet::new(REGION_ENTRIES),
            counts: AccessCounts::default(),
            page_ptr_bits: sizing.page_ptr_bits,
        }
    }

    /// Number of Main-BTB sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of Main-BTB entries (branches trackable at runtime).
    pub fn main_entries(&self) -> usize {
        self.sets * WAYS
    }

    /// Number of Page-BTB entries.
    pub fn page_entries(&self) -> usize {
        self.pages.len()
    }

    fn page_ways(&self) -> usize {
        self.pages.len() / self.page_sets
    }

    /// Width of the stored page-offset field: 12 bits minus the
    /// architecture's alignment bits (10 on Arm64 — Figure 7).
    pub fn offset_bits(&self) -> u32 {
        12 - self.arch.align_bits()
    }

    fn split_offset(&self, target: u64) -> u16 {
        ((target & 0xfff) >> self.arch.align_bits()) as u16
    }

    fn find_way(&self, set: usize, tag: u16) -> Option<usize> {
        let base = set * WAYS;
        (0..WAYS).find(|&w| self.main[base + w].tag() == Some(tag))
    }

    /// Locate or allocate the Region-BTB entry for `region`; returns its
    /// index. Evicting a live region invalidates dependent Main-BTB
    /// entries.
    fn ensure_region(&mut self, region: u32) -> u8 {
        self.counts.region_searches += 1;
        for (i, e) in self.regions.iter().enumerate() {
            if e.valid && e.region == region {
                self.region_lru.touch(i);
                return i as u8;
            }
        }
        let victim = (0..REGION_ENTRIES)
            .find(|&i| !self.regions[i].valid)
            .unwrap_or_else(|| self.region_lru.victim());
        if self.regions[victim].valid {
            for e in &mut self.main {
                if matches!(e, MainEntry::DiffPage { region_ptr, .. } if *region_ptr == victim as u8)
                {
                    *e = MainEntry::Invalid;
                }
            }
        }
        self.regions[victim] = RegionEntry {
            valid: true,
            region,
        };
        self.region_lru.touch(victim);
        self.counts.region_writes += 1;
        victim as u8
    }

    /// Locate or allocate the Page-BTB entry for `page`; returns its
    /// global index. Evicting a live page invalidates dependent Main-BTB
    /// entries (the conflict-miss cost of restricting page locations,
    /// Section IV-C).
    fn ensure_page(&mut self, page: u16) -> u32 {
        self.counts.page_searches += 1;
        let ways = self.page_ways();
        let set = page as usize % self.page_sets;
        let base = set * ways;
        for w in 0..ways {
            let e = self.pages[base + w];
            if e.valid && e.page == page {
                self.page_lru[set].touch(w);
                return (base + w) as u32;
            }
        }
        let way = (0..ways)
            .find(|&w| !self.pages[base + w].valid)
            .unwrap_or_else(|| self.page_lru[set].victim());
        let global = (base + way) as u32;
        if self.pages[base + way].valid {
            for e in &mut self.main {
                if matches!(e, MainEntry::DiffPage { page_ptr, .. } if *page_ptr == global) {
                    *e = MainEntry::Invalid;
                }
            }
        }
        self.pages[base + way] = PageEntry { valid: true, page };
        self.page_lru[set].touch(way);
        self.counts.page_writes += 1;
        global
    }

    fn hit_for(&self, pc: u64, entry: MainEntry) -> BtbHit {
        match entry {
            MainEntry::Invalid => unreachable!("hit_for on invalid entry"),
            MainEntry::SamePage {
                btype,
                offset,
                delta,
                ..
            } => {
                let target = if btype == BtbBranchType::Return {
                    TargetSource::ReturnStack
                } else {
                    let page = (pc >> 12) + delta as u64;
                    TargetSource::Address(
                        (page << 12) | ((offset as u64) << self.arch.align_bits()),
                    )
                };
                BtbHit {
                    btype,
                    target,
                    site: HitSite::Main,
                }
            }
            MainEntry::DiffPage {
                btype,
                offset,
                page_ptr,
                region_ptr,
                ..
            } => {
                let page = self.pages[page_ptr as usize].page as u64;
                let region = self.regions[region_ptr as usize].region as u64;
                let target =
                    (region << 28) | (page << 12) | ((offset as u64) << self.arch.align_bits());
                BtbHit {
                    btype,
                    target: TargetSource::Address(target),
                    site: HitSite::Indirect,
                }
            }
        }
    }

    /// Same-page classification: target page equals the PC page (`delta =
    /// false`) or the next page (`delta = true`).
    fn classify(pc: u64, target: u64) -> Option<bool> {
        let pp = pc >> 12;
        let tp = target >> 12;
        if tp == pp {
            Some(false)
        } else if tp == pp + 1 {
            Some(true)
        } else {
            None
        }
    }
}

impl Btb for PdedeBtb {
    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        self.counts.reads += 1;
        let set = set_index(pc, self.sets, self.arch);
        let tag = partial_tag(pc, self.sets, self.arch);
        let way = self.find_way(set, tag)?;
        self.counts.read_hits += 1;
        self.main_lru[set].touch(way);
        Some(self.hit_for(pc, self.main[set * WAYS + way]))
    }

    #[inline]
    fn note_target_consumed(&mut self, hit: &BtbHit) {
        // The second access cycle: Page- and Region-BTB reads happen only
        // when a different-page target is actually used (Section VI-E).
        if hit.site == HitSite::Indirect {
            self.counts.page_reads += 1;
            self.counts.region_reads += 1;
        }
    }

    #[inline]
    fn update(&mut self, event: &BranchEvent) {
        if !event.taken {
            return;
        }
        let pc = event.pc;
        let btype = event.class.btb_type();
        let offset = self.split_offset(event.target);
        // Returns never consume their stored target, so they are stored as
        // same-page entries with a zero offset.
        let same = if btype == BtbBranchType::Return {
            Some(false)
        } else {
            Self::classify(pc, event.target)
        };
        let set = set_index(pc, self.sets, self.arch);
        let tag = partial_tag(pc, self.sets, self.arch);
        let base = set * WAYS;

        // Refresh an existing entry when possible.
        if let Some(way) = self.find_way(set, tag) {
            let can_hold_diff = way >= SAME_PAGE_WAYS;
            match same {
                Some(delta) => {
                    let new = MainEntry::SamePage {
                        tag,
                        btype,
                        offset,
                        delta,
                    };
                    if self.main[base + way] != new {
                        self.main[base + way] = new;
                        self.counts.writes += 1;
                    }
                    self.main_lru[set].touch(way);
                    return;
                }
                None if can_hold_diff => {
                    let region = region_number(event.target) as u32;
                    let page = pdede_page_bits(event.target) as u16;
                    let region_ptr = self.ensure_region(region);
                    let page_ptr = self.ensure_page(page);
                    let new = MainEntry::DiffPage {
                        tag,
                        btype,
                        offset,
                        page_ptr,
                        region_ptr,
                    };
                    // ensure_page/ensure_region may have invalidated this
                    // very entry; rewrite unconditionally when different.
                    if self.main[base + way] != new {
                        self.main[base + way] = new;
                        self.counts.writes += 1;
                    }
                    self.main_lru[set].touch(way);
                    return;
                }
                None => {
                    // Same-page-only way can no longer hold the branch.
                    self.main[base + way] = MainEntry::Invalid;
                }
            }
        }

        // Fresh allocation.
        let entry = match same {
            Some(delta) => MainEntry::SamePage {
                tag,
                btype,
                offset,
                delta,
            },
            None => {
                let region = region_number(event.target) as u32;
                let page = pdede_page_bits(event.target) as u16;
                let region_ptr = self.ensure_region(region);
                let page_ptr = self.ensure_page(page);
                MainEntry::DiffPage {
                    tag,
                    btype,
                    offset,
                    page_ptr,
                    region_ptr,
                }
            }
        };
        let eligible = match same {
            Some(_) => eligibility_mask(WAYS, |_| true),
            None => eligibility_mask(WAYS, |w| w >= SAME_PAGE_WAYS),
        };
        let way = (0..WAYS)
            .find(|&w| eligible & (1 << w) != 0 && self.main[base + w] == MainEntry::Invalid)
            .unwrap_or_else(|| self.main_lru[set].victim_among(eligible));
        self.main[base + way] = entry;
        self.main_lru[set].touch(way);
        self.counts.writes += 1;
    }

    fn storage(&self) -> StorageReport {
        let set_bits = PdedeSizing::set_bits(self.page_ptr_bits);
        let main_bits = self.sets as u64 * set_bits;
        let page_bits = self.pages.len() as u64 * PAGE_ENTRY_BITS;
        StorageReport {
            name: "pdede".into(),
            total_bits: main_bits + page_bits + REGION_BITS,
            branch_capacity: self.main_entries() as u64,
            partitions: vec![
                ("main-btb".into(), main_bits),
                ("page-btb".into(), page_bits),
                ("region-btb".into(), REGION_BITS),
            ],
        }
    }

    fn counts(&self) -> AccessCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts.reset();
    }

    fn clear(&mut self) {
        self.main.fill(MainEntry::Invalid);
        for l in &mut self.main_lru {
            *l = LruSet::new(WAYS);
        }
        for p in &mut self.pages {
            p.valid = false;
        }
        let ways = self.page_ways();
        for l in &mut self.page_lru {
            *l = LruSet::new(ways);
        }
        for r in &mut self.regions {
            r.valid = false;
        }
        self.region_lru = LruSet::new(REGION_ENTRIES);
    }

    fn name(&self) -> &'static str {
        "pdede"
    }
}

impl Snapshot for PdedeBtb {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.sets as u64);
        w.u64(self.pages.len() as u64);
        for e in &self.main {
            e.save(w);
        }
        for l in &self.main_lru {
            l.save_state(w);
        }
        for p in &self.pages {
            w.bool(p.valid);
            w.u16(p.page);
        }
        for l in &self.page_lru {
            l.save_state(w);
        }
        for e in &self.regions {
            w.bool(e.valid);
            w.u32(e.region);
        }
        self.region_lru.save_state(w);
        self.counts.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.sets as u64, "pdede main set count")?;
        r.expect_u64(self.pages.len() as u64, "pdede page entry count")?;
        let page_entries = self.pages.len();
        for e in &mut self.main {
            *e = MainEntry::load(r, page_entries)?;
        }
        for l in &mut self.main_lru {
            l.restore_state(r)?;
        }
        for p in &mut self.pages {
            *p = PageEntry {
                valid: r.bool()?,
                page: r.u16()?,
            };
        }
        for l in &mut self.page_lru {
            l.restore_state(r)?;
        }
        for e in &mut self.regions {
            *e = RegionEntry {
                valid: r.bool()?,
                region: r.u32()?,
            };
        }
        self.region_lru.restore_state(r)?;
        self.counts.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BranchClass;

    fn btb() -> PdedeBtb {
        PdedeBtb::with_budget_bits(7424, Arch::Arm64) // the 0.9 KB tier
    }

    #[test]
    fn sizing_matches_table_iv_tiers() {
        // (budget bits, page entries, avg entry bits, ~branches)
        let tiers = [
            (7424u64, 32usize, 32.0, 210u64),
            (14848, 64, 32.5, 415),
            (29696, 128, 33.0, 820),
            (59392, 256, 33.5, 1617),
            (118784, 512, 34.0, 3190),
            (237568, 1024, 34.5, 6292),
            (475136, 2048, 35.0, 12405),
        ];
        for (bits, pages, avg, branches) in tiers {
            let s = PdedeSizing::for_budget(bits);
            assert_eq!(s.page_entries, pages, "budget {bits}");
            assert_eq!(PdedeSizing::avg_entry_bits(s.page_ptr_bits), avg);
            // Runtime entries (sets × 8, rounded down to whole sets) land
            // within 2.5 % of the paper's idealized `main_bits / avg_entry`
            // count.
            let runtime = (s.main_sets * WAYS) as f64;
            let ideal = branches as f64;
            assert!(
                (runtime - ideal).abs() / ideal < 0.025,
                "budget {bits}: runtime {runtime} vs paper {ideal}"
            );
        }
    }

    #[test]
    fn same_page_round_trip() {
        let mut b = btb();
        let pc = 0x0000_7f00_1000u64;
        let target = pc + 0x40;
        b.update(&BranchEvent::taken(pc, target, BranchClass::CondDirect));
        let hit = b.lookup(pc).expect("hit");
        assert_eq!(hit.target, TargetSource::Address(target));
        assert_eq!(hit.site, HitSite::Main, "same-page: single cycle");
    }

    #[test]
    fn next_page_uses_delta_bit() {
        let mut b = btb();
        let pc = 0x0000_7f00_1ff0u64;
        let target = 0x0000_7f00_2010u64; // next page
        b.update(&BranchEvent::taken(pc, target, BranchClass::CondDirect));
        let hit = b.lookup(pc).expect("hit");
        assert_eq!(hit.target, TargetSource::Address(target));
        assert_eq!(hit.site, HitSite::Main, "delta branches avoid indirection");
    }

    #[test]
    fn different_page_round_trip_pays_indirection() {
        let mut b = btb();
        let pc = 0x0000_7f00_1000u64;
        let target = 0x0000_7f09_0040u64; // same region, different page
        b.update(&BranchEvent::taken(pc, target, BranchClass::CallDirect));
        let hit = b.lookup(pc).expect("hit");
        assert_eq!(hit.target, TargetSource::Address(target));
        assert_eq!(hit.site, HitSite::Indirect);
        assert_eq!(hit.extra_latency(), 1);
    }

    #[test]
    fn cross_region_round_trip() {
        let mut b = btb();
        let pc = 0x0000_0001_0000u64;
        let target = 0x0000_7f00_0040u64;
        b.update(&BranchEvent::taken(pc, target, BranchClass::CallDirect));
        assert_eq!(b.lookup(pc).unwrap().target, TargetSource::Address(target));
    }

    #[test]
    fn page_numbers_are_deduplicated() {
        let mut b = btb();
        let t1 = 0x0000_7f09_0040u64;
        let t2 = 0x0000_7f09_0100u64; // same page as t1
        b.update(&BranchEvent::taken(0x1000, t1, BranchClass::CallDirect));
        b.update(&BranchEvent::taken(0x2000, t2, BranchClass::CallDirect));
        assert_eq!(b.counts().page_writes, 1, "one page entry for both");
        assert_eq!(b.counts().page_searches, 2);
    }

    #[test]
    fn region_numbers_are_deduplicated() {
        let mut b = btb();
        b.update(&BranchEvent::taken(
            0x1000,
            0x7f09_0040,
            BranchClass::CallDirect,
        ));
        b.update(&BranchEvent::taken(
            0x2000,
            0x7f11_0040,
            BranchClass::CallDirect,
        ));
        assert_eq!(b.counts().region_writes, 1, "same region stored once");
    }

    #[test]
    fn page_eviction_invalidates_dependents() {
        // Tiny PDede: 1 main set, 16 page entries in one set.
        let s = PdedeSizing {
            main_sets: 1,
            page_entries: 16,
            page_ptr_bits: 4,
        };
        let mut b = PdedeBtb::with_sizing(s, Arch::Arm64);
        let pc = 0x1000u64;
        b.update(&BranchEvent::taken(
            pc,
            0x7f00_0040,
            BranchClass::CallDirect,
        ));
        assert!(b.lookup(pc).is_some());
        // Thrash the Page-BTB with 16 more distinct pages.
        for i in 0..16u64 {
            b.update(&BranchEvent::taken(
                0x2000 + i * 4,
                0x7f10_0040 + (i << 12),
                BranchClass::CallDirect,
            ));
        }
        // The original page entry has been evicted; the main entry must not
        // return a stale pointer. (It may be invalid or re-allocated.)
        match b.lookup(pc) {
            None => {}
            Some(hit) => {
                assert_ne!(
                    hit.target,
                    TargetSource::Address(0x7f00_0040),
                    "stale page pointer returned after eviction"
                );
            }
        }
    }

    #[test]
    fn region_eviction_invalidates_dependents() {
        let mut b = btb();
        let pc = 0x1000u64;
        b.update(&BranchEvent::taken(
            pc,
            0x0f00_0040,
            BranchClass::CallDirect,
        ));
        // 4 more regions evict the first (Region-BTB holds 4).
        for i in 0..4u64 {
            b.update(&BranchEvent::taken(
                0x2000 + i * 4,
                0x1_0000_0040 + (i << 28),
                BranchClass::CallDirect,
            ));
        }
        match b.lookup(pc) {
            None => {}
            Some(hit) => assert_ne!(hit.target, TargetSource::Address(0x0f00_0040)),
        }
    }

    #[test]
    fn diff_page_confined_to_shared_ways() {
        // Fill one set with 8 different-page branches: only 4 can stay.
        let s = PdedeSizing {
            main_sets: 1,
            page_entries: 16,
            page_ptr_bits: 4,
        };
        let mut b = PdedeBtb::with_sizing(s, Arch::Arm64);
        for i in 0..8u64 {
            b.update(&BranchEvent::taken(
                0x1000 + i * 4,
                0x7f00_0040, // one shared page target
                BranchClass::CallDirect,
            ));
        }
        let alive = (0..8u64)
            .filter(|i| b.lookup(0x1000 + i * 4).is_some())
            .count();
        assert_eq!(alive, 4, "different-page branches use only 4 of 8 ways");
    }

    #[test]
    fn same_page_can_use_all_ways() {
        let s = PdedeSizing {
            main_sets: 1,
            page_entries: 16,
            page_ptr_bits: 4,
        };
        let mut b = PdedeBtb::with_sizing(s, Arch::Arm64);
        for i in 0..8u64 {
            let pc = 0x1000 + i * 4;
            b.update(&BranchEvent::taken(pc, pc + 0x40, BranchClass::CondDirect));
        }
        let alive = (0..8u64)
            .filter(|i| b.lookup(0x1000 + i * 4).is_some())
            .count();
        assert_eq!(alive, 8);
    }

    #[test]
    fn returns_are_same_page_entries() {
        let mut b = btb();
        b.update(&BranchEvent::taken(
            0x1000,
            0x7fff_0000,
            BranchClass::Return,
        ));
        let hit = b.lookup(0x1000).expect("hit");
        assert_eq!(hit.target, TargetSource::ReturnStack);
        assert_eq!(hit.site, HitSite::Main, "returns never pay indirection");
    }

    #[test]
    fn page_reads_counted_only_when_consumed() {
        let mut b = btb();
        let pc = 0x1000u64;
        b.update(&BranchEvent::taken(
            pc,
            0x7f00_0040,
            BranchClass::CallDirect,
        ));
        let hit = b.lookup(pc).unwrap();
        assert_eq!(b.counts().page_reads, 0);
        b.note_target_consumed(&hit);
        assert_eq!(b.counts().page_reads, 1);
        assert_eq!(b.counts().region_reads, 1);
    }

    #[test]
    fn storage_report_partitions() {
        let b = btb();
        let r = b.storage();
        assert_eq!(r.partitions.len(), 3);
        assert_eq!(r.partition_sum(), r.total_bits);
        assert!(r.total_bits <= 7424);
    }
}
