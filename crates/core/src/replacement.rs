//! Replacement policies for set-associative BTB partitions.
//!
//! All organizations in the paper use true LRU within a set; BTB-X uses a
//! *modified* LRU that restricts the victim search to the ways whose offset
//! field is wide enough for the incoming branch while leaving recency
//! bookkeeping untouched (Section V-B). [`LruSet`] provides the shared
//! recency machinery; the modification lives in the victim-selection
//! methods that accept an eligibility mask.

/// True-LRU recency state for one set of up to 64 ways.
///
/// Each way holds an age in `0..ways`; age `0` is most-recently used and
/// `ways - 1` least-recently used. The encoding matches the `rep_policy`
/// counter bits the paper charges to each entry (3 bits for 8 ways).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruSet {
    age: Vec<u8>,
}

impl LruSet {
    /// A set with `ways` ways, initially aged oldest-first so empty ways
    /// are consumed in way order.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` or `ways > 64`.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0 && ways <= 64, "unsupported associativity {ways}");
        LruSet {
            age: (0..ways as u8).collect(),
        }
    }

    /// Number of ways tracked.
    #[inline]
    pub fn ways(&self) -> usize {
        self.age.len()
    }

    /// Recency age of `way` (0 = MRU).
    #[inline]
    pub fn age(&self, way: usize) -> u8 {
        self.age[way]
    }

    /// Mark `way` as most-recently used, ageing every way that was younger.
    ///
    /// This is the unmodified part of BTB-X's policy: hits and allocations
    /// update recency exactly as baseline LRU does.
    pub fn touch(&mut self, way: usize) {
        let old = self.age[way];
        for a in &mut self.age {
            if *a < old {
                *a += 1;
            }
        }
        self.age[way] = 0;
    }

    /// The least-recently-used way among all ways.
    pub fn victim(&self) -> usize {
        self.victim_among(u64::MAX)
    }

    /// The least-recently-used way among the ways set in `eligible`
    /// (bit `i` = way `i`): BTB-X's modified LRU (Section V-B).
    ///
    /// # Panics
    ///
    /// Panics if `eligible` selects no way.
    pub fn victim_among(&self, eligible: u64) -> usize {
        let mut best: Option<(usize, u8)> = None;
        for (way, &age) in self.age.iter().enumerate() {
            if eligible & (1 << way) == 0 {
                continue;
            }
            match best {
                Some((_, b)) if b >= age => {}
                _ => best = Some((way, age)),
            }
        }
        best.expect("eligibility mask must select at least one way")
            .0
    }
}

impl crate::snap::Snapshot for LruSet {
    fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.age.len() as u64);
        for &a in &self.age {
            w.u8(a);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        r.expect_u64(self.age.len() as u64, "lru way count")?;
        let ways = self.age.len();
        let mut seen = 0u64;
        for a in &mut self.age {
            let age = r.u8()?;
            if age as usize >= ways || seen & (1 << age) != 0 {
                return Err(crate::snap::SnapError::Corrupt(
                    "lru ages not a permutation",
                ));
            }
            seen |= 1 << age;
            *a = age;
        }
        Ok(())
    }
}

/// Build an eligibility mask for `ways` ways from a predicate.
pub fn eligibility_mask(ways: usize, mut eligible: impl FnMut(usize) -> bool) -> u64 {
    let mut mask = 0u64;
    for way in 0..ways {
        if eligible(way) {
            mask |= 1 << way;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_evicts_way_order() {
        let s = LruSet::new(8);
        // Way 7 starts oldest.
        assert_eq!(s.victim(), 7);
    }

    #[test]
    fn touch_moves_to_mru() {
        let mut s = LruSet::new(4);
        s.touch(2);
        assert_eq!(s.age(2), 0);
        assert_ne!(s.victim(), 2);
    }

    #[test]
    fn full_rotation_is_true_lru() {
        let mut s = LruSet::new(4);
        for w in [0usize, 1, 2, 3, 0, 1] {
            s.touch(w);
        }
        // Access order (old → new): 2, 3, 0, 1 ⇒ victim is 2.
        assert_eq!(s.victim(), 2);
        s.touch(2);
        assert_eq!(s.victim(), 3);
    }

    #[test]
    fn victim_among_respects_mask() {
        let mut s = LruSet::new(8);
        for w in 0..8 {
            s.touch(w); // way 0 is now oldest
        }
        assert_eq!(s.victim(), 0);
        // If only ways 5..8 are eligible, the LRU among them is 5.
        assert_eq!(s.victim_among(0b1110_0000), 5);
    }

    #[test]
    fn touch_never_evicts_mru() {
        let mut s = LruSet::new(8);
        for i in 0..1000usize {
            let w = (i * 7 + 3) % 8;
            s.touch(w);
            assert_ne!(s.victim(), w, "MRU way must never be the victim");
        }
    }

    #[test]
    fn ages_stay_a_permutation() {
        let mut s = LruSet::new(8);
        for i in 0..100usize {
            s.touch((i * 5) % 8);
            let mut seen = [false; 8];
            for w in 0..8 {
                let a = s.age(w) as usize;
                assert!(!seen[a], "duplicate age");
                seen[a] = true;
            }
        }
    }

    #[test]
    fn mask_builder() {
        let m = eligibility_mask(8, |w| w >= 6);
        assert_eq!(m, 0b1100_0000);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn empty_mask_panics() {
        LruSet::new(4).victim_among(0);
    }

    #[test]
    #[should_panic(expected = "unsupported associativity")]
    fn zero_ways_panics() {
        LruSet::new(0);
    }
}
