//! An idealized infinite-capacity BTB — ChampSim's implicit "oracle" BTB
//! that the paper's Section VI-A methodology replaces with realistic
//! organizations.
//!
//! Full-PC tags (no aliasing), unbounded entries, only compulsory misses.
//! Useful for headroom studies: the gap between any real organization and
//! [`InfiniteBtb`] is the remaining front-end opportunity.

use crate::btb::{Btb, BtbHit, HitSite};
use crate::hash::FxHashMap;
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::stats::{AccessCounts, StorageReport};
use crate::types::{BranchEvent, BtbBranchType, TargetSource};

/// The idealized BTB.
///
/// Entries live in a [`FxHashMap`]: the keys are trusted PCs, so the
/// deterministic multiply-xor hasher replaces SipHash — the per-probe
/// hash was the dominant cost of headroom simulations.
#[derive(Debug, Clone, Default)]
pub struct InfiniteBtb {
    entries: FxHashMap<u64, (BtbBranchType, u64)>,
    counts: AccessCounts,
}

impl InfiniteBtb {
    /// An empty ideal BTB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Branches currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no branch has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Btb for InfiniteBtb {
    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        self.counts.reads += 1;
        let &(btype, target) = self.entries.get(&pc)?;
        self.counts.read_hits += 1;
        let target = if btype == BtbBranchType::Return {
            TargetSource::ReturnStack
        } else {
            TargetSource::Address(target)
        };
        Some(BtbHit {
            btype,
            target,
            site: HitSite::Main,
        })
    }

    #[inline]
    fn update(&mut self, event: &BranchEvent) {
        if !event.taken {
            return;
        }
        let new = (event.class.btb_type(), event.target);
        if self.entries.insert(event.pc, new) != Some(new) {
            self.counts.writes += 1;
        }
    }

    fn storage(&self) -> StorageReport {
        StorageReport {
            name: "infinite".into(),
            total_bits: 0, // idealized: unaccounted storage
            branch_capacity: u64::MAX,
            partitions: vec![("ideal".into(), 0)],
        }
    }

    fn counts(&self) -> AccessCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts.reset();
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn name(&self) -> &'static str {
        "infinite"
    }
}

impl Snapshot for InfiniteBtb {
    fn save_state(&self, w: &mut SnapWriter) {
        // The map iterates in hasher order; sort by PC so identical state
        // always produces identical bytes (snapshots are content-hashed).
        let mut pcs: Vec<(&u64, &(BtbBranchType, u64))> = self.entries.iter().collect();
        pcs.sort_unstable_by_key(|(pc, _)| **pc);
        w.u64(pcs.len() as u64);
        for (pc, (btype, target)) in pcs {
            w.u64(*pc);
            w.u8(btype.snap_code());
            w.u64(*target);
        }
        self.counts.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let len = r.u64()? as usize;
        self.entries.clear();
        self.entries.reserve(len);
        for _ in 0..len {
            let pc = r.u64()?;
            let btype = BtbBranchType::from_snap_code(r.u8()?)?;
            let target = r.u64()?;
            if self.entries.insert(pc, (btype, target)).is_some() {
                return Err(SnapError::Corrupt("duplicate infinite-btb pc"));
            }
        }
        self.counts.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BranchClass;

    #[test]
    fn never_evicts() {
        let mut b = InfiniteBtb::new();
        for i in 0..100_000u64 {
            b.update(&BranchEvent::taken(
                i * 4,
                i * 4 + 64,
                BranchClass::CondDirect,
            ));
        }
        assert_eq!(b.len(), 100_000);
        assert!(b.lookup(0).is_some());
        assert!(b.lookup(99_999 * 4).is_some());
    }

    #[test]
    fn no_aliasing_with_full_tags() {
        let mut b = InfiniteBtb::new();
        b.update(&BranchEvent::taken(
            0x1000,
            0x2000,
            BranchClass::UncondDirect,
        ));
        // A PC that would alias under 12-bit partial tags cannot hit here.
        assert!(b.lookup(0x1000 + (1 << 20)).is_none());
    }

    #[test]
    fn only_compulsory_misses() {
        let mut b = InfiniteBtb::new();
        let ev = BranchEvent::taken(0x40, 0x80, BranchClass::CondDirect);
        assert!(b.lookup(0x40).is_none(), "compulsory miss");
        b.update(&ev);
        assert!(b.lookup(0x40).is_some(), "never misses again");
    }
}
