//! Typed, validated construction of BTB organizations: the [`BtbSpec`]
//! builder.
//!
//! [`crate::factory::build`] is the low-level positional entry point; it
//! panics on undersized budgets and forces every caller to thread
//! `(org, bits, arch)` tuples around. `BtbSpec` is the public way to
//! describe *which* BTB to build:
//!
//! ```
//! use btbx_core::spec::BtbSpec;
//! use btbx_core::storage::BudgetPoint;
//! use btbx_core::{Arch, OrgKind};
//!
//! let btb = BtbSpec::of(OrgKind::BtbX)
//!     .at(BudgetPoint::Kb14_5)
//!     .arch(Arch::Arm64)
//!     .build()
//!     .expect("14.5 KB is a valid BTB-X budget");
//! assert!(btb.branch_capacity() > 4000);
//!
//! // Undersized budgets are a typed error, not a panic.
//! let err = BtbSpec::of(OrgKind::BtbX).budget_bits(10).validate().unwrap_err();
//! assert!(err.to_string().contains("too small"));
//! ```
//!
//! Specs are plain serializable data, so experiment definitions (see
//! `btbx-bench`'s `Sweep`) can carry them in JSON.

use crate::factory::{self, OrgKind};
use crate::storage::{btbx_total_bits, BudgetPoint};
use crate::types::Arch;
use crate::Btb;
use serde::{Deserialize, Serialize};

/// A storage budget: either one of the paper's named Table III/IV tiers or
/// a raw bit count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Budget {
    /// A named tier ("0.9KB" … "58KB"); resolves per-architecture.
    Point(BudgetPoint),
    /// An explicit number of storage bits.
    Bits(u64),
}

impl Budget {
    /// Resolve to bits for `arch`.
    pub fn bits(self, arch: Arch) -> u64 {
        match self {
            Budget::Point(bp) => bp.bits(arch),
            Budget::Bits(b) => b,
        }
    }

    /// Short stable label used in cache keys and file names.
    pub fn label(self) -> String {
        match self {
            Budget::Point(bp) => bp.label().to_string(),
            Budget::Bits(b) => format!("{b}b"),
        }
    }
}

impl From<BudgetPoint> for Budget {
    fn from(bp: BudgetPoint) -> Self {
        Budget::Point(bp)
    }
}

impl From<u64> for Budget {
    fn from(bits: u64) -> Self {
        Budget::Bits(bits)
    }
}

impl std::fmt::Display for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Why a [`BtbSpec`] cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The budget cannot hold the smallest legal instance of the
    /// organization (one full set, plus fixed partitions where the design
    /// has them).
    BudgetTooSmall {
        /// Requested organization.
        org: OrgKind,
        /// Architecture the spec resolves for.
        arch: Arch,
        /// Requested budget in bits.
        got_bits: u64,
        /// Smallest buildable budget in bits.
        min_bits: u64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::BudgetTooSmall {
                org,
                arch,
                got_bits,
                min_bits,
            } => write!(
                f,
                "budget of {got_bits} bits is too small for {} on {}: \
                 the smallest legal instance needs {min_bits} bits",
                org.id(),
                arch.name()
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Smallest budget (bits) that yields a legal instance of `org` on `arch`.
///
/// Computed from the organizations' own minimal instances, so it cannot
/// drift from the sizing logic in each module.
pub fn min_budget_bits(org: OrgKind, arch: Arch) -> u64 {
    match org {
        OrgKind::Conv => {
            crate::conv::ConvBtb::with_entries(8, arch)
                .storage()
                .total_bits
        }
        OrgKind::Pdede => {
            // The floor sizing `for_budget` can produce: one Main-BTB set
            // with the 16-entry Page-BTB floor and the fixed Region-BTB.
            let sizing = crate::pdede::PdedeSizing {
                main_sets: 1,
                page_entries: 16,
                page_ptr_bits: 4,
            };
            crate::pdede::PdedeBtb::with_sizing(sizing, arch)
                .storage()
                .total_bits
        }
        OrgKind::BtbX | OrgKind::BtbXUniform | OrgKind::BtbXNoXc => btbx_total_bits(8, arch),
        OrgKind::RBtb => {
            crate::rbtb::RBtb::with_entries(8, arch)
                .storage()
                .total_bits
        }
        OrgKind::Hoogerbrugge => {
            crate::hooger::MixedBtb::with_budget_bits(1, arch)
                .storage()
                .total_bits
        }
        OrgKind::Infinite => 0,
    }
}

/// A complete, validated description of one BTB instance: organization,
/// storage budget and architecture.
///
/// Construct with [`BtbSpec::of`] and refine with the builder methods; the
/// spec itself is inert data (serde-serializable, hashable) and only
/// [`build`](BtbSpec::build) touches real storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BtbSpec {
    /// BTB organization.
    pub org: OrgKind,
    /// Storage budget.
    pub budget: Budget,
    /// Instruction-set flavour (drives offset widths and alignment).
    pub arch: Arch,
}

impl BtbSpec {
    /// Spec for `org` at the paper's default evaluation point: 14.5 KB on
    /// Arm64.
    pub fn of(org: OrgKind) -> Self {
        BtbSpec {
            org,
            budget: Budget::Point(BudgetPoint::Kb14_5),
            arch: Arch::Arm64,
        }
    }

    /// Use a named budget tier.
    pub fn at(mut self, point: BudgetPoint) -> Self {
        self.budget = Budget::Point(point);
        self
    }

    /// Use a raw bit budget.
    pub fn budget_bits(mut self, bits: u64) -> Self {
        self.budget = Budget::Bits(bits);
        self
    }

    /// Use any budget value.
    pub fn budget(mut self, budget: impl Into<Budget>) -> Self {
        self.budget = budget.into();
        self
    }

    /// Set the architecture.
    pub fn arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// The budget resolved to bits for this spec's architecture.
    pub fn bits(&self) -> u64 {
        self.budget.bits(self.arch)
    }

    /// Check the spec without building storage.
    ///
    /// # Errors
    ///
    /// [`SpecError::BudgetTooSmall`] when the budget cannot hold the
    /// smallest legal instance of the organization.
    pub fn validate(&self) -> Result<(), SpecError> {
        let min_bits = min_budget_bits(self.org, self.arch);
        let got_bits = self.bits();
        if got_bits < min_bits {
            return Err(SpecError::BudgetTooSmall {
                org: self.org,
                arch: self.arch,
                got_bits,
                min_bits,
            });
        }
        Ok(())
    }

    /// Build the described BTB instance.
    ///
    /// # Errors
    ///
    /// Everything [`validate`](BtbSpec::validate) reports; on `Ok` the
    /// construction itself cannot panic.
    pub fn build(&self) -> Result<Box<dyn Btb>, SpecError> {
        self.validate()?;
        Ok(factory::build(self.org, self.bits(), self.arch))
    }

    /// Build the described BTB as a statically dispatched
    /// [`crate::engine::BtbEngine`] — the fast path the simulator prefers.
    ///
    /// # Errors
    ///
    /// Everything [`validate`](BtbSpec::validate) reports; on `Ok` the
    /// construction itself cannot panic.
    pub fn build_engine(&self) -> Result<crate::engine::BtbEngine, SpecError> {
        self.validate()?;
        Ok(crate::engine::BtbEngine::build(
            self.org,
            self.bits(),
            self.arch,
        ))
    }

    /// Short stable identity, e.g. `btbx@14.5KB/arm64` — used in cache
    /// keys and report labels.
    pub fn id(&self) -> String {
        format!(
            "{}@{}/{}",
            self.org.id(),
            self.budget.label(),
            self.arch.name()
        )
    }
}

impl std::fmt::Display for BtbSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BranchClass, BranchEvent};

    #[test]
    fn builds_every_org_at_every_tier() {
        for org in OrgKind::ALL {
            for bp in BudgetPoint::ALL {
                let spec = BtbSpec::of(org).at(bp);
                let mut btb = spec.build().unwrap_or_else(|e| panic!("{spec}: {e}"));
                let ev = BranchEvent::taken(0x1000, 0x1080, BranchClass::CondDirect);
                btb.update(&ev);
                assert!(btb.lookup(0x1000).is_some(), "{spec}");
            }
        }
    }

    #[test]
    fn undersized_budget_is_an_error_not_a_panic() {
        for org in OrgKind::ALL {
            if org == OrgKind::Infinite {
                continue;
            }
            let Err(err) = BtbSpec::of(org).budget_bits(4).build() else {
                panic!("{org}: 4 bits must not build");
            };
            let SpecError::BudgetTooSmall {
                got_bits, min_bits, ..
            } = err;
            assert_eq!(got_bits, 4);
            assert!(min_bits > 4, "{org}: min {min_bits}");
        }
    }

    #[test]
    fn min_budgets_are_tight() {
        // At the minimum the build succeeds; one bit below, it fails.
        for org in OrgKind::ALL {
            let min = min_budget_bits(org, Arch::Arm64);
            let spec = BtbSpec::of(org).budget_bits(min);
            assert!(spec.build().is_ok(), "{org} must build at its min {min}");
            if min > 0 {
                assert!(
                    BtbSpec::of(org).budget_bits(min - 1).validate().is_err(),
                    "{org} must reject {min} - 1"
                );
            }
        }
    }

    #[test]
    fn infinite_ignores_budget() {
        assert!(BtbSpec::of(OrgKind::Infinite)
            .budget_bits(0)
            .build()
            .is_ok());
    }

    #[test]
    fn spec_round_trips_through_serde() {
        for spec in [
            BtbSpec::of(OrgKind::BtbX).at(BudgetPoint::Kb7_25),
            BtbSpec::of(OrgKind::Pdede)
                .budget_bits(123_456)
                .arch(Arch::X86),
        ] {
            let v = serde::Serialize::to_value(&spec);
            let back: BtbSpec = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        assert_eq!(BtbSpec::of(OrgKind::BtbX).id(), "btbx@14.5KB/arm64");
        assert_eq!(
            BtbSpec::of(OrgKind::Conv)
                .budget_bits(512)
                .arch(Arch::X86)
                .id(),
            "conv@512b/x86"
        );
    }

    #[test]
    fn budget_conversions() {
        let b: Budget = BudgetPoint::Kb0_9.into();
        assert_eq!(b.bits(Arch::Arm64), BudgetPoint::Kb0_9.bits(Arch::Arm64));
        let b: Budget = 4096u64.into();
        assert_eq!(b.bits(Arch::X86), 4096);
        assert_eq!(b.label(), "4096b");
    }

    #[test]
    fn built_storage_respects_budget_at_tiers() {
        for org in [OrgKind::Conv, OrgKind::Pdede, OrgKind::BtbX, OrgKind::RBtb] {
            let spec = BtbSpec::of(org).at(BudgetPoint::Kb3_6);
            let btb = spec.build().unwrap();
            assert!(btb.storage().total_bits <= spec.bits(), "{spec}");
        }
    }
}
