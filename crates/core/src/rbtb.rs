//! Seznec's Reduced BTB (R-BTB) — "Don't use the page number, but a
//! pointer to it" (ISCA 1996); paper Section IV-A, Figure 5.
//!
//! R-BTB splits each target into a 10-bit page offset kept in the
//! **Main-BTB** and a 36-bit page number deduplicated in a fully
//! associative **Page-BTB**; Main-BTB entries store a pointer to the page
//! entry. Every hit therefore pays the Page-BTB indirection, and every
//! allocation a fully associative search — the two complexity costs the
//! paper contrasts BTB-X against. R-BTB is not part of the paper's
//! headline evaluation (PDede subsumes it) but is implemented as the
//! historical baseline and for ablation benches.

use crate::btb::{Btb, BtbHit, HitSite};
use crate::replacement::LruSet;
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::stats::{AccessCounts, StorageReport};
use crate::tag::{partial_tag, set_index, PARTIAL_TAG_BITS};
use crate::types::{Arch, BranchEvent, BtbBranchType, TargetSource};

const WAYS: usize = 8;

/// Bits per Page-BTB entry: a 36-bit page number (48-bit VA, 4 KB pages)
/// plus replacement state.
pub const RBTB_PAGE_ENTRY_BITS: u64 = 36 + 4;

/// Main-BTB entries per Page-BTB entry (Seznec provisions the Page-BTB at
/// a small fraction of the Main-BTB; one page per 16 branches is ample for
/// the page locality his design exploits).
pub const RBTB_PAGE_DIVISOR: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MainEntry {
    valid: bool,
    tag: u16,
    btype: BtbBranchType,
    /// Page offset with alignment bits dropped.
    offset: u16,
    page_ptr: u32,
}

impl MainEntry {
    const INVALID: MainEntry = MainEntry {
        valid: false,
        tag: 0,
        btype: BtbBranchType::Unconditional,
        offset: 0,
        page_ptr: 0,
    };
}

/// Seznec's Reduced BTB.
#[derive(Debug, Clone)]
pub struct RBtb {
    arch: Arch,
    sets: usize,
    main: Vec<MainEntry>,
    lru: Vec<LruSet>,
    pages: Vec<Option<u64>>,
    page_lru: LruSet,
    counts: AccessCounts,
}

impl RBtb {
    /// Build an R-BTB with `entries` Main-BTB entries (multiple of 8) and
    /// `entries / 16` fully associative Page-BTB entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 8.
    pub fn with_entries(entries: usize, arch: Arch) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(WAYS),
            "entries must be a multiple of 8"
        );
        let sets = entries / WAYS;
        let page_entries = (entries / RBTB_PAGE_DIVISOR).clamp(4, 64);
        RBtb {
            arch,
            sets,
            main: vec![MainEntry::INVALID; entries],
            lru: vec![LruSet::new(WAYS); sets],
            pages: vec![None; page_entries],
            page_lru: LruSet::new(page_entries),
            counts: AccessCounts::default(),
        }
    }

    /// Build the largest R-BTB fitting `budget_bits`.
    pub fn with_budget_bits(budget_bits: u64, arch: Arch) -> Self {
        // Solve entries from: entries × entry_bits(entries) +
        // pages(entries) × page_entry_bits <= budget, iterating on the
        // pointer width.
        let mut entries = WAYS;
        loop {
            let next = entries + WAYS;
            let trial = Self::with_entries(next, arch);
            if trial.storage().total_bits > budget_bits {
                break;
            }
            entries = next;
        }
        Self::with_entries(entries, arch)
    }

    /// Main-BTB entries.
    pub fn entries(&self) -> usize {
        self.main.len()
    }

    /// Page-BTB entries.
    pub fn page_entries(&self) -> usize {
        self.pages.len()
    }

    fn page_ptr_bits(&self) -> u32 {
        usize::BITS - (self.pages.len() - 1).leading_zeros()
    }

    fn main_entry_bits(&self) -> u64 {
        // valid 1 + tag 12 + type 2 + rep 3 + offset (12 - align) + pointer.
        1 + PARTIAL_TAG_BITS as u64
            + 2
            + 3
            + (12 - self.arch.align_bits()) as u64
            + self.page_ptr_bits() as u64
    }

    fn find_way(&self, set: usize, tag: u16) -> Option<usize> {
        let base = set * WAYS;
        (0..WAYS).find(|&w| {
            let e = &self.main[base + w];
            e.valid && e.tag == tag
        })
    }

    /// Fully associative Page-BTB search-or-allocate.
    fn ensure_page(&mut self, page: u64) -> u32 {
        self.counts.page_searches += 1;
        for (i, p) in self.pages.iter().enumerate() {
            if *p == Some(page) {
                self.page_lru.touch(i);
                return i as u32;
            }
        }
        let victim = (0..self.pages.len())
            .find(|&i| self.pages[i].is_none())
            .unwrap_or_else(|| self.page_lru.victim());
        if self.pages[victim].is_some() {
            let v = victim as u32;
            for e in &mut self.main {
                if e.valid && e.page_ptr == v {
                    *e = MainEntry::INVALID;
                }
            }
        }
        self.pages[victim] = Some(page);
        self.page_lru.touch(victim);
        self.counts.page_writes += 1;
        victim as u32
    }
}

impl Btb for RBtb {
    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        self.counts.reads += 1;
        let set = set_index(pc, self.sets, self.arch);
        let tag = partial_tag(pc, self.sets, self.arch);
        let way = self.find_way(set, tag)?;
        self.counts.read_hits += 1;
        self.lru[set].touch(way);
        let e = self.main[set * WAYS + way];
        if e.btype == BtbBranchType::Return {
            return Some(BtbHit {
                btype: e.btype,
                target: TargetSource::ReturnStack,
                site: HitSite::Main,
            });
        }
        let page = self.pages[e.page_ptr as usize].expect("live pointer to dead page");
        let target = (page << 12) | ((e.offset as u64) << self.arch.align_bits());
        Some(BtbHit {
            btype: e.btype,
            target: TargetSource::Address(target),
            site: HitSite::Indirect,
        })
    }

    #[inline]
    fn note_target_consumed(&mut self, hit: &BtbHit) {
        if hit.site == HitSite::Indirect {
            self.counts.page_reads += 1;
        }
    }

    #[inline]
    fn update(&mut self, event: &BranchEvent) {
        if !event.taken {
            return;
        }
        let btype = event.class.btb_type();
        let set = set_index(event.pc, self.sets, self.arch);
        let tag = partial_tag(event.pc, self.sets, self.arch);
        let base = set * WAYS;
        let offset = ((event.target & 0xfff) >> self.arch.align_bits()) as u16;
        let page_ptr = if btype == BtbBranchType::Return {
            0 // returns never read their pointer
        } else {
            self.ensure_page(event.target >> 12)
        };
        let new = MainEntry {
            valid: true,
            tag,
            btype,
            offset,
            page_ptr,
        };
        if let Some(way) = self.find_way(set, tag) {
            if self.main[base + way] != new {
                self.main[base + way] = new;
                self.counts.writes += 1;
            }
            self.lru[set].touch(way);
            return;
        }
        let way = (0..WAYS)
            .find(|&w| !self.main[base + w].valid)
            .unwrap_or_else(|| self.lru[set].victim());
        self.main[base + way] = new;
        self.lru[set].touch(way);
        self.counts.writes += 1;
    }

    fn storage(&self) -> StorageReport {
        let main_bits = self.main.len() as u64 * self.main_entry_bits();
        let page_bits = self.pages.len() as u64 * RBTB_PAGE_ENTRY_BITS;
        StorageReport {
            name: "rbtb".into(),
            total_bits: main_bits + page_bits,
            branch_capacity: self.main.len() as u64,
            partitions: vec![
                ("main-btb".into(), main_bits),
                ("page-btb".into(), page_bits),
            ],
        }
    }

    fn counts(&self) -> AccessCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts.reset();
    }

    fn clear(&mut self) {
        self.main.fill(MainEntry::INVALID);
        for l in &mut self.lru {
            *l = LruSet::new(WAYS);
        }
        self.pages.fill(None);
        self.page_lru = LruSet::new(self.pages.len());
    }

    fn name(&self) -> &'static str {
        "rbtb"
    }
}

impl Snapshot for RBtb {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.sets as u64);
        w.u64(self.pages.len() as u64);
        for e in &self.main {
            w.bool(e.valid);
            w.u16(e.tag);
            w.u8(e.btype.snap_code());
            w.u16(e.offset);
            w.u32(e.page_ptr);
        }
        for l in &self.lru {
            l.save_state(w);
        }
        for p in &self.pages {
            match p {
                Some(page) => {
                    w.bool(true);
                    w.u64(*page);
                }
                None => w.bool(false),
            }
        }
        self.page_lru.save_state(w);
        self.counts.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.sets as u64, "rbtb set count")?;
        r.expect_u64(self.pages.len() as u64, "rbtb page entry count")?;
        let page_entries = self.pages.len() as u32;
        for e in &mut self.main {
            let new = MainEntry {
                valid: r.bool()?,
                tag: r.u16()?,
                btype: BtbBranchType::from_snap_code(r.u8()?)?,
                offset: r.u16()?,
                page_ptr: r.u32()?,
            };
            if new.valid && new.page_ptr >= page_entries {
                return Err(SnapError::Corrupt("rbtb page pointer out of range"));
            }
            *e = new;
        }
        for l in &mut self.lru {
            l.restore_state(r)?;
        }
        for p in &mut self.pages {
            *p = if r.bool()? { Some(r.u64()?) } else { None };
        }
        self.page_lru.restore_state(r)?;
        self.counts.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BranchClass;

    #[test]
    fn round_trip_any_distance() {
        let mut b = RBtb::with_entries(256, Arch::Arm64);
        for (pc, target) in [
            (0x1000u64, 0x1040u64),
            (0x1000, 0x7f00_1234_5678 & !3),
            (0x7f00_0000, 0x10_0000),
        ] {
            b.update(&BranchEvent::taken(pc, target, BranchClass::CallDirect));
            assert_eq!(
                b.lookup(pc).unwrap().target,
                TargetSource::Address(target),
                "pc {pc:#x}"
            );
        }
    }

    #[test]
    fn every_hit_pays_indirection() {
        let mut b = RBtb::with_entries(64, Arch::Arm64);
        b.update(&BranchEvent::taken(0x1000, 0x1040, BranchClass::CondDirect));
        assert_eq!(b.lookup(0x1000).unwrap().site, HitSite::Indirect);
    }

    #[test]
    fn returns_skip_the_page_btb() {
        let mut b = RBtb::with_entries(64, Arch::Arm64);
        b.update(&BranchEvent::taken(0x1000, 0x9000, BranchClass::Return));
        let hit = b.lookup(0x1000).unwrap();
        assert_eq!(hit.site, HitSite::Main);
        assert_eq!(hit.target, TargetSource::ReturnStack);
        assert_eq!(b.counts().page_searches, 0);
    }

    #[test]
    fn page_dedup() {
        let mut b = RBtb::with_entries(256, Arch::Arm64);
        b.update(&BranchEvent::taken(
            0x1000,
            0x5000_0040,
            BranchClass::CallDirect,
        ));
        b.update(&BranchEvent::taken(
            0x2000,
            0x5000_0080,
            BranchClass::CallDirect,
        ));
        assert_eq!(b.counts().page_writes, 1);
    }

    #[test]
    fn page_eviction_never_leaves_stale_pointers() {
        let mut b = RBtb::with_entries(64, Arch::Arm64); // 4 page entries
        b.update(&BranchEvent::taken(
            0x1000,
            0x5000_0040,
            BranchClass::CallDirect,
        ));
        for i in 0..8u64 {
            b.update(&BranchEvent::taken(
                0x2000 + 4 * i,
                0x6000_0040 + (i << 12),
                BranchClass::CallDirect,
            ));
        }
        // Either miss, or a live self-consistent target; lookup() panics on
        // stale pointers, so reaching here without panic is the assertion.
        let _ = b.lookup(0x1000);
    }

    #[test]
    fn budget_sizing_respects_budget() {
        for bits in [7424u64, 118784, 475136] {
            let b = RBtb::with_budget_bits(bits, Arch::Arm64);
            assert!(b.storage().total_bits <= bits);
            // And is reasonably tight (> 90 % utilization).
            assert!(b.storage().total_bits as f64 > bits as f64 * 0.9);
        }
    }
}
