//! Struct-of-engines batch driver: many [`BtbEngine`] instances advanced
//! in lock-step over one decoded event stream.
//!
//! A sweep evaluates the same trace against K organization × budget
//! points. Driven separately, each point pays the full trace decode; the
//! bank amortizes that to one traversal with K cheap per-engine
//! probe/update fan-outs per event. The engines are *independent* — no
//! state is shared between lanes — so every per-engine answer is
//! bit-identical to what a solo engine fed the same stream would give,
//! and each lane snapshots through the engine's own sealed codec
//! ([`EngineBank::save_engine`]), byte-compatible with solo snapshots, so
//! warm ladders and sharded replay keep working per lane.
//!
//! The cycle-level batched executor (`btbx_uarch::batch`) builds its
//! per-lane engines through [`EngineBank::from_specs`] (one validation
//! pass for the whole group); the trace-driven fan-out methods serve
//! MPKI-style evaluation and the `engine_batch_ops` Criterion bench that
//! pins the per-engine marginal cost.

use crate::btb::BtbHit;
use crate::engine::BtbEngine;
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::spec::{BtbSpec, SpecError};
use crate::stats::AccessCounts;
use crate::types::BranchEvent;

/// A bank of independent BTB engines driven over one event stream.
#[derive(Debug, Clone)]
pub struct EngineBank {
    engines: Vec<BtbEngine>,
}

impl EngineBank {
    /// Build one engine per spec, validating every spec before any
    /// storage is allocated — a sweep group fails fast as a whole
    /// instead of mid-flight on lane 7.
    ///
    /// # Errors
    ///
    /// The first [`SpecError`] among the specs.
    pub fn from_specs<'a, I>(specs: I) -> Result<Self, SpecError>
    where
        I: IntoIterator<Item = &'a BtbSpec>,
    {
        let specs: Vec<&BtbSpec> = specs.into_iter().collect();
        for spec in &specs {
            spec.validate()?;
        }
        Ok(EngineBank {
            engines: specs
                .iter()
                .map(|s| BtbEngine::build(s.org, s.bits(), s.arch))
                .collect(),
        })
    }

    /// Adopt already-built engines.
    pub fn from_engines(engines: Vec<BtbEngine>) -> Self {
        EngineBank { engines }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the bank has no lanes.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The engine in `lane`.
    pub fn engine(&self, lane: usize) -> &BtbEngine {
        &self.engines[lane]
    }

    /// Mutable access to the engine in `lane`.
    pub fn engine_mut(&mut self, lane: usize) -> &mut BtbEngine {
        &mut self.engines[lane]
    }

    /// Disband the bank into its engines (the batched executor hands one
    /// to each simulation lane).
    pub fn into_engines(self) -> Vec<BtbEngine> {
        self.engines
    }

    /// Probe every lane at `pc`, appending one answer per lane to
    /// `hits` (cleared first; reuse the buffer across events to stay
    /// allocation-free in the hot loop).
    #[inline]
    pub fn lookup_all(&mut self, pc: u64, hits: &mut Vec<Option<BtbHit>>) {
        hits.clear();
        hits.extend(self.engines.iter_mut().map(|e| e.lookup(pc)));
    }

    /// Commit-time update fan-out: apply `event` to every lane.
    #[inline]
    pub fn update_all(&mut self, event: &BranchEvent) {
        for e in &mut self.engines {
            e.update(event);
        }
    }

    /// Per-lane dynamic access counters.
    pub fn counts(&self) -> Vec<AccessCounts> {
        self.engines.iter().map(|e| e.counts()).collect()
    }

    /// Reset every lane's counters.
    pub fn reset_counts(&mut self) {
        for e in &mut self.engines {
            e.reset_counts();
        }
    }

    /// Serialize one lane through the engine's own sealed codec. The
    /// bytes are identical to a solo [`BtbEngine::save_state`], so bank
    /// lanes interoperate with warm ladders and shard checkpoints taken
    /// from unbatched runs.
    pub fn save_engine(&self, lane: usize, w: &mut SnapWriter) {
        self.engines[lane].save_state(w);
    }

    /// Restore one lane from a solo-compatible engine snapshot.
    ///
    /// # Errors
    ///
    /// Whatever the engine codec reports (organization mismatch,
    /// truncation, corruption).
    pub fn restore_engine(&mut self, lane: usize, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.engines[lane].restore_state(r)
    }
}

impl Snapshot for EngineBank {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.engines.len() as u64);
        for e in &self.engines {
            e.save_state(w);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.engines.len() as u64, "engine bank width")?;
        for e in &mut self.engines {
            e.restore_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::OrgKind;
    use crate::storage::BudgetPoint;
    use crate::types::BranchClass;

    fn specs() -> Vec<BtbSpec> {
        vec![
            BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb1_8),
            BtbSpec::of(OrgKind::BtbX).at(BudgetPoint::Kb3_6),
            BtbSpec::of(OrgKind::Pdede).at(BudgetPoint::Kb14_5),
        ]
    }

    fn stream(n: u64) -> Vec<BranchEvent> {
        (0..n)
            .map(|i| {
                let pc = 0x1_0000 + (i % 97) * 4;
                BranchEvent::taken(pc, pc + 0x40 + (i % 7) * 4, BranchClass::CondDirect)
            })
            .collect()
    }

    #[test]
    fn fan_out_matches_solo_engines() {
        let specs = specs();
        let mut bank = EngineBank::from_specs(&specs).unwrap();
        let mut solo: Vec<BtbEngine> = specs.iter().map(|s| s.build_engine().unwrap()).collect();
        let mut hits = Vec::new();
        for ev in stream(5_000) {
            bank.lookup_all(ev.pc, &mut hits);
            for (lane, engine) in solo.iter_mut().enumerate() {
                assert_eq!(hits[lane], engine.lookup(ev.pc));
            }
            bank.update_all(&ev);
            for engine in &mut solo {
                engine.update(&ev);
            }
        }
        for (lane, engine) in solo.iter().enumerate() {
            assert_eq!(bank.counts()[lane], engine.counts(), "lane {lane}");
        }
    }

    #[test]
    fn lane_snapshots_are_solo_compatible() {
        let specs = specs();
        let mut bank = EngineBank::from_specs(&specs).unwrap();
        let mut solo: Vec<BtbEngine> = specs.iter().map(|s| s.build_engine().unwrap()).collect();
        for ev in stream(2_000) {
            bank.update_all(&ev);
            for engine in &mut solo {
                engine.update(&ev);
            }
        }
        for lane in 0..bank.len() {
            let mut wb = SnapWriter::new();
            bank.save_engine(lane, &mut wb);
            let mut ws = SnapWriter::new();
            solo[lane].save_state(&mut ws);
            let bytes = wb.into_vec();
            assert_eq!(bytes, ws.into_vec(), "lane {lane} codec bytes");
            // And a solo engine restores from the bank lane's bytes.
            let mut fresh = specs[lane].build_engine().unwrap();
            fresh.restore_state(&mut SnapReader::new(&bytes)).unwrap();
            let mut wf = SnapWriter::new();
            fresh.save_state(&mut wf);
            assert_eq!(wf.into_vec(), bytes, "round trip through solo engine");
        }
    }

    #[test]
    fn whole_bank_snapshot_round_trips() {
        let specs = specs();
        let mut bank = EngineBank::from_specs(&specs).unwrap();
        for ev in stream(1_000) {
            bank.update_all(&ev);
        }
        let mut w = SnapWriter::new();
        bank.save_state(&mut w);
        let bytes = w.into_vec();
        let mut back = EngineBank::from_specs(&specs).unwrap();
        back.restore_state(&mut SnapReader::new(&bytes)).unwrap();
        let mut w2 = SnapWriter::new();
        back.save_state(&mut w2);
        assert_eq!(w2.into_vec(), bytes);
    }

    #[test]
    fn invalid_spec_fails_the_whole_bank() {
        let mut specs = specs();
        specs.push(BtbSpec::of(OrgKind::BtbX).budget_bits(3));
        assert!(EngineBank::from_specs(&specs).is_err());
    }
}
