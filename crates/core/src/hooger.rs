//! Hoogerbrugge's cost-efficient BTB (Euro-Par 2000) — the mixed-entry-
//! size related-work baseline of Section VII.
//!
//! Half of the ways in each set are *short* entries holding a small
//! target offset (the branch stays in the set only if its offset fits);
//! the other half are *full* entries with complete targets. This predates
//! BTB-X's insight by one step: two entry sizes instead of eight, no
//! overflow structure, and a fixed short-offset width rather than
//! distribution-matched ways. Included for the ablation benches.

use crate::btb::{Btb, BtbHit, HitSite};
use crate::offset::{extract_offset, reconstruct_target, stored_offset_len};
use crate::replacement::{eligibility_mask, LruSet};
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::stats::{AccessCounts, StorageReport};
use crate::tag::{partial_tag, set_index, PARTIAL_TAG_BITS};
use crate::types::{Arch, BranchEvent, BtbBranchType, TargetSource};

const WAYS: usize = 8;
/// Ways `0..SHORT_WAYS` hold short offsets; the rest hold full targets.
const SHORT_WAYS: usize = 4;
/// Offset width of the short entries.
pub const SHORT_OFFSET_BITS: u32 = 12;

/// Bits per short entry: valid 1 + tag 12 + type 2 + rep 3 + offset 12.
pub const SHORT_ENTRY_BITS: u64 = 1 + PARTIAL_TAG_BITS as u64 + 2 + 3 + SHORT_OFFSET_BITS as u64;
/// Bits per full entry (as a conventional entry).
pub const FULL_ENTRY_BITS: u64 = 64;
/// Bits per set.
pub const SET_BITS: u64 =
    SHORT_WAYS as u64 * SHORT_ENTRY_BITS + (WAYS - SHORT_WAYS) as u64 * FULL_ENTRY_BITS;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    valid: bool,
    tag: u16,
    btype: BtbBranchType,
    /// Short ways: stored offset bits; full ways: the complete target.
    payload: u64,
}

const INVALID: Entry = Entry {
    valid: false,
    tag: 0,
    btype: BtbBranchType::Unconditional,
    payload: 0,
};

/// The mixed-entry-size BTB.
#[derive(Debug, Clone)]
pub struct MixedBtb {
    arch: Arch,
    sets: usize,
    entries: Vec<Entry>,
    lru: Vec<LruSet>,
    counts: AccessCounts,
}

impl MixedBtb {
    /// Build with `entries` total entries (multiple of 8).
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive multiple of 8.
    pub fn with_entries(entries: usize, arch: Arch) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(WAYS),
            "entries must be a multiple of 8"
        );
        let sets = entries / WAYS;
        MixedBtb {
            arch,
            sets,
            entries: vec![INVALID; entries],
            lru: vec![LruSet::new(WAYS); sets],
            counts: AccessCounts::default(),
        }
    }

    /// Largest instance fitting `budget_bits`.
    pub fn with_budget_bits(budget_bits: u64, arch: Arch) -> Self {
        let sets = (budget_bits / SET_BITS).max(1) as usize;
        Self::with_entries(sets * WAYS, arch)
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    fn find(&self, set: usize, tag: u16) -> Option<usize> {
        let base = set * WAYS;
        (0..WAYS).find(|&w| {
            let e = &self.entries[base + w];
            e.valid && e.tag == tag
        })
    }
}

impl Btb for MixedBtb {
    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        self.counts.reads += 1;
        let set = set_index(pc, self.sets, self.arch);
        let tag = partial_tag(pc, self.sets, self.arch);
        let way = self.find(set, tag)?;
        self.counts.read_hits += 1;
        self.lru[set].touch(way);
        let e = self.entries[set * WAYS + way];
        let target = if e.btype == BtbBranchType::Return {
            TargetSource::ReturnStack
        } else if way < SHORT_WAYS {
            TargetSource::Address(reconstruct_target(
                pc,
                e.payload,
                SHORT_OFFSET_BITS,
                self.arch,
            ))
        } else {
            TargetSource::Address(e.payload)
        };
        Some(BtbHit {
            btype: e.btype,
            target,
            site: HitSite::Main,
        })
    }

    #[inline]
    fn update(&mut self, event: &BranchEvent) {
        if !event.taken {
            return;
        }
        let btype = event.class.btb_type();
        let fits_short = btype == BtbBranchType::Return
            || stored_offset_len(event.pc, event.target, self.arch) <= SHORT_OFFSET_BITS;
        let set = set_index(event.pc, self.sets, self.arch);
        let tag = partial_tag(event.pc, self.sets, self.arch);
        let base = set * WAYS;

        let payload_for = |way: usize| {
            if way < SHORT_WAYS {
                extract_offset(event.target, SHORT_OFFSET_BITS, self.arch)
            } else {
                event.target
            }
        };

        if let Some(way) = self.find(set, tag) {
            if way >= SHORT_WAYS || fits_short {
                let new = Entry {
                    valid: true,
                    tag,
                    btype,
                    payload: payload_for(way),
                };
                if self.entries[base + way] != new {
                    self.entries[base + way] = new;
                    self.counts.writes += 1;
                }
                self.lru[set].touch(way);
                return;
            }
            // Outgrew its short slot: invalidate and reallocate below.
            self.entries[base + way] = INVALID;
        }
        let eligible = eligibility_mask(WAYS, |w| w >= SHORT_WAYS || fits_short);
        let way = (0..WAYS)
            .find(|&w| eligible & (1 << w) != 0 && !self.entries[base + w].valid)
            .unwrap_or_else(|| self.lru[set].victim_among(eligible));
        self.entries[base + way] = Entry {
            valid: true,
            tag,
            btype,
            payload: payload_for(way),
        };
        self.lru[set].touch(way);
        self.counts.writes += 1;
    }

    fn storage(&self) -> StorageReport {
        let bits = self.sets as u64 * SET_BITS;
        StorageReport {
            name: "hoogerbrugge".into(),
            total_bits: bits,
            branch_capacity: self.entries.len() as u64,
            partitions: vec![("mixed".into(), bits)],
        }
    }

    fn counts(&self) -> AccessCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts.reset();
    }

    fn clear(&mut self) {
        self.entries.fill(INVALID);
        for l in &mut self.lru {
            *l = LruSet::new(WAYS);
        }
    }

    fn name(&self) -> &'static str {
        "hoogerbrugge"
    }
}

impl Snapshot for MixedBtb {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.sets as u64);
        for e in &self.entries {
            w.bool(e.valid);
            w.u16(e.tag);
            w.u8(e.btype.snap_code());
            w.u64(e.payload);
        }
        for l in &self.lru {
            l.save_state(w);
        }
        self.counts.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.sets as u64, "mixed set count")?;
        for e in &mut self.entries {
            *e = Entry {
                valid: r.bool()?,
                tag: r.u16()?,
                btype: BtbBranchType::from_snap_code(r.u8()?)?,
                payload: r.u64()?,
            };
        }
        for l in &mut self.lru {
            l.restore_state(r)?;
        }
        self.counts.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BranchClass;

    #[test]
    fn set_cost_sits_between_conv_and_btbx() {
        // Conv: 512 bits/set; BTB-X: 224; mixed design in between.
        assert_eq!(SET_BITS, 4 * 30 + 4 * 64);
        assert!((225..512).contains(&SET_BITS));
    }

    #[test]
    fn short_branch_round_trip() {
        let mut b = MixedBtb::with_entries(64, Arch::Arm64);
        let ev = BranchEvent::taken(0x1000, 0x1100, BranchClass::CondDirect);
        b.update(&ev);
        assert_eq!(
            b.lookup(0x1000).unwrap().target,
            TargetSource::Address(0x1100)
        );
    }

    #[test]
    fn long_branch_round_trip_uses_full_ways() {
        let mut b = MixedBtb::with_entries(64, Arch::Arm64);
        let ev = BranchEvent::taken(0x1000, 0x7f00_0000, BranchClass::CallDirect);
        b.update(&ev);
        assert_eq!(
            b.lookup(0x1000).unwrap().target,
            TargetSource::Address(0x7f00_0000)
        );
    }

    #[test]
    fn long_branches_confined_to_full_ways() {
        let mut b = MixedBtb::with_entries(8, Arch::Arm64); // one set
        for i in 0..8u64 {
            b.update(&BranchEvent::taken(
                0x1000 + i * 4,
                0x7f00_0000 + i * 0x10_0000,
                BranchClass::CallDirect,
            ));
        }
        let alive = (0..8u64)
            .filter(|i| b.lookup(0x1000 + i * 4).is_some())
            .count();
        assert_eq!(alive, 4, "only the 4 full ways can hold long branches");
    }

    #[test]
    fn capacity_beats_conv_at_equal_storage() {
        let budget = 64 * 512u64; // 64 conv sets
        let mixed = MixedBtb::with_budget_bits(budget, Arch::Arm64);
        assert!(mixed.entries() > 64 * 8);
    }

    #[test]
    fn retarget_from_short_to_long_relocates() {
        let mut b = MixedBtb::with_entries(64, Arch::Arm64);
        let pc = 0x2000u64;
        b.update(&BranchEvent::taken(pc, pc + 32, BranchClass::CallIndirect));
        b.update(&BranchEvent::taken(
            pc,
            0x7a00_0000,
            BranchClass::CallIndirect,
        ));
        assert_eq!(
            b.lookup(pc).unwrap().target,
            TargetSource::Address(0x7a00_0000)
        );
    }
}
