//! Fundamental types shared by every BTB organization and by the trace and
//! simulator crates: instruction-set flavour, branch classes, and the
//! commit-time branch event that drives BTB updates.

use serde::{Deserialize, Serialize};

/// Instruction-set flavour of a workload.
///
/// The paper evaluates Arm64 traces (IPC-1, CVP-1) and revisits the offset
/// distribution for x86 server applications in Section VI-G. The only
/// architectural property the BTB organizations depend on is instruction
/// alignment: Arm64 instructions are 4-byte aligned, so the two low target
/// bits are always zero and need not be stored; x86 instructions are
/// byte-aligned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// Fixed 4-byte instructions; offsets are stored without the two
    /// always-zero low bits (Section III).
    #[default]
    Arm64,
    /// Variable-length, byte-aligned instructions; offsets are stored in
    /// full (Section VI-G).
    X86,
}

impl Arch {
    /// Number of always-zero low bits in instruction addresses.
    #[inline]
    pub const fn align_bits(self) -> u32 {
        match self {
            Arch::Arm64 => 2,
            Arch::X86 => 0,
        }
    }

    /// BTB-X way offset widths for this architecture, smallest way first
    /// (Figure 8 for Arm64; Section VI-G for x86).
    pub const fn btbx_way_widths(self) -> [u32; 8] {
        match self {
            Arch::Arm64 => [0, 4, 5, 7, 9, 11, 19, 25],
            Arch::X86 => [0, 5, 6, 7, 9, 12, 20, 27],
        }
    }

    /// Human-readable name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            Arch::Arm64 => "arm64",
            Arch::X86 => "x86",
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fine-grained branch classification as it appears in instruction traces.
///
/// The BTB stores only a 2-bit type ([`BtbBranchType`]); the extra
/// granularity here (direct vs. indirect) is needed by the front-end model:
/// direct branches can be resteered at decode because their target is
/// encoded in the instruction, indirect ones cannot (Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchClass {
    /// Conditional direct branch (`b.cond`, `jcc`).
    CondDirect,
    /// Unconditional direct jump (`b`, `jmp imm`).
    UncondDirect,
    /// Direct call (`bl`, `call imm`); pushes the return address.
    CallDirect,
    /// Indirect call (`blr`, `call reg`); pushes the return address.
    CallIndirect,
    /// Indirect jump (`br`, `jmp reg`), excluding returns.
    UncondIndirect,
    /// Function return (`ret`); target comes from the return address stack.
    Return,
}

impl BranchClass {
    /// Stable snapshot discriminant (see [`crate::snap`]).
    #[inline]
    pub const fn snap_code(self) -> u8 {
        match self {
            BranchClass::CondDirect => 0,
            BranchClass::UncondDirect => 1,
            BranchClass::CallDirect => 2,
            BranchClass::CallIndirect => 3,
            BranchClass::UncondIndirect => 4,
            BranchClass::Return => 5,
        }
    }

    /// Inverse of [`Self::snap_code`].
    pub fn from_snap_code(code: u8) -> Result<Self, crate::snap::SnapError> {
        Ok(match code {
            0 => BranchClass::CondDirect,
            1 => BranchClass::UncondDirect,
            2 => BranchClass::CallDirect,
            3 => BranchClass::CallIndirect,
            4 => BranchClass::UncondIndirect,
            5 => BranchClass::Return,
            _ => return Err(crate::snap::SnapError::Corrupt("branch class discriminant")),
        })
    }

    /// The 2-bit type stored in a BTB entry (Figure 1).
    #[inline]
    pub const fn btb_type(self) -> BtbBranchType {
        match self {
            BranchClass::CondDirect => BtbBranchType::Conditional,
            BranchClass::UncondDirect | BranchClass::UncondIndirect => BtbBranchType::Unconditional,
            BranchClass::CallDirect | BranchClass::CallIndirect => BtbBranchType::Call,
            BranchClass::Return => BtbBranchType::Return,
        }
    }

    /// `true` for branches that are always taken (everything but
    /// conditional branches).
    #[inline]
    pub const fn is_always_taken(self) -> bool {
        !matches!(self, BranchClass::CondDirect)
    }

    /// `true` when the target is encoded in the instruction word, enabling
    /// decode-stage resteer on a BTB miss.
    #[inline]
    pub const fn is_direct(self) -> bool {
        matches!(
            self,
            BranchClass::CondDirect | BranchClass::UncondDirect | BranchClass::CallDirect
        )
    }

    /// `true` for calls (direct or indirect), which push the return address
    /// onto the RAS.
    #[inline]
    pub const fn is_call(self) -> bool {
        matches!(self, BranchClass::CallDirect | BranchClass::CallIndirect)
    }

    /// All six classes, for exhaustive iteration in tests and generators.
    pub const ALL: [BranchClass; 6] = [
        BranchClass::CondDirect,
        BranchClass::UncondDirect,
        BranchClass::CallDirect,
        BranchClass::CallIndirect,
        BranchClass::UncondIndirect,
        BranchClass::Return,
    ];
}

impl std::fmt::Display for BranchClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BranchClass::CondDirect => "cond",
            BranchClass::UncondDirect => "jump",
            BranchClass::CallDirect => "call",
            BranchClass::CallIndirect => "icall",
            BranchClass::UncondIndirect => "ijump",
            BranchClass::Return => "ret",
        };
        f.write_str(s)
    }
}

/// The 2-bit branch type field of a BTB entry (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BtbBranchType {
    /// May fall through; direction predictor decides.
    Conditional,
    /// Always redirects to the stored target.
    Unconditional,
    /// Always redirects and pushes the return address.
    Call,
    /// Always redirects to the RAS top; no target bits needed.
    Return,
}

impl BtbBranchType {
    /// Encoding width in bits (constant, documents Figure 1).
    pub const BITS: u32 = 2;

    /// Stable snapshot discriminant (see [`crate::snap`]).
    #[inline]
    pub const fn snap_code(self) -> u8 {
        match self {
            BtbBranchType::Conditional => 0,
            BtbBranchType::Unconditional => 1,
            BtbBranchType::Call => 2,
            BtbBranchType::Return => 3,
        }
    }

    /// Inverse of [`Self::snap_code`].
    pub fn from_snap_code(code: u8) -> Result<Self, crate::snap::SnapError> {
        Ok(match code {
            0 => BtbBranchType::Conditional,
            1 => BtbBranchType::Unconditional,
            2 => BtbBranchType::Call,
            3 => BtbBranchType::Return,
            _ => {
                return Err(crate::snap::SnapError::Corrupt(
                    "btb branch type discriminant",
                ))
            }
        })
    }
}

/// Where a predicted target comes from after a BTB hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetSource {
    /// A concrete target address (reconstructed from offset bits where
    /// applicable).
    Address(u64),
    /// The branch is a return: pop the return address stack.
    ReturnStack,
}

impl TargetSource {
    /// The concrete address, if this is not a RAS-sourced target.
    #[inline]
    pub fn address(self) -> Option<u64> {
        match self {
            TargetSource::Address(a) => Some(a),
            TargetSource::ReturnStack => None,
        }
    }
}

/// A retired branch instruction, as seen at commit time.
///
/// This is the record the simulator hands to [`crate::Btb::update`]: the
/// paper updates the BTB at commit, and only for taken branches
/// (Section VI-A), but the event also describes not-taken conditionals so
/// analyses can cover the full dynamic branch working set (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchEvent {
    /// Program counter of the branch instruction.
    pub pc: u64,
    /// Branch target. For conditional branches this is the taken target
    /// regardless of the outcome; for returns it is the actual return
    /// address.
    pub target: u64,
    /// Fine-grained branch class.
    pub class: BranchClass,
    /// Actual direction of this dynamic instance.
    pub taken: bool,
}

impl BranchEvent {
    /// Convenience constructor for a taken branch.
    pub fn taken(pc: u64, target: u64, class: BranchClass) -> Self {
        BranchEvent {
            pc,
            target,
            class,
            taken: true,
        }
    }

    /// Convenience constructor for a not-taken conditional branch.
    pub fn not_taken(pc: u64, target: u64) -> Self {
        BranchEvent {
            pc,
            target,
            class: BranchClass::CondDirect,
            taken: false,
        }
    }

    /// Serialize into the snapshot codec (see [`crate::snap`]).
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.pc);
        w.u64(self.target);
        w.u8(self.class.snap_code());
        w.bool(self.taken);
    }

    /// Deserialize an event written by [`Self::save_state`].
    pub fn load_state(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(BranchEvent {
            pc: r.u64()?,
            target: r.u64()?,
            class: BranchClass::from_snap_code(r.u8()?)?,
            taken: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_alignment() {
        assert_eq!(Arch::Arm64.align_bits(), 2);
        assert_eq!(Arch::X86.align_bits(), 0);
    }

    #[test]
    fn btbx_way_widths_match_paper() {
        // Figure 8: Arm64 ways sum to 80 offset bits per set.
        assert_eq!(Arch::Arm64.btbx_way_widths().iter().sum::<u32>(), 80);
        // Section VI-G: x86 ways sum to 86 offset bits per set.
        assert_eq!(Arch::X86.btbx_way_widths().iter().sum::<u32>(), 86);
    }

    #[test]
    fn way_widths_are_monotonic() {
        for arch in [Arch::Arm64, Arch::X86] {
            let w = arch.btbx_way_widths();
            for i in 1..w.len() {
                assert!(w[i] > w[i - 1], "{arch}: way {i} not wider than {}", i - 1);
            }
        }
    }

    #[test]
    fn class_to_btb_type() {
        assert_eq!(
            BranchClass::CondDirect.btb_type(),
            BtbBranchType::Conditional
        );
        assert_eq!(BranchClass::CallIndirect.btb_type(), BtbBranchType::Call);
        assert_eq!(
            BranchClass::UncondIndirect.btb_type(),
            BtbBranchType::Unconditional
        );
        assert_eq!(BranchClass::Return.btb_type(), BtbBranchType::Return);
    }

    #[test]
    fn always_taken_classes() {
        for class in BranchClass::ALL {
            assert_eq!(
                class.is_always_taken(),
                class != BranchClass::CondDirect,
                "{class}"
            );
        }
    }

    #[test]
    fn directness() {
        assert!(BranchClass::CallDirect.is_direct());
        assert!(!BranchClass::CallIndirect.is_direct());
        assert!(!BranchClass::Return.is_direct());
    }

    #[test]
    fn target_source_address() {
        assert_eq!(TargetSource::Address(0x40).address(), Some(0x40));
        assert_eq!(TargetSource::ReturnStack.address(), None);
    }

    #[test]
    fn event_constructors() {
        let t = BranchEvent::taken(4, 8, BranchClass::UncondDirect);
        assert!(t.taken);
        let nt = BranchEvent::not_taken(4, 8);
        assert!(!nt.taken);
        assert_eq!(nt.class, BranchClass::CondDirect);
    }
}
