//! Deterministic fault injection behind the workspace's I/O seam.
//!
//! Every durable-state layer in the stack (the result store, the warm
//! snapshot cache, `.btbt` containers, the HTTP client) routes its
//! filesystem and socket operations through the thin wrappers in this
//! module. With no plan armed the wrappers are a single relaxed atomic
//! load in front of the real `std::fs` call — nothing allocates, nothing
//! locks — so production binaries pay effectively zero cost. Arming a
//! [`FaultPlan`] (tests, the chaos suite, `BTBX_FAULT_PLAN` in CI) turns
//! selected operations into injected failures: `ENOSPC` on a cache
//! publish, a torn temp-file write, a rename that never lands, a reset
//! connection, a stalled read.
//!
//! # Determinism
//!
//! A plan is a *schedule*, not a dice roll: each [`FaultRule`] names an
//! operation kind, a path substring, and the 1-based index of the first
//! matching operation to fire on (`nth`). Rules with `nth = 0` derive
//! their trigger index from the plan's `seed` and the rule's position, so
//! a proptest-generated `(seed, rules)` pair replays the exact same fault
//! sequence on every run. Matching is counted per rule with atomic
//! counters; the wrappers never consult wall-clock time or OS randomness.
//!
//! # Sites
//!
//! The path a wrapper matches against is the real filesystem path for
//! file operations, the `host:port` address for socket operations, and
//! the stream name for container-writer sinks (which write through a
//! generic `Write + Seek` and have no path).

use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an injected fault does to the matched operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrKind {
    /// The device is full: `ErrorKind::StorageFull`.
    Enospc,
    /// A generic I/O error.
    Eio,
    /// Write a prefix of the payload, then fail — the classic
    /// crash-mid-publish torn write.
    TornWrite,
    /// The rename never lands: `ErrorKind::PermissionDenied`.
    RenameFail,
    /// The read succeeds after an injected delay.
    SlowRead,
    /// The peer resets the connection: `ErrorKind::ConnectionReset`.
    ConnReset,
    /// The operation stalls for the rule's delay, then proceeds.
    Stall,
}

/// Which seam operation a rule matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOp {
    /// Opening a file for reading.
    Open,
    /// Reading file contents (whole-file reads and container block reads).
    Read,
    /// Writing file contents (temp files, container sinks).
    Write,
    /// Renaming (atomic publishes, quarantines).
    Rename,
    /// Creating a directory tree.
    CreateDir,
    /// Establishing an outbound TCP connection.
    Connect,
    /// Reading an HTTP response off an established connection.
    HttpRead,
}

/// One scheduled fault: "the `nth` `op` touching a path containing
/// `path` fails as `kind`, for `count` consecutive matches".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Operation kind to match.
    pub op: FaultOp,
    /// Failure to inject.
    pub kind: ErrKind,
    /// Substring the operation's path must contain (empty matches all).
    #[serde(default)]
    pub path: String,
    /// 1-based index of the first matching operation to fire on;
    /// 0 derives a small deterministic index from the plan seed.
    #[serde(default)]
    pub nth: u64,
    /// Consecutive matches to fire on once triggered (0 = forever,
    /// default 1).
    #[serde(default = "default_count")]
    pub count: u64,
    /// Injected delay in milliseconds for `SlowRead`/`Stall` (default 10).
    #[serde(default = "default_delay_ms")]
    pub delay_ms: u64,
}

fn default_count() -> u64 {
    1
}

fn default_delay_ms() -> u64 {
    10
}

/// A seeded schedule of fault rules. Serializable so plans travel as
/// JSON through `BTBX_FAULT_PLAN` / `--fault-plan` and proptest shrinks
/// them structurally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed for rules with `nth = 0`; also recorded so a failing chaos
    /// case names its schedule.
    #[serde(default)]
    pub seed: u64,
    /// The schedule, evaluated in order; the first rule that triggers on
    /// an operation wins.
    #[serde(default)]
    pub rules: Vec<FaultRule>,
}

struct ArmedRule {
    rule: FaultRule,
    /// Resolved 1-based trigger index (seed-derived when `nth` was 0).
    fire_at: u64,
    /// Operations this rule has matched so far.
    matches: AtomicU64,
    /// Faults this rule has injected so far.
    fired: AtomicU64,
}

struct ArmedPlan {
    rules: Vec<ArmedRule>,
    injected: AtomicU64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<ArmedPlan>>> = Mutex::new(None);

/// Keeps a plan armed; dropping it disarms the seam (tests arm
/// per-case, binaries hold the guard for the process lifetime).
pub struct FaultGuard {
    plan: Arc<ArmedPlan>,
}

impl FaultGuard {
    /// Total faults injected since this plan was armed.
    pub fn injected(&self) -> u64 {
        self.plan.injected.load(Ordering::Relaxed)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm `plan` process-wide, replacing any armed plan. Returns a guard
/// whose drop disarms the seam.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let armed = Arc::new(ArmedPlan {
        rules: plan
            .rules
            .into_iter()
            .enumerate()
            .map(|(i, rule)| {
                let fire_at = if rule.nth == 0 {
                    // Small deterministic trigger index from the seed:
                    // splitmix-style mix of seed and rule position.
                    let mut x = plan
                        .seed
                        .wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    x ^= x >> 30;
                    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    x ^= x >> 27;
                    1 + (x % 4)
                } else {
                    rule.nth
                };
                ArmedRule {
                    rule,
                    fire_at,
                    matches: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                }
            })
            .collect(),
        injected: AtomicU64::new(0),
    });
    *PLAN.lock().unwrap() = Some(Arc::clone(&armed));
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { plan: armed }
}

/// Disarm the seam (idempotent).
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.lock().unwrap() = None;
}

/// `true` when a plan is armed — the one branch production I/O pays.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// What an armed rule told a wrapper to do.
enum Action {
    /// Fail with this error.
    Fail(io::Error),
    /// Write only this many payload bytes, then fail (torn write).
    Torn(io::Error),
    /// Sleep, then proceed normally.
    Delay(Duration),
}

fn error_for(kind: ErrKind) -> io::Error {
    match kind {
        ErrKind::Enospc => io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC"),
        ErrKind::Eio => io::Error::other("injected EIO"),
        ErrKind::TornWrite => io::Error::other("injected torn write"),
        ErrKind::RenameFail => {
            io::Error::new(io::ErrorKind::PermissionDenied, "injected rename failure")
        }
        ErrKind::ConnReset => {
            io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
        }
        // Delay kinds never produce an error; keep the mapping total.
        ErrKind::SlowRead | ErrKind::Stall => io::Error::other("injected delay"),
    }
}

/// Consult the armed plan for `op` on `path`. Slow path only — callers
/// check [`armed`] first.
fn consult(op: FaultOp, path: &str) -> Option<Action> {
    let plan = PLAN.lock().unwrap().as_ref().cloned()?;
    for r in &plan.rules {
        if r.rule.op != op || !path.contains(&r.rule.path) {
            continue;
        }
        let seen = r.matches.fetch_add(1, Ordering::Relaxed) + 1;
        let within = seen >= r.fire_at && (r.rule.count == 0 || seen < r.fire_at + r.rule.count);
        if !within {
            continue;
        }
        r.fired.fetch_add(1, Ordering::Relaxed);
        plan.injected.fetch_add(1, Ordering::Relaxed);
        return Some(match r.rule.kind {
            ErrKind::SlowRead | ErrKind::Stall => {
                Action::Delay(Duration::from_millis(r.rule.delay_ms))
            }
            ErrKind::TornWrite => Action::Torn(error_for(ErrKind::TornWrite)),
            kind => Action::Fail(error_for(kind)),
        });
    }
    None
}

/// Apply the plan to a non-write operation: fail, delay, or pass.
fn gate(op: FaultOp, path: &str) -> io::Result<()> {
    if !armed() {
        return Ok(());
    }
    match consult(op, path) {
        Some(Action::Fail(e)) | Some(Action::Torn(e)) => Err(e),
        Some(Action::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        None => Ok(()),
    }
}

/// Fault-aware `fs::write`: a torn-write rule persists a prefix of
/// `contents` before failing, exactly like a crash mid-`write(2)`.
pub fn write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let contents = contents.as_ref();
    if armed() {
        match consult(FaultOp::Write, &path.to_string_lossy()) {
            Some(Action::Fail(e)) => return Err(e),
            Some(Action::Torn(e)) => {
                let torn = &contents[..contents.len() / 2];
                let _ = fs::write(path, torn);
                return Err(e);
            }
            Some(Action::Delay(d)) => std::thread::sleep(d),
            None => {}
        }
    }
    fs::write(path, contents)
}

/// Fault-aware `fs::read`.
pub fn read(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let path = path.as_ref();
    gate(FaultOp::Read, &path.to_string_lossy())?;
    fs::read(path)
}

/// Fault-aware `fs::read_to_string`.
pub fn read_to_string(path: impl AsRef<Path>) -> io::Result<String> {
    let path = path.as_ref();
    gate(FaultOp::Read, &path.to_string_lossy())?;
    fs::read_to_string(path)
}

/// Fault-aware `fs::rename`; rules match against either endpoint.
pub fn rename(from: impl AsRef<Path>, to: impl AsRef<Path>) -> io::Result<()> {
    let (from, to) = (from.as_ref(), to.as_ref());
    if armed() {
        let site = format!("{}\u{0}{}", from.to_string_lossy(), to.to_string_lossy());
        gate(FaultOp::Rename, &site)?;
    }
    fs::rename(from, to)
}

/// Fault-aware `fs::create_dir_all`.
pub fn create_dir_all(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    gate(FaultOp::CreateDir, &path.to_string_lossy())?;
    fs::create_dir_all(path)
}

/// Fault-aware `File::open`.
pub fn open(path: impl AsRef<Path>) -> io::Result<fs::File> {
    let path = path.as_ref();
    gate(FaultOp::Open, &path.to_string_lossy())?;
    fs::File::open(path)
}

/// Gate a read on an already-open stream (container block reads); `site`
/// is the stream name or path.
pub fn check_read(site: &str) -> io::Result<()> {
    gate(FaultOp::Read, site)
}

/// Gate a write on an already-open sink (container writers); `site` is
/// the stream name.
pub fn check_write(site: &str) -> io::Result<()> {
    gate(FaultOp::Write, site)
}

/// Gate an outbound TCP connect; `site` is the `host:port` address.
pub fn check_connect(site: &str) -> io::Result<()> {
    gate(FaultOp::Connect, site)
}

/// Gate an HTTP response read; `site` is the `host:port` address.
pub fn check_http_read(site: &str) -> io::Result<()> {
    gate(FaultOp::HttpRead, site)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The armed plan is process-global; serialize the tests that arm it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("btbx-faults-{tag}-{}", std::process::id()))
    }

    #[test]
    fn unarmed_wrappers_pass_through() {
        let _l = lock();
        disarm();
        let path = tmp("pass");
        write(&path, b"hello").unwrap();
        assert_eq!(read(&path).unwrap(), b"hello");
        assert_eq!(read_to_string(&path).unwrap(), "hello");
        let dst = tmp("pass-2");
        rename(&path, &dst).unwrap();
        assert!(open(&dst).is_ok());
        let _ = fs::remove_file(&dst);
    }

    #[test]
    fn nth_write_fails_enospc_and_scope_is_path_limited() {
        let _l = lock();
        let guard = arm(FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                op: FaultOp::Write,
                kind: ErrKind::Enospc,
                path: "scoped".into(),
                nth: 2,
                count: 1,
                delay_ms: 0,
            }],
        });
        let scoped = tmp("scoped");
        let other = tmp("other");
        write(&other, b"x").unwrap();
        write(&scoped, b"1").unwrap();
        let err = write(&scoped, b"2").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        write(&scoped, b"3").unwrap();
        assert_eq!(guard.injected(), 1);
        drop(guard);
        for p in [scoped, other] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn torn_write_persists_a_prefix() {
        let _l = lock();
        let guard = arm(FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                op: FaultOp::Write,
                kind: ErrKind::TornWrite,
                path: "torn".into(),
                nth: 1,
                count: 1,
                delay_ms: 0,
            }],
        });
        let path = tmp("torn");
        let err = write(&path, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"01234", "half the payload");
        drop(guard);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rename_fail_matches_either_endpoint_and_count_zero_is_forever() {
        let _l = lock();
        let guard = arm(FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                op: FaultOp::Rename,
                kind: ErrKind::RenameFail,
                path: "dest-side".into(),
                nth: 1,
                count: 0,
                delay_ms: 0,
            }],
        });
        let src = tmp("rn-src");
        fs::write(&src, b"x").unwrap();
        let dst = tmp("rn-dest-side");
        for _ in 0..3 {
            let err = rename(&src, &dst).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        }
        assert_eq!(guard.injected(), 3);
        assert!(fs::read(&src).is_ok(), "source untouched");
        drop(guard);
        let _ = fs::remove_file(&src);
    }

    #[test]
    fn seed_derived_nth_is_deterministic() {
        let _l = lock();
        let fire_at = |seed: u64| {
            let guard = arm(FaultPlan {
                seed,
                rules: vec![FaultRule {
                    op: FaultOp::Read,
                    kind: ErrKind::Eio,
                    path: "seeded".into(),
                    nth: 0,
                    count: 1,
                    delay_ms: 0,
                }],
            });
            let mut at = 0;
            for i in 1..=8 {
                if check_read("seeded").is_err() {
                    at = i;
                    break;
                }
            }
            drop(guard);
            at
        };
        let a = fire_at(7);
        assert_eq!(a, fire_at(7), "same seed, same schedule");
        assert!((1..=4).contains(&a));
    }

    #[test]
    fn plan_json_round_trips_through_serde() {
        let plan = FaultPlan {
            seed: 42,
            rules: vec![FaultRule {
                op: FaultOp::Connect,
                kind: ErrKind::ConnReset,
                path: "127.0.0.1".into(),
                nth: 3,
                count: 2,
                delay_ms: 5,
            }],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
