//! Branch target buffer (BTB) organizations from *“A Storage-Effective BTB
//! Organization for Servers”* (Asheim, Grot, Kumar — HPCA 2023).
//!
//! This crate implements, from scratch, every BTB organization the paper
//! evaluates or builds upon:
//!
//! * [`ConvBtb`] — the conventional set-associative BTB of Figure 1
//!   (full 46-bit targets, 12-bit hashed partial tags, true LRU),
//! * [`RBtb`] — Seznec's *Reduced BTB* (Figure 5): page offsets in a
//!   Main-BTB plus pointers into a deduplicated Page-BTB,
//! * [`PdedeBtb`] — the state-of-the-art *PDede* (Figure 6/7): partitioned
//!   Main/Page/Region BTBs, same-page ways with a delta bit, multi-cycle
//!   lookup for different-page branches,
//! * [`BtbX`] — the paper's contribution (Figure 8): an 8-way BTB whose ways
//!   store 0-, 4-, 5-, 7-, 9-, 11-, 19- and 25-bit *target offsets*
//!   (Arm64 sizing; x86 uses 0/5/6/7/9/12/20/27), backed by the tiny
//!   direct-mapped **BTB-XC** holding full targets for the ~1 % of branches
//!   whose offsets exceed the largest way.
//!
//! The common abstraction is the [`Btb`] trait; organizations are built for
//! a given storage budget through [`factory::build`] and budgets themselves
//! through [`storage`], which reproduces the paper's Table III and Table IV
//! bit-for-bit.
//!
//! # Target offsets
//!
//! The paper's key insight is that the *offset* — the low-order target bits
//! up to and including the most-significant bit in which branch PC and
//! target differ — is short for the vast majority of dynamic branches.
//! [`offset`] implements the Section III definition, including the
//! concatenation-based reconstruction that avoids a 48-bit adder:
//!
//! ```
//! use btbx_core::offset::{stored_offset_len, extract_offset, reconstruct_target};
//! use btbx_core::Arch;
//!
//! let pc = 0x0000_7f03_1a40u64;
//! let target = 0x0000_7f03_1a58u64;
//! let n = stored_offset_len(pc, target, Arch::Arm64);
//! assert_eq!(n, 3); // |0x40 ^ 0x58| differs at bit 4 (1-based 5); minus 2 alignment bits
//! let stored = extract_offset(target, n, Arch::Arm64);
//! assert_eq!(reconstruct_target(pc, stored, n, Arch::Arm64), target);
//! ```
//!
//! # Quick start
//!
//! ```
//! use btbx_core::{factory, Arch, BranchClass, BranchEvent, OrgKind, TargetSource};
//! use btbx_core::storage::BudgetPoint;
//!
//! // A 14.5 KB BTB-X, the paper's default evaluation budget.
//! let budget = BudgetPoint::Kb14_5.bits(Arch::Arm64);
//! let mut btb = factory::build(OrgKind::BtbX, budget, Arch::Arm64);
//!
//! let call = BranchEvent::taken(0x1000, 0x9000, BranchClass::CallDirect);
//! btb.update(&call);
//! let hit = btb.lookup(0x1000).expect("allocated at commit");
//! assert_eq!(hit.target, TargetSource::Address(0x9000));
//! ```

pub mod batch;
pub mod btb;
pub mod conv;
pub mod engine;
pub mod factory;
pub mod faults;
pub mod hash;
pub mod hooger;
pub mod infinite;
pub mod offset;
pub mod pdede;
pub mod rbtb;
pub mod replacement;
pub mod snap;
pub mod spec;
pub mod stats;
pub mod storage;
pub mod tag;
pub mod types;
pub mod x;

pub use batch::EngineBank;
pub use btb::{Btb, BtbHit, HitSite};
pub use conv::ConvBtb;
pub use engine::BtbEngine;
pub use factory::{build, OrgKind};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hooger::MixedBtb;
pub use infinite::InfiniteBtb;
pub use pdede::PdedeBtb;
pub use rbtb::RBtb;
pub use snap::{SnapError, SnapReader, SnapWriter, Snapshot};
pub use spec::{BtbSpec, Budget, SpecError};
pub use stats::{AccessCounts, StorageReport};
pub use types::{Arch, BranchClass, BranchEvent, BtbBranchType, TargetSource};
pub use x::BtbX;
