//! Conventional set-associative BTB (paper Figure 1).
//!
//! Every entry stores a full 46-bit target (48-bit virtual address space,
//! 4-byte-aligned Arm64 instructions), a 12-bit hashed partial tag, a 2-bit
//! branch type, a valid bit and 3 bits of LRU state — 64 bits per entry.
//! This is the baseline whose storage the paper shows to be ~72 % target
//! bits, and the organization BTB-X beats by 2.24× in branch capacity.

use crate::btb::{Btb, BtbHit, HitSite};
use crate::replacement::LruSet;
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::stats::{AccessCounts, StorageReport};
use crate::tag::{partial_tag, set_index, PARTIAL_TAG_BITS};
use crate::types::{Arch, BranchEvent, BtbBranchType, TargetSource};

/// Bits per conventional BTB entry (Figure 1): valid 1 + tag 12 + type 2 +
/// target 46 + replacement 3.
pub const CONV_ENTRY_BITS: u64 = 1 + PARTIAL_TAG_BITS as u64 + 2 + 46 + 3;

/// Associativity of the conventional BTB (matching the 8-way BTB-X so the
/// comparison isolates the entry organization).
pub const CONV_WAYS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    tag: u16,
    btype: BtbBranchType,
    target: u64,
}

impl Entry {
    const INVALID: Entry = Entry {
        valid: false,
        tag: 0,
        btype: BtbBranchType::Unconditional,
        target: 0,
    };

    fn save(&self, w: &mut SnapWriter) {
        w.bool(self.valid);
        w.u16(self.tag);
        w.u8(self.btype.snap_code());
        w.u64(self.target);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Entry {
            valid: r.bool()?,
            tag: r.u16()?,
            btype: BtbBranchType::from_snap_code(r.u8()?)?,
            target: r.u64()?,
        })
    }
}

/// The conventional BTB of Figure 1.
#[derive(Debug, Clone)]
pub struct ConvBtb {
    arch: Arch,
    sets: usize,
    entries: Vec<Entry>, // sets × CONV_WAYS, row-major
    lru: Vec<LruSet>,
    counts: AccessCounts,
}

impl ConvBtb {
    /// Build a conventional BTB with exactly `entries` entries
    /// (`entries` is rounded down to a multiple of the associativity).
    ///
    /// # Panics
    ///
    /// Panics if fewer than [`CONV_WAYS`] entries are requested.
    pub fn with_entries(entries: usize, arch: Arch) -> Self {
        assert!(entries >= CONV_WAYS, "need at least one full set");
        let sets = entries / CONV_WAYS;
        ConvBtb {
            arch,
            sets,
            entries: vec![Entry::INVALID; sets * CONV_WAYS],
            lru: vec![LruSet::new(CONV_WAYS); sets],
            counts: AccessCounts::default(),
        }
    }

    /// Build the largest conventional BTB that fits in `budget_bits`
    /// (Table IV: `budget / 64` entries).
    pub fn with_budget_bits(budget_bits: u64, arch: Arch) -> Self {
        let entries = (budget_bits / CONV_ENTRY_BITS) as usize;
        Self::with_entries(entries, arch)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * CONV_WAYS
    }

    fn find(&self, set: usize, tag: u16) -> Option<usize> {
        let base = set * CONV_WAYS;
        (0..CONV_WAYS).find(|&w| {
            let e = &self.entries[base + w];
            e.valid && e.tag == tag
        })
    }
}

impl Btb for ConvBtb {
    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        self.counts.reads += 1;
        let set = set_index(pc, self.sets, self.arch);
        let tag = partial_tag(pc, self.sets, self.arch);
        let way = self.find(set, tag)?;
        self.counts.read_hits += 1;
        self.lru[set].touch(way);
        let e = self.entries[set * CONV_WAYS + way];
        let target = if e.btype == BtbBranchType::Return {
            TargetSource::ReturnStack
        } else {
            TargetSource::Address(e.target)
        };
        Some(BtbHit {
            btype: e.btype,
            target,
            site: HitSite::Main,
        })
    }

    #[inline]
    fn update(&mut self, event: &BranchEvent) {
        if !event.taken {
            return;
        }
        let set = set_index(event.pc, self.sets, self.arch);
        let tag = partial_tag(event.pc, self.sets, self.arch);
        let base = set * CONV_WAYS;
        let btype = event.class.btb_type();
        if let Some(way) = self.find(set, tag) {
            let e = &mut self.entries[base + way];
            if e.target != event.target || e.btype != btype {
                e.target = event.target;
                e.btype = btype;
                self.counts.writes += 1;
            }
            self.lru[set].touch(way);
            return;
        }
        // Prefer an invalid way; otherwise evict the LRU way.
        let way = (0..CONV_WAYS)
            .find(|&w| !self.entries[base + w].valid)
            .unwrap_or_else(|| self.lru[set].victim());
        self.entries[base + way] = Entry {
            valid: true,
            tag,
            btype,
            target: event.target,
        };
        self.lru[set].touch(way);
        self.counts.writes += 1;
    }

    fn storage(&self) -> StorageReport {
        let entries = self.entries() as u64;
        StorageReport {
            name: "conv".into(),
            total_bits: entries * CONV_ENTRY_BITS,
            branch_capacity: entries,
            partitions: vec![("main".into(), entries * CONV_ENTRY_BITS)],
        }
    }

    fn counts(&self) -> AccessCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts.reset();
    }

    fn clear(&mut self) {
        self.entries.fill(Entry::INVALID);
        for l in &mut self.lru {
            *l = LruSet::new(CONV_WAYS);
        }
    }

    fn name(&self) -> &'static str {
        "conv"
    }
}

impl Snapshot for ConvBtb {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.sets as u64);
        for e in &self.entries {
            e.save(w);
        }
        for l in &self.lru {
            l.save_state(w);
        }
        self.counts.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.sets as u64, "conv set count")?;
        for e in &mut self.entries {
            *e = Entry::load(r)?;
        }
        for l in &mut self.lru {
            l.restore_state(r)?;
        }
        self.counts.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BranchClass;

    fn btb() -> ConvBtb {
        ConvBtb::with_entries(256, Arch::Arm64)
    }

    #[test]
    fn entry_is_64_bits() {
        assert_eq!(CONV_ENTRY_BITS, 64);
    }

    #[test]
    fn miss_then_update_then_hit() {
        let mut b = btb();
        assert!(b.lookup(0x4000).is_none());
        b.update(&BranchEvent::taken(
            0x4000,
            0x5000,
            BranchClass::UncondDirect,
        ));
        let hit = b.lookup(0x4000).expect("hit after update");
        assert_eq!(hit.target, TargetSource::Address(0x5000));
        assert_eq!(hit.btype, BtbBranchType::Unconditional);
        assert_eq!(hit.site, HitSite::Main);
    }

    #[test]
    fn not_taken_branches_do_not_allocate() {
        let mut b = btb();
        b.update(&BranchEvent::not_taken(0x4000, 0x5000));
        assert!(
            b.lookup(0x4000).is_none(),
            "Section VI-A: taken-only update"
        );
    }

    #[test]
    fn returns_resolve_via_ras() {
        let mut b = btb();
        b.update(&BranchEvent::taken(
            0x4000,
            0x9999_0000,
            BranchClass::Return,
        ));
        assert_eq!(b.lookup(0x4000).unwrap().target, TargetSource::ReturnStack);
    }

    #[test]
    fn target_change_rewrites_entry() {
        let mut b = btb();
        b.update(&BranchEvent::taken(
            0x4000,
            0x5000,
            BranchClass::CallIndirect,
        ));
        b.update(&BranchEvent::taken(
            0x4000,
            0x7000,
            BranchClass::CallIndirect,
        ));
        assert_eq!(
            b.lookup(0x4000).unwrap().target,
            TargetSource::Address(0x7000)
        );
        assert_eq!(b.counts().writes, 2, "both allocation and re-target count");
    }

    #[test]
    fn steady_state_update_is_not_a_write() {
        let mut b = btb();
        let ev = BranchEvent::taken(0x4000, 0x5000, BranchClass::UncondDirect);
        b.update(&ev);
        b.update(&ev);
        b.update(&ev);
        assert_eq!(b.counts().writes, 1, "unchanged entries are not rewritten");
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut b = ConvBtb::with_entries(8, Arch::Arm64); // one set
                                                           // Fill all 8 ways with branches mapping to set 0.
        let stride = 4u64; // consecutive instruction words share the set in a 1-set BTB
        for i in 0..8u64 {
            b.update(&BranchEvent::taken(
                0x1000 + i * stride,
                0x2000,
                BranchClass::UncondDirect,
            ));
        }
        // Touch the first so it is MRU, then insert a ninth branch.
        assert!(b.lookup(0x1000).is_some());
        b.update(&BranchEvent::taken(
            0x9000,
            0x2000,
            BranchClass::UncondDirect,
        ));
        assert!(b.lookup(0x1000).is_some(), "MRU entry must survive");
        assert!(b.lookup(0x9000).is_some());
    }

    #[test]
    fn budget_sizing_matches_table_iv() {
        // Table IV: 0.9 KB (7424 bits) → 116 entries … 58 KB → 7424 entries.
        let expect = [
            (7424u64, 116usize),
            (14848, 232),
            (29696, 464),
            (59392, 928),
            (118784, 1856),
            (237568, 3712),
            (475136, 7424),
        ];
        for (bits, entries) in expect {
            let b = ConvBtb::with_budget_bits(bits, Arch::Arm64);
            // Rounded down to a multiple of 8 ways.
            assert_eq!(b.entries(), entries / 8 * 8, "budget {bits}");
        }
    }

    #[test]
    fn storage_report_is_consistent() {
        let b = btb();
        let r = b.storage();
        assert_eq!(r.total_bits, 256 * 64);
        assert_eq!(r.partition_sum(), r.total_bits);
        assert_eq!(r.branch_capacity, 256);
    }

    #[test]
    fn clear_empties_everything() {
        let mut b = btb();
        b.update(&BranchEvent::taken(
            0x4000,
            0x5000,
            BranchClass::UncondDirect,
        ));
        b.clear();
        assert!(b.lookup(0x4000).is_none());
    }
}
