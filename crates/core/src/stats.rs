//! Access accounting and storage reporting for BTB organizations.
//!
//! [`AccessCounts`] mirrors the access categories of the paper's Table V
//! (reads, writes, and the Page-BTB reads/writes/searches that only PDede
//! and R-BTB incur); [`StorageReport`] itemizes the bit cost of each
//! partition the way Tables III and IV do.

use serde::{Deserialize, Serialize};

/// Dynamic access counters for one BTB instance.
///
/// The main `reads`/`writes` counters cover the primary structure
/// (Conv-BTB, BTB-X including BTB-XC, or PDede's Main-BTB). The `page_*`
/// and `region_*` counters cover the indirection structures of R-BTB and
/// PDede; they stay zero for the other organizations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Main-structure lookups (every front-end BTB probe).
    pub reads: u64,
    /// Main-structure lookups that hit.
    pub read_hits: u64,
    /// Main-structure entry writes (allocations and target changes).
    pub writes: u64,
    /// Page-BTB pointer-indexed reads (different-page PDede hits, all
    /// R-BTB hits).
    pub page_reads: u64,
    /// Page-BTB entry writes (new page numbers).
    pub page_writes: u64,
    /// Page-BTB associative searches performed on allocation.
    pub page_searches: u64,
    /// Region-BTB reads (different-page PDede hits).
    pub region_reads: u64,
    /// Region-BTB writes (new region numbers).
    pub region_writes: u64,
    /// Region-BTB associative searches performed on allocation.
    pub region_searches: u64,
}

impl AccessCounts {
    /// Main-structure read hit rate in `[0, 1]`; `0` when no reads occurred.
    pub fn hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_hits as f64 / self.reads as f64
        }
    }

    /// Merge counters from another instance (used when aggregating
    /// per-workload simulations).
    pub fn merge(&mut self, other: &AccessCounts) {
        self.reads += other.reads;
        self.read_hits += other.read_hits;
        self.writes += other.writes;
        self.page_reads += other.page_reads;
        self.page_writes += other.page_writes;
        self.page_searches += other.page_searches;
        self.region_reads += other.region_reads;
        self.region_writes += other.region_writes;
        self.region_searches += other.region_searches;
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = AccessCounts::default();
    }
}

impl crate::snap::Snapshot for AccessCounts {
    fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.reads);
        w.u64(self.read_hits);
        w.u64(self.writes);
        w.u64(self.page_reads);
        w.u64(self.page_writes);
        w.u64(self.page_searches);
        w.u64(self.region_reads);
        w.u64(self.region_writes);
        w.u64(self.region_searches);
    }

    fn restore_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.reads = r.u64()?;
        self.read_hits = r.u64()?;
        self.writes = r.u64()?;
        self.page_reads = r.u64()?;
        self.page_writes = r.u64()?;
        self.page_searches = r.u64()?;
        self.region_reads = r.u64()?;
        self.region_writes = r.u64()?;
        self.region_searches = r.u64()?;
        Ok(())
    }
}

/// Itemized storage cost of a BTB organization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageReport {
    /// Organization name (for reports).
    pub name: String,
    /// Total storage in bits, including every partition.
    pub total_bits: u64,
    /// Number of branches the organization can track (paper's Table IV
    /// "Branches" column).
    pub branch_capacity: u64,
    /// Per-partition breakdown: `(partition name, bits)`.
    pub partitions: Vec<(String, u64)>,
}

impl StorageReport {
    /// Total storage in KB (1 KB = 1024 bytes), as the paper reports it.
    pub fn total_kb(&self) -> f64 {
        self.total_bits as f64 / 8.0 / 1024.0
    }

    /// Sum of the partition bits; equals `total_bits` by construction in
    /// all our organizations (checked in tests).
    pub fn partition_sum(&self) -> u64 {
        self.partitions.iter().map(|(_, b)| *b).sum()
    }
}

impl std::fmt::Display for StorageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.2} KB, {} branches",
            self.name,
            self.total_kb(),
            self.branch_capacity
        )?;
        for (part, bits) in &self.partitions {
            write!(
                f,
                "\n  {part}: {bits} bits ({:.3} KB)",
                *bits as f64 / 8192.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_reads() {
        assert_eq!(AccessCounts::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_basic() {
        let c = AccessCounts {
            reads: 10,
            read_hits: 7,
            ..AccessCounts::default()
        };
        assert!((c.hit_rate() - 0.7).abs() < 1e-12);
    }

    fn counts(base: u64) -> AccessCounts {
        AccessCounts {
            reads: base + 1,
            read_hits: base + 2,
            writes: base + 3,
            page_reads: base + 4,
            page_writes: base + 5,
            page_searches: base + 6,
            region_reads: base + 7,
            region_writes: base + 8,
            region_searches: base + 9,
        }
    }

    #[test]
    fn merge_adds_every_field() {
        // Two *distinct* operands: a self-merge would hide a field that
        // copies instead of adds (both look like doubling).
        let mut a = counts(0);
        a.merge(&counts(100));
        assert_eq!(
            a,
            AccessCounts {
                reads: 102,
                read_hits: 104,
                writes: 106,
                page_reads: 108,
                page_writes: 110,
                page_searches: 112,
                region_reads: 114,
                region_writes: 116,
                region_searches: 118,
            }
        );
    }

    #[test]
    fn merge_has_the_default_as_identity() {
        let reference = counts(7);
        let mut left = AccessCounts::default();
        left.merge(&reference);
        assert_eq!(left, reference, "identity ⊕ x = x");
        let mut right = reference;
        right.merge(&AccessCounts::default());
        assert_eq!(right, reference, "x ⊕ identity = x");
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (counts(1), counts(50), counts(4000));
        // (a ⊕ b) ⊕ c
        let mut ab = a;
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "shard merge order must not matter");
        // b ⊕ a
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
    }

    #[test]
    fn storage_report_kb() {
        let r = StorageReport {
            name: "test".into(),
            total_bits: 8 * 1024 * 8,
            branch_capacity: 1,
            partitions: vec![("main".into(), 8 * 1024 * 8)],
        };
        assert!((r.total_kb() - 8.0).abs() < 1e-12);
        assert_eq!(r.partition_sum(), r.total_bits);
        assert!(r.to_string().contains("test"));
    }
}
