//! Statically dispatched BTB engine: every organization behind one enum.
//!
//! The [`crate::Btb`] trait keeps the simulator open to out-of-tree
//! organizations, but paying a virtual call on *every* fetch-stage probe
//! is the single hottest cost in a trace replay. [`BtbEngine`] wraps each
//! [`OrgKind`] variant concretely, so a simulator generic over
//! `B: Btb` monomorphizes the whole lookup/update hot path — way search,
//! tag match, replacement update — with no vtable and no per-event
//! allocation. The boxed [`crate::factory::build`] path remains as the
//! compatibility route for custom organizations; `tests/btb_differential.rs`
//! pins the two paths to identical per-event behaviour.
//!
//! ```
//! use btbx_core::engine::BtbEngine;
//! use btbx_core::storage::BudgetPoint;
//! use btbx_core::types::{Arch, BranchClass, BranchEvent};
//! use btbx_core::OrgKind;
//!
//! let mut engine = BtbEngine::build(
//!     OrgKind::BtbX,
//!     BudgetPoint::Kb14_5.bits(Arch::Arm64),
//!     Arch::Arm64,
//! );
//! engine.update(&BranchEvent::taken(0x1000, 0x1040, BranchClass::CondDirect));
//! assert!(engine.lookup(0x1000).is_some());
//! assert_eq!(engine.kind(), OrgKind::BtbX);
//! ```

use crate::btb::{Btb, BtbHit};
use crate::conv::ConvBtb;
use crate::factory::{btbx_entries_for_budget, OrgKind};
use crate::hooger::MixedBtb;
use crate::infinite::InfiniteBtb;
use crate::pdede::PdedeBtb;
use crate::rbtb::RBtb;
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::stats::{AccessCounts, StorageReport};
use crate::types::{Arch, BranchEvent};
use crate::x::{BtbX, BtbXConfig};

/// A concretely stored BTB organization: one variant per [`OrgKind`], so
/// every method dispatches through a jump table the compiler can flatten
/// instead of a vtable. Build one with [`BtbEngine::build`] or
/// [`crate::spec::BtbSpec::build_engine`].
#[derive(Debug, Clone)]
pub enum BtbEngine {
    /// Conventional set-associative BTB ([`OrgKind::Conv`]).
    Conv(ConvBtb),
    /// PDede ([`OrgKind::Pdede`]).
    Pdede(PdedeBtb),
    /// BTB-X with BTB-XC ([`OrgKind::BtbX`]).
    BtbX(BtbX),
    /// Seznec's R-BTB ([`OrgKind::RBtb`]).
    RBtb(RBtb),
    /// Hoogerbrugge's mixed-entry-size BTB ([`OrgKind::Hoogerbrugge`]).
    Hoogerbrugge(MixedBtb),
    /// Idealized infinite BTB ([`OrgKind::Infinite`]).
    Infinite(InfiniteBtb),
    /// Ablation: BTB-X with eight uniform widest ways
    /// ([`OrgKind::BtbXUniform`]).
    BtbXUniform(BtbX),
    /// Ablation: BTB-X without the BTB-XC overflow structure
    /// ([`OrgKind::BtbXNoXc`]).
    BtbXNoXc(BtbX),
}

/// Delegate a method body to the wrapped concrete organization.
macro_rules! dispatch {
    ($self:expr, $b:ident => $body:expr) => {
        match $self {
            BtbEngine::Conv($b) => $body,
            BtbEngine::Pdede($b) => $body,
            BtbEngine::BtbX($b) => $body,
            BtbEngine::RBtb($b) => $body,
            BtbEngine::Hoogerbrugge($b) => $body,
            BtbEngine::Infinite($b) => $body,
            BtbEngine::BtbXUniform($b) => $body,
            BtbEngine::BtbXNoXc($b) => $body,
        }
    };
}

impl BtbEngine {
    /// Build the engine for `kind` at `budget_bits`, sized exactly like
    /// [`crate::factory::build`] sizes the boxed equivalent.
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small for the smallest legal instance
    /// (same contract as [`crate::factory::build`]); use
    /// [`crate::spec::BtbSpec::build_engine`] for a typed error instead.
    pub fn build(kind: OrgKind, budget_bits: u64, arch: Arch) -> BtbEngine {
        match kind {
            OrgKind::Conv => BtbEngine::Conv(ConvBtb::with_budget_bits(budget_bits, arch)),
            OrgKind::Pdede => BtbEngine::Pdede(PdedeBtb::with_budget_bits(budget_bits, arch)),
            OrgKind::BtbX => BtbEngine::BtbX(BtbX::with_entries(
                btbx_entries_for_budget(budget_bits, arch),
                arch,
            )),
            OrgKind::RBtb => BtbEngine::RBtb(RBtb::with_budget_bits(budget_bits, arch)),
            OrgKind::Hoogerbrugge => {
                BtbEngine::Hoogerbrugge(MixedBtb::with_budget_bits(budget_bits, arch))
            }
            OrgKind::Infinite => BtbEngine::Infinite(InfiniteBtb::new()),
            OrgKind::BtbXUniform => {
                let entries = btbx_entries_for_budget(budget_bits, arch);
                BtbEngine::BtbXUniform(BtbX::with_config(entries, arch, BtbXConfig::uniform(arch)))
            }
            OrgKind::BtbXNoXc => {
                let entries = btbx_entries_for_budget(budget_bits, arch);
                let config = BtbXConfig {
                    with_overflow: false,
                    ..BtbXConfig::paper(arch)
                };
                BtbEngine::BtbXNoXc(BtbX::with_config(entries, arch, config))
            }
        }
    }

    /// The organization this engine embodies.
    pub const fn kind(&self) -> OrgKind {
        match self {
            BtbEngine::Conv(_) => OrgKind::Conv,
            BtbEngine::Pdede(_) => OrgKind::Pdede,
            BtbEngine::BtbX(_) => OrgKind::BtbX,
            BtbEngine::RBtb(_) => OrgKind::RBtb,
            BtbEngine::Hoogerbrugge(_) => OrgKind::Hoogerbrugge,
            BtbEngine::Infinite(_) => OrgKind::Infinite,
            BtbEngine::BtbXUniform(_) => OrgKind::BtbXUniform,
            BtbEngine::BtbXNoXc(_) => OrgKind::BtbXNoXc,
        }
    }

    /// Probe at fetch time (see [`Btb::lookup`]).
    #[inline]
    pub fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        dispatch!(self, b => b.lookup(pc))
    }

    /// Commit-time update (see [`Btb::update`]).
    #[inline]
    pub fn update(&mut self, event: &BranchEvent) {
        dispatch!(self, b => b.update(event))
    }

    /// Target-consumption notification (see [`Btb::note_target_consumed`]).
    #[inline]
    pub fn note_target_consumed(&mut self, hit: &BtbHit) {
        dispatch!(self, b => b.note_target_consumed(hit))
    }

    /// Itemized storage cost (see [`Btb::storage`]).
    pub fn storage(&self) -> StorageReport {
        dispatch!(self, b => b.storage())
    }

    /// Dynamic access counters (see [`Btb::counts`]).
    #[inline]
    pub fn counts(&self) -> AccessCounts {
        dispatch!(self, b => b.counts())
    }

    /// Reset dynamic access counters (see [`Btb::reset_counts`]).
    pub fn reset_counts(&mut self) {
        dispatch!(self, b => b.reset_counts())
    }

    /// Remove all entries (see [`Btb::clear`]).
    pub fn clear(&mut self) {
        dispatch!(self, b => b.clear())
    }

    /// Short organization name (see [`Btb::name`]).
    pub fn name(&self) -> &'static str {
        dispatch!(self, b => b.name())
    }

    /// Trackable branches (see [`Btb::branch_capacity`]).
    pub fn branch_capacity(&self) -> u64 {
        dispatch!(self, b => b.branch_capacity())
    }

    /// Stable snapshot discriminant of the active variant. Distinct from
    /// [`OrgKind`] values only in being a codec contract: reordering
    /// `OrgKind` must not silently change snapshot bytes.
    const fn snap_code(&self) -> u8 {
        match self {
            BtbEngine::Conv(_) => 0,
            BtbEngine::Pdede(_) => 1,
            BtbEngine::BtbX(_) => 2,
            BtbEngine::RBtb(_) => 3,
            BtbEngine::Hoogerbrugge(_) => 4,
            BtbEngine::Infinite(_) => 5,
            BtbEngine::BtbXUniform(_) => 6,
            BtbEngine::BtbXNoXc(_) => 7,
        }
    }
}

impl Snapshot for BtbEngine {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u8(self.snap_code());
        dispatch!(self, b => b.save_state(w))
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.u8()? != self.snap_code() {
            return Err(SnapError::Corrupt("btb engine organization"));
        }
        dispatch!(self, b => b.restore_state(r))
    }
}

impl Btb for BtbEngine {
    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        BtbEngine::lookup(self, pc)
    }

    #[inline]
    fn update(&mut self, event: &BranchEvent) {
        BtbEngine::update(self, event)
    }

    #[inline]
    fn note_target_consumed(&mut self, hit: &BtbHit) {
        BtbEngine::note_target_consumed(self, hit)
    }

    fn storage(&self) -> StorageReport {
        BtbEngine::storage(self)
    }

    #[inline]
    fn counts(&self) -> AccessCounts {
        BtbEngine::counts(self)
    }

    fn reset_counts(&mut self) {
        BtbEngine::reset_counts(self)
    }

    fn clear(&mut self) {
        BtbEngine::clear(self)
    }

    fn name(&self) -> &'static str {
        BtbEngine::name(self)
    }

    fn branch_capacity(&self) -> u64 {
        BtbEngine::branch_capacity(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::BudgetPoint;
    use crate::types::BranchClass;

    #[test]
    fn every_kind_builds_and_reports_itself() {
        for kind in OrgKind::ALL {
            let bits = BudgetPoint::Kb14_5.bits(Arch::Arm64);
            let mut e = BtbEngine::build(kind, bits, Arch::Arm64);
            assert_eq!(e.kind(), kind);
            let ev = BranchEvent::taken(0x2000, 0x2080, BranchClass::CondDirect);
            e.update(&ev);
            assert!(e.lookup(0x2000).is_some(), "{kind}");
        }
    }

    #[test]
    fn engine_matches_boxed_factory_sizing() {
        for kind in OrgKind::ALL {
            for bp in [BudgetPoint::Kb0_9, BudgetPoint::Kb14_5] {
                let bits = bp.bits(Arch::Arm64);
                let engine = BtbEngine::build(kind, bits, Arch::Arm64);
                let boxed = crate::factory::build(kind, bits, Arch::Arm64);
                assert_eq!(
                    engine.storage().total_bits,
                    boxed.storage().total_bits,
                    "{kind} at {bp}"
                );
                assert_eq!(engine.name(), boxed.name(), "{kind}");
                assert_eq!(
                    engine.branch_capacity(),
                    boxed.branch_capacity(),
                    "{kind} at {bp}"
                );
            }
        }
    }

    #[test]
    fn engine_is_usable_through_the_trait() {
        fn probe<B: Btb>(btb: &mut B) -> bool {
            btb.update(&BranchEvent::taken(0x40, 0x80, BranchClass::UncondDirect));
            btb.lookup(0x40).is_some()
        }
        let mut e = BtbEngine::build(
            OrgKind::Conv,
            BudgetPoint::Kb0_9.bits(Arch::Arm64),
            Arch::Arm64,
        );
        assert!(probe(&mut e));
    }

    fn pseudo_events(seed: u64, n: usize) -> Vec<BranchEvent> {
        // Deterministic xorshift stream exercising every branch class,
        // short and long offsets, and not-taken conditionals.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let r = next();
                let pc = (r % 4096) * 4 + 0x1_0000;
                let class = BranchClass::ALL[(r >> 12) as usize % BranchClass::ALL.len()];
                let span = if r & (1 << 20) != 0 { 1 << 27 } else { 1 << 9 };
                let target = pc ^ ((r >> 24) % span * 4).max(4);
                BranchEvent {
                    pc,
                    target,
                    class,
                    taken: class.is_always_taken() || r & (1 << 21) != 0,
                }
            })
            .collect()
    }

    #[test]
    fn snapshot_restore_continues_bit_identically_for_every_kind() {
        use crate::snap::{restore_sealed, save_sealed};
        let bits = BudgetPoint::Kb0_9.bits(Arch::Arm64);
        for kind in OrgKind::ALL {
            let key = format!("{kind}/test");
            let mut original = BtbEngine::build(kind, bits, Arch::Arm64);
            for ev in pseudo_events(7, 4000) {
                original.update(&ev);
                original.lookup(ev.pc);
            }
            let sealed = save_sealed(&key, &original);
            let mut restored = BtbEngine::build(kind, bits, Arch::Arm64);
            restore_sealed(&mut restored, &key, &sealed).unwrap();
            // Continue both with the same stream: every prediction and
            // every counter must stay identical.
            for ev in pseudo_events(99, 4000) {
                assert_eq!(original.lookup(ev.pc), restored.lookup(ev.pc), "{kind}");
                original.update(&ev);
                restored.update(&ev);
            }
            assert_eq!(original.counts(), restored.counts(), "{kind}");
            assert_eq!(
                save_sealed(&key, &original),
                save_sealed(&key, &restored),
                "{kind}: snapshots of identical state must be byte-identical"
            );
        }
    }

    #[test]
    fn snapshot_rejects_the_wrong_organization() {
        let bits = BudgetPoint::Kb0_9.bits(Arch::Arm64);
        let conv = BtbEngine::build(OrgKind::Conv, bits, Arch::Arm64);
        let mut w = SnapWriter::new();
        conv.save_state(&mut w);
        let bytes = w.into_vec();
        let mut pdede = BtbEngine::build(OrgKind::Pdede, bits, Arch::Arm64);
        let err = pdede
            .restore_state(&mut SnapReader::new(&bytes))
            .unwrap_err();
        assert_eq!(err, SnapError::Corrupt("btb engine organization"));
    }

    #[test]
    fn snapshot_rejects_a_different_geometry() {
        let mut small = BtbEngine::build(
            OrgKind::Conv,
            BudgetPoint::Kb0_9.bits(Arch::Arm64),
            Arch::Arm64,
        );
        let big = BtbEngine::build(
            OrgKind::Conv,
            BudgetPoint::Kb14_5.bits(Arch::Arm64),
            Arch::Arm64,
        );
        let mut w = SnapWriter::new();
        big.save_state(&mut w);
        let bytes = w.into_vec();
        assert!(small.restore_state(&mut SnapReader::new(&bytes)).is_err());
    }

    #[test]
    fn clear_and_counts_delegate() {
        let mut e = BtbEngine::build(
            OrgKind::BtbX,
            BudgetPoint::Kb0_9.bits(Arch::Arm64),
            Arch::Arm64,
        );
        e.update(&BranchEvent::taken(0x100, 0x140, BranchClass::CondDirect));
        assert!(e.lookup(0x100).is_some());
        assert!(e.counts().reads > 0);
        e.clear();
        assert!(e.lookup(0x100).is_none());
        e.reset_counts();
        assert_eq!(e.counts().reads, 0);
    }
}
