//! Set indexing and partial-tag hashing shared by all BTB organizations.
//!
//! BTBs are indexed with low-order PC bits (after dropping alignment bits)
//! and store a 12-bit *partial tag* produced by hashing the remaining
//! high-order bits (Section II-A). Partial tags trade a small amount of
//! aliasing for a large storage saving; aliased hits are realistic BTB
//! behaviour and are resolved by the pipeline like any other target
//! misprediction.

use crate::types::Arch;

/// Width of the hashed partial tag used by every organization (Figure 1).
pub const PARTIAL_TAG_BITS: u32 = 12;

/// Set index for `pc` in a structure with `sets` sets.
///
/// `sets` does not have to be a power of two: the paper's entry counts
/// (e.g. 1856 conventional entries at 14.5 KB) imply non-power-of-two set
/// counts, which hardware realizes with a cheap modulo stage and we realize
/// with `%`.
#[inline]
pub fn set_index(pc: u64, sets: usize, arch: Arch) -> usize {
    debug_assert!(sets > 0);
    ((pc >> arch.align_bits()) % sets as u64) as usize
}

/// 12-bit partial tag for `pc` in a structure with `sets` sets.
///
/// The *entire* instruction address (above the alignment bits) is mixed
/// and folded into [`PARTIAL_TAG_BITS`] bits. Hashing all bits — rather
/// than only those "above the index" — matters for non-power-of-two set
/// counts: with modulo indexing, two different PCs in the same set can
/// share every bit above any fixed cut-off, which would make a truncated
/// tag alias systematically. With a full-address hash, aliasing is the
/// intended ~`2^-12` per valid entry.
#[inline]
pub fn partial_tag(pc: u64, sets: usize, arch: Arch) -> u16 {
    let _ = sets; // the tag is index-independent by design (see above)
    let mut v = pc >> arch.align_bits();
    // xorshift-multiply mixing (splitmix64 finalizer) decorrelates the
    // structured address patterns of code layouts.
    v ^= v >> 33;
    v = v.wrapping_mul(0xff51_afd7_ed55_8ccd);
    v ^= v >> 29;
    v = v.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    v ^= v >> 32;
    let mut tag = 0u64;
    while v != 0 {
        tag ^= v & ((1 << PARTIAL_TAG_BITS) - 1);
        v >>= PARTIAL_TAG_BITS;
    }
    tag as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_stable_and_in_range() {
        for sets in [1usize, 13, 32, 232, 256, 1024] {
            for pc in [0u64, 4, 0x7f00_1234_5678, !3u64] {
                let i = set_index(pc, sets, Arch::Arm64);
                assert!(i < sets);
                assert_eq!(i, set_index(pc, sets, Arch::Arm64));
            }
        }
    }

    #[test]
    fn tag_fits_in_12_bits() {
        for pc in [0u64, 0xdead_beef_cafe, u64::MAX] {
            assert!(partial_tag(pc, 256, Arch::Arm64) < (1 << PARTIAL_TAG_BITS));
        }
    }

    #[test]
    fn tags_differ_for_distant_pcs_with_same_index() {
        // Two PCs that map to the same set but come from different pages
        // should (almost always) have different tags.
        let sets = 256usize;
        let a = 0x0000_0001_0000_1000u64;
        let b = a + (sets as u64) * 4 * 1024; // same index, different high bits
        assert_eq!(
            set_index(a, sets, Arch::Arm64),
            set_index(b, sets, Arch::Arm64)
        );
        assert_ne!(
            partial_tag(a, sets, Arch::Arm64),
            partial_tag(b, sets, Arch::Arm64)
        );
    }

    #[test]
    fn alignment_bits_do_not_affect_x86_indexing() {
        // On x86 the low bits participate in the index.
        assert_ne!(
            set_index(0x1001, 64, Arch::X86),
            set_index(0x1002, 64, Arch::X86)
        );
        // On Arm64 addresses within one instruction word share the index.
        assert_eq!(
            set_index(0x1000, 64, Arch::Arm64),
            set_index(0x1000, 64, Arch::Arm64)
        );
    }
}
