//! Target-offset arithmetic (paper Section III).
//!
//! The *target offset* of a branch is defined as the `n` least-significant
//! bits of the target address, where `n` is the (1-based) position of the
//! most-significant bit that differs between the branch PC and the target.
//! All bits above position `n` are identical in PC and target, so the full
//! target can be recovered by concatenating the high PC bits with the
//! stored offset — no adder required (contrast with a numerical-delta
//! encoding, which would need a 48-bit adder).
//!
//! On Arm64 the two low bits of every instruction address are zero, so they
//! are dropped before storage; on x86 they are kept (Section VI-G).

use crate::types::Arch;

/// 1-based bit position of the most-significant differing bit between
/// `pc` and `target`; `0` when the two addresses are identical.
///
/// This is the `n` of the paper's Figure 3: for
/// `pc = 0b...1011_01000`, `target = 0b...1011_11000` the addresses first
/// differ at (1-based) position 5, so the raw offset is the five low target
/// bits `11000`.
#[inline]
pub fn msb_diff_pos(pc: u64, target: u64) -> u32 {
    let diff = pc ^ target;
    64 - diff.leading_zeros()
}

/// Number of offset bits that must be *stored* in a BTB entry for this
/// PC/target pair: the raw offset length minus the architecture's
/// always-zero alignment bits.
///
/// Returns for the Figure 3 example (`n = 5`, Arm64): `3` — the paper
/// stores only `110`.
#[inline]
pub fn stored_offset_len(pc: u64, target: u64, arch: Arch) -> u32 {
    msb_diff_pos(pc, target).saturating_sub(arch.align_bits())
}

/// Extract the `n_stored`-bit offset of `target` for storage in a BTB way.
///
/// The stored value is simply the low `n_stored` bits of the target after
/// dropping the alignment bits, so a way with a wider field than the branch
/// strictly needs can hold the branch as well (the extra high bits equal
/// the corresponding PC bits and reconstruct correctly).
///
/// # Panics
///
/// Panics if `n_stored > 62`, which no BTB way ever uses.
#[inline]
pub fn extract_offset(target: u64, n_stored: u32, arch: Arch) -> u64 {
    assert!(n_stored <= 62, "offset field wider than any real design");
    let shifted = target >> arch.align_bits();
    if n_stored == 0 {
        0
    } else {
        shifted & ((1u64 << n_stored) - 1)
    }
}

/// Reconstruct a full target address by concatenating the high-order bits
/// of `pc` with an `n_stored`-bit stored offset (Figure 8's concatenation
/// box).
///
/// Correct whenever `n_stored >= stored_offset_len(pc, target, arch)` for
/// the pair that produced `stored`.
#[inline]
pub fn reconstruct_target(pc: u64, stored: u64, n_stored: u32, arch: Arch) -> u64 {
    let shift = n_stored + arch.align_bits();
    let high = if shift >= 64 {
        0
    } else {
        (pc >> shift) << shift
    };
    high | (stored << arch.align_bits())
}

/// `true` when a way with an `width`-bit offset field can hold this branch.
#[inline]
pub fn fits_in_way(pc: u64, target: u64, width: u32, arch: Arch) -> bool {
    stored_offset_len(pc, target, arch) <= width
}

/// Page number of an address for a 4 KB page (PDede / R-BTB partitioning).
#[inline]
pub fn page_number(addr: u64) -> u64 {
    addr >> 12
}

/// Page offset (bits 11..0) of an address.
#[inline]
pub fn page_offset(addr: u64) -> u64 {
    addr & 0xfff
}

/// Region number for PDede's Region-BTB: bits 47..28, i.e. a region is a
/// group of 2^16 contiguous 4 KB pages (Figure 6).
#[inline]
pub fn region_number(addr: u64) -> u64 {
    (addr >> 28) & ((1u64 << 20) - 1)
}

/// The 16-bit portion of the page number stored in PDede's Page-BTB
/// (bits 27..12 of the address, Figure 6).
#[inline]
pub fn pdede_page_bits(addr: u64) -> u64 {
    (addr >> 12) & 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_worked_example() {
        // Figure 3: PC = ...1 0 1 1 0 1 0 0 0, target = ...1 0 1 1 1 1 0 0 0
        // (bit positions 9..1). MSB diff at position 5; raw offset `11000`;
        // stored offset on Arm64 is `110` (3 bits).
        let pc = 0b1_0110_1000u64;
        let target = 0b1_0111_1000u64;
        assert_eq!(msb_diff_pos(pc, target), 5);
        assert_eq!(stored_offset_len(pc, target, Arch::Arm64), 3);
        assert_eq!(stored_offset_len(pc, target, Arch::X86), 5);
        assert_eq!(extract_offset(target, 3, Arch::Arm64), 0b110);
        assert_eq!(
            reconstruct_target(pc, 0b110, 3, Arch::Arm64),
            target,
            "concatenation must recover the full target"
        );
    }

    #[test]
    fn identical_addresses_need_zero_bits() {
        assert_eq!(msb_diff_pos(0x4000, 0x4000), 0);
        assert_eq!(stored_offset_len(0x4000, 0x4000, Arch::Arm64), 0);
        assert_eq!(reconstruct_target(0x4000, 0, 0, Arch::Arm64), 0x4000);
    }

    #[test]
    fn reconstruct_with_wider_way_is_still_exact() {
        let pc = 0x0000_7f12_3450u64 & !3;
        let target = 0x0000_7f12_3710u64 & !3;
        let need = stored_offset_len(pc, target, Arch::Arm64);
        for width in need..=25 {
            let stored = extract_offset(target, width, Arch::Arm64);
            assert_eq!(
                reconstruct_target(pc, stored, width, Arch::Arm64),
                target,
                "width {width}"
            );
        }
    }

    #[test]
    fn narrower_way_does_not_fit() {
        let pc = 0x1_0000u64;
        let target = 0x9_0000u64;
        let need = stored_offset_len(pc, target, Arch::Arm64);
        assert!(need > 0);
        assert!(fits_in_way(pc, target, need, Arch::Arm64));
        assert!(!fits_in_way(pc, target, need - 1, Arch::Arm64));
    }

    #[test]
    fn x86_needs_two_more_bits_than_arm_for_same_distance() {
        // Same byte distance: x86 stores the alignment bits, Arm64 drops them.
        let pc = 0x40_0000u64;
        let target = 0x40_0100u64;
        let arm = stored_offset_len(pc, target, Arch::Arm64);
        let x86 = stored_offset_len(pc, target, Arch::X86);
        assert_eq!(x86, arm + 2);
    }

    #[test]
    fn backward_branches_symmetric() {
        // Offsets are defined by XOR, so direction does not matter.
        let a = 0x10_0040u64;
        let b = 0x10_0000u64;
        assert_eq!(
            stored_offset_len(a, b, Arch::Arm64),
            stored_offset_len(b, a, Arch::Arm64)
        );
    }

    #[test]
    fn page_and_region_split() {
        let addr = 0x0000_1234_5678_9abcu64;
        assert_eq!(page_number(addr), 0x0000_1234_5678_9abc >> 12);
        assert_eq!(page_offset(addr), 0xabc);
        assert_eq!(region_number(addr), (addr >> 28) & 0xfffff);
        assert_eq!(pdede_page_bits(addr), (addr >> 12) & 0xffff);
        // Region ‖ page ‖ offset reassembles the low 48 bits (Figure 6).
        let rebuilt =
            (region_number(addr) << 28) | (pdede_page_bits(addr) << 12) | page_offset(addr);
        assert_eq!(rebuilt, addr & ((1u64 << 48) - 1));
    }

    #[test]
    fn zero_width_extract_is_zero() {
        assert_eq!(extract_offset(u64::MAX, 0, Arch::Arm64), 0);
    }
}
