//! BTB-X: the paper's storage-effective BTB organization (Section V,
//! Figure 8).
//!
//! BTB-X is an 8-way set-associative BTB whose ways store *target offsets*
//! of different widths — 0, 4, 5, 7, 9, 11, 19 and 25 bits on Arm64 — sized
//! so each way covers ≈ 12.5 % of dynamic branches (Figure 4). Way 0 has no
//! offset storage at all: it holds returns, whose targets come from the
//! RAS. Branches whose offsets exceed the widest way (≈ 1 % of dynamic
//! branches) live in **BTB-XC**, a small direct-mapped BTB with full
//! targets and 64× fewer entries than BTB-X.
//!
//! Allocation uses the paper's *modified LRU*: the victim search considers
//! only the ways whose offset field is wide enough for the incoming
//! branch; recency bookkeeping is unchanged (Section V-B).

use crate::btb::{Btb, BtbHit, HitSite};
use crate::offset::{extract_offset, reconstruct_target, stored_offset_len};
use crate::replacement::{eligibility_mask, LruSet};
use crate::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use crate::stats::{AccessCounts, StorageReport};
use crate::tag::{partial_tag, set_index, PARTIAL_TAG_BITS};
use crate::types::{Arch, BranchEvent, BtbBranchType, TargetSource};

/// Metadata bits per BTB-X way entry: valid 1 + tag 12 + type 2 + LRU 3
/// (Figure 8).
pub const BTBX_META_BITS: u64 = 1 + PARTIAL_TAG_BITS as u64 + 2 + 3;

/// Bits per BTB-XC entry: modelled as a full conventional entry without
/// replacement state, padded to the 64 bits Table III charges.
pub const BTBXC_ENTRY_BITS: u64 = 64;

/// Ratio of BTB-X entries to BTB-XC entries (Section V-A: "64x fewer
/// entries than BTB-X, i.e., 8x fewer entries than the number of sets").
pub const XC_ENTRY_DIVISOR: usize = 64;

const WAYS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct WayEntry {
    valid: bool,
    tag: u16,
    btype: BtbBranchType,
    /// Low `width + align` bits of the target, alignment bits dropped.
    stored: u64,
}

impl WayEntry {
    const INVALID: WayEntry = WayEntry {
        valid: false,
        tag: 0,
        btype: BtbBranchType::Unconditional,
        stored: 0,
    };
}

#[derive(Debug, Clone, Copy)]
struct XcEntry {
    valid: bool,
    tag: u16,
    btype: BtbBranchType,
    target: u64,
}

impl XcEntry {
    const INVALID: XcEntry = XcEntry {
        valid: false,
        tag: 0,
        btype: BtbBranchType::Unconditional,
        target: 0,
    };
}

/// Configuration knobs for [`BtbX`], exposing the paper's design choices
/// as ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbXConfig {
    /// Offset width of each way, narrowest first. The paper's sizing is
    /// [`Arch::btbx_way_widths`]; ablations may use uniform widths.
    pub way_widths: [u32; 8],
    /// Whether the BTB-XC overflow structure exists. Disabling it makes
    /// every branch wider than the widest way uncacheable (a permanent
    /// BTB miss), quantifying BTB-XC's contribution.
    pub with_overflow: bool,
    /// Use the paper's modified LRU (victim restricted to eligible ways).
    /// When `false`, the victim is the global LRU way; if the branch does
    /// not fit there the allocation is dropped — a deliberately naive
    /// policy used as an ablation baseline.
    pub modified_lru: bool,
}

impl BtbXConfig {
    /// The paper's configuration for `arch`.
    pub fn paper(arch: Arch) -> Self {
        BtbXConfig {
            way_widths: arch.btbx_way_widths(),
            with_overflow: true,
            modified_lru: true,
        }
    }

    /// Ablation: eight uniform ways, each as wide as the paper's widest
    /// way. Storage balloons for the same entry count (Section V-A's
    /// argument for uneven sizing).
    pub fn uniform(arch: Arch) -> Self {
        let widest = arch.btbx_way_widths()[7];
        BtbXConfig {
            way_widths: [widest; 8],
            with_overflow: true,
            modified_lru: true,
        }
    }

    /// Offset bits per set under this configuration.
    pub fn offset_bits_per_set(&self) -> u64 {
        self.way_widths.iter().map(|&w| w as u64).sum()
    }

    /// Total bits per set: 8 × metadata + offset fields (Table III's
    /// 224-bit sets for the Arm64 paper configuration).
    pub fn set_bits(&self) -> u64 {
        WAYS as u64 * BTBX_META_BITS + self.offset_bits_per_set()
    }
}

/// The BTB-X organization with its BTB-XC overflow companion.
#[derive(Debug, Clone)]
pub struct BtbX {
    arch: Arch,
    config: BtbXConfig,
    sets: usize,
    ways: Vec<WayEntry>, // sets × 8, row-major
    lru: Vec<LruSet>,
    xc: Vec<XcEntry>,
    counts: AccessCounts,
}

impl BtbX {
    /// Build a BTB-X with `entries` main entries (a multiple of 8) and the
    /// paper's way sizing for `arch`. BTB-XC is sized at
    /// `entries / 64` entries, minimum 1.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 8.
    pub fn with_entries(entries: usize, arch: Arch) -> Self {
        Self::with_config(entries, arch, BtbXConfig::paper(arch))
    }

    /// Build with an explicit [`BtbXConfig`] (ablations).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of 8 or the way
    /// widths are not non-decreasing.
    pub fn with_config(entries: usize, arch: Arch, config: BtbXConfig) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(WAYS),
            "entries must be a multiple of 8"
        );
        assert!(
            config.way_widths.windows(2).all(|w| w[0] <= w[1]),
            "way widths must be non-decreasing"
        );
        let sets = entries / WAYS;
        let xc_entries = if config.with_overflow {
            (entries / XC_ENTRY_DIVISOR).max(1)
        } else {
            0
        };
        BtbX {
            arch,
            config,
            sets,
            ways: vec![WayEntry::INVALID; sets * WAYS],
            lru: vec![LruSet::new(WAYS); sets],
            xc: vec![XcEntry::INVALID; xc_entries],
            counts: AccessCounts::default(),
        }
    }

    /// Number of BTB-X sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of main entries.
    pub fn entries(&self) -> usize {
        self.sets * WAYS
    }

    /// Number of BTB-XC entries.
    pub fn xc_entries(&self) -> usize {
        self.xc.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &BtbXConfig {
        &self.config
    }

    fn find_way(&self, set: usize, tag: u16) -> Option<usize> {
        let base = set * WAYS;
        (0..WAYS).find(|&w| {
            let e = &self.ways[base + w];
            e.valid && e.tag == tag
        })
    }

    fn xc_slot(&self, pc: u64) -> Option<usize> {
        if self.xc.is_empty() {
            None
        } else {
            Some(set_index(pc, self.xc.len(), self.arch))
        }
    }

    fn lookup_xc(&self, pc: u64) -> Option<(usize, XcEntry)> {
        let slot = self.xc_slot(pc)?;
        let e = self.xc[slot];
        let tag = partial_tag(pc, self.xc.len(), self.arch);
        (e.valid && e.tag == tag).then_some((slot, e))
    }

    fn hit_from_way(&self, pc: u64, way: usize, e: WayEntry) -> BtbHit {
        let target = if e.btype == BtbBranchType::Return {
            TargetSource::ReturnStack
        } else {
            let width = self.config.way_widths[way];
            TargetSource::Address(reconstruct_target(pc, e.stored, width, self.arch))
        };
        BtbHit {
            btype: e.btype,
            target,
            site: HitSite::Main,
        }
    }

    /// Allocate or refresh the entry for a taken branch.
    fn allocate(&mut self, event: &BranchEvent) {
        let pc = event.pc;
        let btype = event.class.btb_type();
        // Returns read their target from the RAS, so they need no offset
        // bits and fit in every way (Section V-A).
        let needed = if event.class.btb_type() == BtbBranchType::Return {
            0
        } else {
            stored_offset_len(pc, event.target, self.arch)
        };
        let widest = self.config.way_widths[WAYS - 1];

        let set = set_index(pc, self.sets, self.arch);
        let tag = partial_tag(pc, self.sets, self.arch);
        let base = set * WAYS;

        if needed > widest {
            // Too large for any way: BTB-XC or nothing.
            // Drop a stale main-BTB alias for this PC if present so the
            // two structures never disagree.
            if let Some(way) = self.find_way(set, tag) {
                self.ways[base + way] = WayEntry::INVALID;
            }
            let Some(slot) = self.xc_slot(pc) else { return };
            let xtag = partial_tag(pc, self.xc.len(), self.arch);
            let e = &mut self.xc[slot];
            if !(e.valid && e.tag == xtag && e.target == event.target && e.btype == btype) {
                *e = XcEntry {
                    valid: true,
                    tag: xtag,
                    btype,
                    target: event.target,
                };
                self.counts.writes += 1;
            }
            return;
        }

        // Existing main entry for this PC?
        if let Some(way) = self.find_way(set, tag) {
            let width = self.config.way_widths[way];
            if needed <= width {
                let stored = extract_offset(event.target, width, self.arch);
                let e = &mut self.ways[base + way];
                if e.stored != stored || e.btype != btype {
                    e.stored = stored;
                    e.btype = btype;
                    self.counts.writes += 1;
                }
                self.lru[set].touch(way);
                return;
            }
            // The branch's target moved out of this way's reach (indirect
            // branch with a new, farther target): invalidate and realloc.
            self.ways[base + way] = WayEntry::INVALID;
        }
        // A stale BTB-XC alias for this PC would shadow nothing (main is
        // checked first on lookup), but drop it to keep state clean.
        if let Some((slot, _)) = self.lookup_xc(pc) {
            self.xc[slot] = XcEntry::INVALID;
        }

        // Choose a way: invalid eligible way first, then modified LRU.
        let eligible = eligibility_mask(WAYS, |w| self.config.way_widths[w] >= needed);
        debug_assert!(eligible != 0, "widest way must always be eligible");
        let invalid = (0..WAYS).find(|&w| eligible & (1 << w) != 0 && !self.ways[base + w].valid);
        let way = match invalid {
            Some(w) => w,
            None if self.config.modified_lru => self.lru[set].victim_among(eligible),
            None => {
                // Naive ablation policy: global LRU victim; drop the
                // allocation if the branch does not fit there.
                let v = self.lru[set].victim();
                if eligible & (1 << v) == 0 {
                    return;
                }
                v
            }
        };
        let width = self.config.way_widths[way];
        self.ways[base + way] = WayEntry {
            valid: true,
            tag,
            btype,
            stored: extract_offset(event.target, width, self.arch),
        };
        self.lru[set].touch(way);
        self.counts.writes += 1;
    }
}

impl Btb for BtbX {
    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<BtbHit> {
        // BTB-X and BTB-XC are probed in parallel (Section V-B); one read.
        self.counts.reads += 1;
        let set = set_index(pc, self.sets, self.arch);
        let tag = partial_tag(pc, self.sets, self.arch);
        if let Some(way) = self.find_way(set, tag) {
            self.counts.read_hits += 1;
            self.lru[set].touch(way);
            let e = self.ways[set * WAYS + way];
            return Some(self.hit_from_way(pc, way, e));
        }
        if let Some((_, e)) = self.lookup_xc(pc) {
            self.counts.read_hits += 1;
            let target = if e.btype == BtbBranchType::Return {
                TargetSource::ReturnStack
            } else {
                TargetSource::Address(e.target)
            };
            return Some(BtbHit {
                btype: e.btype,
                target,
                site: HitSite::Overflow,
            });
        }
        None
    }

    #[inline]
    fn update(&mut self, event: &BranchEvent) {
        if !event.taken {
            return;
        }
        self.allocate(event);
    }

    fn storage(&self) -> StorageReport {
        let main_bits = self.sets as u64 * self.config.set_bits();
        let xc_bits = self.xc.len() as u64 * BTBXC_ENTRY_BITS;
        StorageReport {
            name: "btbx".into(),
            total_bits: main_bits + xc_bits,
            branch_capacity: (self.entries() + self.xc.len()) as u64,
            partitions: vec![("btb-x".into(), main_bits), ("btb-xc".into(), xc_bits)],
        }
    }

    fn counts(&self) -> AccessCounts {
        self.counts
    }

    fn reset_counts(&mut self) {
        self.counts.reset();
    }

    fn clear(&mut self) {
        self.ways.fill(WayEntry::INVALID);
        self.xc.fill(XcEntry::INVALID);
        for l in &mut self.lru {
            *l = LruSet::new(WAYS);
        }
    }

    fn name(&self) -> &'static str {
        "btbx"
    }
}

impl Snapshot for BtbX {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.sets as u64);
        w.u64(self.xc.len() as u64);
        for width in self.config.way_widths {
            w.u32(width);
        }
        for e in &self.ways {
            w.bool(e.valid);
            w.u16(e.tag);
            w.u8(e.btype.snap_code());
            w.u64(e.stored);
        }
        for l in &self.lru {
            l.save_state(w);
        }
        for e in &self.xc {
            w.bool(e.valid);
            w.u16(e.tag);
            w.u8(e.btype.snap_code());
            w.u64(e.target);
        }
        self.counts.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_u64(self.sets as u64, "btbx set count")?;
        r.expect_u64(self.xc.len() as u64, "btbx xc entry count")?;
        for width in self.config.way_widths {
            if r.u32()? != width {
                return Err(SnapError::Corrupt("btbx way widths"));
            }
        }
        for e in &mut self.ways {
            *e = WayEntry {
                valid: r.bool()?,
                tag: r.u16()?,
                btype: BtbBranchType::from_snap_code(r.u8()?)?,
                stored: r.u64()?,
            };
        }
        for l in &mut self.lru {
            l.restore_state(r)?;
        }
        for e in &mut self.xc {
            *e = XcEntry {
                valid: r.bool()?,
                tag: r.u16()?,
                btype: BtbBranchType::from_snap_code(r.u8()?)?,
                target: r.u64()?,
            };
        }
        self.counts.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BranchClass;

    fn btb() -> BtbX {
        BtbX::with_entries(256, Arch::Arm64)
    }

    #[test]
    fn paper_set_is_224_bits_arm64() {
        assert_eq!(BtbXConfig::paper(Arch::Arm64).set_bits(), 224);
    }

    #[test]
    fn paper_set_is_230_bits_x86() {
        // 144 metadata + 86 offset bits (Section VI-G).
        assert_eq!(BtbXConfig::paper(Arch::X86).set_bits(), 230);
    }

    #[test]
    fn xc_sizing_is_one_sixtyfourth() {
        let b = BtbX::with_entries(2048, Arch::Arm64);
        assert_eq!(b.xc_entries(), 32);
        assert_eq!(b.sets(), 256);
    }

    #[test]
    fn short_offset_round_trip() {
        let mut b = btb();
        // Conditional branch 40 bytes forward: needs 4 stored bits.
        let pc = 0x0000_7f00_1000u64;
        let target = pc + 40;
        b.update(&BranchEvent::taken(pc, target, BranchClass::CondDirect));
        let hit = b.lookup(pc).expect("hit");
        assert_eq!(hit.target, TargetSource::Address(target));
        assert_eq!(hit.site, HitSite::Main);
    }

    #[test]
    fn long_offset_goes_to_xc() {
        let mut b = btb();
        // Cross-region branch: far more than 25 stored bits.
        let pc = 0x0000_0001_0000u64;
        let target = 0x0000_7f00_0000u64;
        assert!(stored_offset_len(pc, target, Arch::Arm64) > 25);
        b.update(&BranchEvent::taken(pc, target, BranchClass::CallDirect));
        let hit = b.lookup(pc).expect("hit in BTB-XC");
        assert_eq!(hit.site, HitSite::Overflow);
        assert_eq!(hit.target, TargetSource::Address(target));
    }

    #[test]
    fn long_offset_without_xc_misses_forever() {
        let mut cfg = BtbXConfig::paper(Arch::Arm64);
        cfg.with_overflow = false;
        let mut b = BtbX::with_config(256, Arch::Arm64, cfg);
        let pc = 0x0000_0001_0000u64;
        let target = 0x0000_7f00_0000u64;
        b.update(&BranchEvent::taken(pc, target, BranchClass::CallDirect));
        assert!(b.lookup(pc).is_none());
    }

    #[test]
    fn returns_fit_in_way_zero() {
        let mut b = btb();
        b.update(&BranchEvent::taken(
            0x4000,
            0x1234_5678,
            BranchClass::Return,
        ));
        let hit = b.lookup(0x4000).expect("hit");
        assert_eq!(hit.target, TargetSource::ReturnStack);
    }

    #[test]
    fn eligibility_respects_way_widths() {
        // A branch needing 20 bits may only occupy way 7 (25 bits) on Arm64.
        let widths = Arch::Arm64.btbx_way_widths();
        let needed = 20;
        let eligible: Vec<usize> = (0..8).filter(|&w| widths[w] >= needed).collect();
        assert_eq!(eligible, vec![7]);
    }

    #[test]
    fn modified_lru_evicts_lru_among_eligible_only() {
        // One-set BTB-X. The victim search is restricted to eligible ways,
        // and within them it is true LRU (Section V-B): a recently-used
        // wide branch in way 7 survives a short-branch insertion even
        // though way 7 is eligible for short branches too.
        let mut b = BtbX::with_entries(8, Arch::Arm64);
        let base = 0x10_0000u64;
        // Way 0 can only be filled by a return (0-bit offset).
        b.update(&BranchEvent::taken(base, 0x9000, BranchClass::Return));
        // Wide branch lands in way 7 (the only way ≥ 21 stored bits).
        let wide_pc = base + 4;
        b.update(&BranchEvent::taken(
            wide_pc,
            wide_pc + (1 << 22),
            BranchClass::CallDirect,
        ));
        // Six short branches fill ways 1..6; the first is the LRU of them.
        let first_short = base + 2 * 4;
        for i in 2..=7u64 {
            let pc = base + i * 4;
            b.update(&BranchEvent::taken(pc, pc + 8, BranchClass::CondDirect));
        }
        // Make the wide branch MRU, then insert one more short branch.
        assert!(b.lookup(wide_pc).is_some());
        let newcomer = base + 8 * 4;
        b.update(&BranchEvent::taken(
            newcomer,
            newcomer + 8,
            BranchClass::CondDirect,
        ));
        assert!(b.lookup(newcomer).is_some());
        assert!(
            b.lookup(wide_pc).is_some(),
            "MRU wide branch must not be the victim"
        );
        assert!(
            b.lookup(first_short).is_none(),
            "the LRU eligible way holds the victim"
        );
        assert!(
            b.lookup(base).is_some(),
            "way-0 return is not eligible for eviction"
        );
    }

    #[test]
    fn wide_branch_can_evict_anywhere_eligible() {
        // A 20-bit branch has exactly one eligible way; inserting two such
        // branches in one set must replace the first.
        let mut b = BtbX::with_entries(8, Arch::Arm64);
        let a = 0x10_0000u64;
        let c = a + 4;
        b.update(&BranchEvent::taken(
            a,
            a + (1 << 22),
            BranchClass::CallDirect,
        ));
        b.update(&BranchEvent::taken(
            c,
            c + (1 << 22),
            BranchClass::CallDirect,
        ));
        assert!(b.lookup(c).is_some());
        assert!(b.lookup(a).is_none(), "only way 7 can hold either branch");
    }

    #[test]
    fn indirect_branch_retarget_across_ways() {
        let mut b = btb();
        let pc = 0x0000_7f00_1000u64;
        // First target nearby (narrow way), then far away (wide way).
        b.update(&BranchEvent::taken(pc, pc + 16, BranchClass::CallIndirect));
        assert_eq!(b.lookup(pc).unwrap().target, TargetSource::Address(pc + 16));
        let far = pc + (1 << 20);
        b.update(&BranchEvent::taken(pc, far, BranchClass::CallIndirect));
        assert_eq!(b.lookup(pc).unwrap().target, TargetSource::Address(far));
    }

    #[test]
    fn storage_matches_table_iii_smallest_point() {
        // 256 entries: 32 sets × 224 bits + 4 XC × 64 bits = 7424 bits = 0.90625 KB.
        let b = btb();
        let r = b.storage();
        assert_eq!(r.total_bits, 7424);
        assert!((r.total_kb() - 0.90625).abs() < 1e-9);
        assert_eq!(r.branch_capacity, 260);
    }

    #[test]
    fn uniform_ablation_is_bigger() {
        let paper = BtbX::with_entries(1024, Arch::Arm64).storage().total_bits;
        let uni = BtbX::with_config(1024, Arch::Arm64, BtbXConfig::uniform(Arch::Arm64))
            .storage()
            .total_bits;
        assert!(uni > paper, "uniform 25-bit ways must cost more storage");
    }

    #[test]
    fn counts_track_reads_hits_writes() {
        let mut b = btb();
        b.lookup(0x4000);
        b.update(&BranchEvent::taken(0x4000, 0x4040, BranchClass::CondDirect));
        b.lookup(0x4000);
        let c = b.counts();
        assert_eq!(c.reads, 2);
        assert_eq!(c.read_hits, 1);
        assert_eq!(c.writes, 1);
    }

    #[test]
    fn clear_resets_contents_not_counts() {
        let mut b = btb();
        b.update(&BranchEvent::taken(0x4000, 0x4040, BranchClass::CondDirect));
        b.clear();
        assert!(b.lookup(0x4000).is_none());
        assert!(b.counts().reads > 0);
        b.reset_counts();
        assert_eq!(b.counts().reads, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn entries_must_be_multiple_of_ways() {
        BtbX::with_entries(100, Arch::Arm64);
    }
}
