//! A deterministic, fast hasher for hot-path hash maps.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds SipHash per
//! process: strong against adversarial keys, but (a) an order of
//! magnitude slower than needed for trusted `u64` keys like PCs, and
//! (b) a source of run-to-run memory-layout nondeterminism. [`FxHasher`]
//! is the FxHash multiply-xor scheme (rustc's own table hasher): a couple
//! of arithmetic ops per word, identical across processes and platforms.
//!
//! Use [`FxHashMap`]/[`FxHashSet`] for simulator-internal tables keyed by
//! addresses or ids; keep the default hasher only where untrusted input
//! could choose the keys (nowhere in this workspace).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash: `state = (state.rotate_left(5) ^ word) * SEED` per
/// 8-byte word, with the golden-ratio multiplier.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// Deterministic [`FxHasher`] builder.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn hashing_is_deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one(0xdead_beefu64);
        let b = FxBuildHasher::default().hash_one(0xdead_beefu64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for pc in (0..10_000u64).map(|i| 0x40_0000 + i * 4) {
            seen.insert(FxBuildHasher::default().hash_one(pc));
        }
        assert_eq!(seen.len(), 10_000, "no collisions on an aligned PC walk");
    }

    #[test]
    fn tail_bytes_are_length_disambiguated() {
        // A shorter prefix must not hash like its zero-padded extension.
        assert_ne!(hash_of(&[1, 2, 3]), hash_of(&[1, 2, 3, 0]));
        assert_ne!(hash_of(b""), hash_of(&[0]));
    }

    #[test]
    fn map_works_end_to_end() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1_000u64 {
            m.insert(i * 64, i as u32);
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m.get(&(42 * 64)), Some(&42));
        assert_eq!(m.get(&1), None);
    }
}
