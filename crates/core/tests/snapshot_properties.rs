//! Property tests for the microarchitectural snapshot layer: for *every*
//! BTB organization and a spread of storage budgets, cutting an arbitrary
//! update/lookup stream at an arbitrary point, snapshotting, restoring
//! into a freshly built engine, and continuing must be bit-identical to
//! never having stopped — predictions, counters, and the bytes of a
//! subsequent snapshot all included. This is the per-component guarantee
//! the checkpoint-sharded simulator builds its exactness claim on.

use btbx_core::snap::{restore_sealed, save_sealed, SnapError};
use btbx_core::storage::BudgetPoint;
use btbx_core::{Arch, BranchClass, BranchEvent, BtbEngine, OrgKind};
use proptest::prelude::*;

/// An arbitrary branch stream: clustered PCs (so sets conflict and
/// replacement state matters), every branch class, near and far targets,
/// and not-taken conditionals.
fn arb_events(max_len: usize) -> impl Strategy<Value = Vec<BranchEvent>> {
    proptest::collection::vec(
        (
            0u64..4096,
            0usize..BranchClass::ALL.len(),
            0u64..(1 << 20),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(pc_slot, class_index, span, far, taken)| {
                let pc = 0x1_0000 + pc_slot * 4;
                let class = BranchClass::ALL[class_index];
                let target = if far {
                    pc ^ ((span << 8) | 4)
                } else {
                    pc + 4 + span % 512 * 4
                };
                BranchEvent {
                    pc,
                    target,
                    class,
                    taken: class.is_always_taken() || taken,
                }
            }),
        1..max_len,
    )
}

fn budgets() -> impl Strategy<Value = BudgetPoint> {
    (0usize..3).prop_map(|i| [BudgetPoint::Kb0_9, BudgetPoint::Kb3_6, BudgetPoint::Kb14_5][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// snapshot → restore → continue ≡ straight through, for every
    /// organization, at a random budget and a random cut point.
    #[test]
    fn restore_then_continue_equals_straight_through(
        events in arb_events(1200),
        cut_fraction in 0u64..=100,
        budget in budgets(),
    ) {
        let bits = budget.bits(Arch::Arm64);
        let cut = events.len() * cut_fraction as usize / 100;
        for kind in OrgKind::ALL {
            let key = format!("prop/{kind}/{bits}");

            // Straight-through engine: consumes the whole stream.
            let mut straight = BtbEngine::build(kind, bits, Arch::Arm64);
            // Cut engine: consumes the prefix, round-trips through a
            // sealed snapshot into a *fresh* engine, then the suffix.
            let mut prefix = BtbEngine::build(kind, bits, Arch::Arm64);

            for ev in &events[..cut] {
                straight.lookup(ev.pc);
                straight.update(ev);
                prefix.lookup(ev.pc);
                prefix.update(ev);
            }
            let sealed = save_sealed(&key, &prefix);
            let mut resumed = BtbEngine::build(kind, bits, Arch::Arm64);
            restore_sealed(&mut resumed, &key, &sealed).expect("round trip");

            for ev in &events[cut..] {
                prop_assert_eq!(
                    straight.lookup(ev.pc),
                    resumed.lookup(ev.pc),
                    "{} diverged after restore", kind
                );
                straight.update(ev);
                resumed.update(ev);
            }
            prop_assert_eq!(straight.counts(), resumed.counts(), "{} counters", kind);
            prop_assert_eq!(
                save_sealed(&key, &straight),
                save_sealed(&key, &resumed),
                "{}: post-continuation snapshots must be byte-identical", kind
            );
        }
    }

    /// A sealed snapshot is rejected under any other identity key — the
    /// guard that stops a warm-ladder entry from leaking across
    /// workloads, organizations, or budgets.
    #[test]
    fn sealed_snapshot_refuses_a_foreign_identity(
        events in arb_events(200),
        budget in budgets(),
    ) {
        let bits = budget.bits(Arch::Arm64);
        let mut engine = BtbEngine::build(OrgKind::BtbX, bits, Arch::Arm64);
        for ev in &events {
            engine.lookup(ev.pc);
            engine.update(ev);
        }
        let sealed = save_sealed("identity-a", &engine);
        let mut other = BtbEngine::build(OrgKind::BtbX, bits, Arch::Arm64);
        let err = restore_sealed(&mut other, "identity-b", &sealed).unwrap_err();
        prop_assert!(
            matches!(err, SnapError::KeyMismatch { .. }),
            "expected a key mismatch, got {:?}", err
        );
    }

    /// Flipping any single byte of a sealed snapshot is detected — either
    /// by the content hash or by a structural validation error; it must
    /// never restore silently.
    #[test]
    fn corruption_anywhere_is_detected(
        events in arb_events(64),
        victim in 0usize..10_000,
    ) {
        let bits = BudgetPoint::Kb0_9.bits(Arch::Arm64);
        let mut engine = BtbEngine::build(OrgKind::Conv, bits, Arch::Arm64);
        for ev in &events {
            engine.lookup(ev.pc);
            engine.update(ev);
        }
        let sealed = save_sealed("corrupt-me", &engine);
        let mut bytes = sealed.clone();
        let index = victim % bytes.len();
        bytes[index] ^= 0x5a;
        let mut target = BtbEngine::build(OrgKind::Conv, bits, Arch::Arm64);
        prop_assert!(
            restore_sealed(&mut target, "corrupt-me", &bytes).is_err(),
            "byte {} flip restored silently", index
        );
    }
}
