//! End-to-end tests for the distributed sweep fabric: a 3-node
//! `LocalCluster` must produce results byte-identical to the serial CLI
//! sweep, compute each unique point exactly once fleet-wide, and
//! survive a node being killed mid-sweep (requeue + completion on the
//! survivors).

use btbx_bench::cluster::{
    self, ClusterConfig, ClusterError, ClusterEvent, LocalCluster, NodeState,
};
use btbx_bench::{HarnessOpts, Sweep};
use btbx_core::storage::BudgetPoint;
use btbx_core::OrgKind;
use btbx_trace::suite;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btbx-cluster-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(out_dir: &Path) -> HarnessOpts {
    HarnessOpts {
        warmup: 2_000,
        measure: 4_000,
        offset_instrs: 10_000,
        fresh: false,
        out_dir: out_dir.to_path_buf(),
        threads: 2,
        shards: 1,
        trace: None,
        http_timeout_ms: 10_000,
        resume: false,
        batch: true,
        fault_plan: None,
        store: None,
    }
}

/// 1 workload × 2 orgs × 2 budgets = 4 unique points.
fn four_point_sweep() -> Sweep {
    Sweep::named("cluster-test")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb0_9, BudgetPoint::Kb1_8])
        .fdip_options([false])
        .windows(2_000, 4_000)
}

/// 1 workload × 2 orgs × 3 budgets × 2 fdip = 12 unique points — enough
/// that killing a node mid-sweep leaves real work to requeue.
fn twelve_point_sweep() -> Sweep {
    Sweep::named("cluster-kill")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb0_9, BudgetPoint::Kb1_8, BudgetPoint::Kb3_6])
        .fdip_options([false, true])
        .windows(2_000, 4_000)
}

fn config(nodes: Vec<String>) -> ClusterConfig {
    let mut config = ClusterConfig::new(nodes);
    config.http_timeout = Duration::from_secs(10);
    config.probe_timeout = Duration::from_secs(2);
    // Keep the retire tail short so a killed node never stalls the test.
    config.probe_interval = Duration::from_millis(50);
    config
}

#[test]
fn three_node_sweep_is_byte_identical_to_serial_cli_and_computes_once() {
    // Reference: the serial CLI path with its own cache.
    let serial_out = scratch("serial-ref");
    let sweep = four_point_sweep();
    let serial = sweep.run(&opts(&serial_out));

    let base = scratch("fleet");
    let cluster = LocalCluster::start(3, &base, 2, 1).expect("cluster starts");
    let coord_out = base.join("coordinator");
    let coord_opts = opts(&coord_out);
    let report = cluster::run_sweep(&sweep, &coord_opts, &config(cluster.addrs()))
        .expect("cluster sweep runs");

    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.stats.unique_points, 4);
    assert_eq!(report.stats.completed, 4);
    assert_eq!(report.stats.local_hits, 0);

    // Identical results, in Sweep::points order, to the serial CLI run.
    let results = report.into_results().expect("complete");
    assert_eq!(results, serial, "cluster results diverge from serial CLI");

    // Byte identity: the coordinator's cache entries must match the
    // serial CLI's, file for file.
    for point in sweep.points() {
        let name = point.cache_file_for(1);
        let serial_bytes = fs::read(serial_out.join("cache").join(&name)).expect("serial entry");
        let coord_bytes = fs::read(coord_out.join("cache").join(&name)).expect("coord entry");
        assert_eq!(serial_bytes, coord_bytes, "cache entry {name} diverges");
    }

    // Fleet-wide dedup: exactly one compute per unique point, summed
    // over the nodes' /stats.
    let fleet_computes: u64 = cluster
        .addrs()
        .iter()
        .map(|addr| {
            cluster::protocol::probe_stats(addr, Duration::from_secs(2))
                .expect("stats")
                .store
                .computes
        })
        .sum();
    assert_eq!(fleet_computes, 4, "fleet computed duplicates");

    // A second sweep is answered entirely from the coordinator's local
    // cache: nothing is dispatched.
    let again = cluster::run_sweep(&sweep, &coord_opts, &config(cluster.addrs()))
        .expect("cached sweep runs");
    assert_eq!(again.stats.local_hits, 4);
    assert_eq!(again.stats.dispatched, 0);
    assert_eq!(again.into_results().expect("complete"), serial);

    cluster.shutdown();
    let _ = fs::remove_dir_all(&base);
    let _ = fs::remove_dir_all(&serial_out);
}

#[test]
fn killing_a_node_mid_sweep_requeues_its_work_onto_survivors() {
    let serial_out = scratch("kill-serial");
    let sweep = twelve_point_sweep();
    let serial = sweep.run(&opts(&serial_out));

    let base = scratch("kill-fleet");
    let cluster = LocalCluster::start(3, &base, 2, 1).expect("cluster starts");
    let addrs = cluster.addrs();
    let coord_out = base.join("coordinator");
    let coord_opts = opts(&coord_out);

    // Fault injection: on the first completed point, kill the node that
    // served it (graceful shutdown closes its listener, so the worker's
    // next request is refused and the point must requeue).
    let cluster = Mutex::new(cluster);
    let killed = AtomicBool::new(false);
    let killed_addr = Mutex::new(String::new());
    let report = cluster::run_sweep_observed(&sweep, &coord_opts, &config(addrs.clone()), &|ev| {
        if let ClusterEvent::PointDone { node, .. } = ev {
            if !killed.swap(true, Ordering::SeqCst) {
                let i = addrs.iter().position(|a| *a == node).expect("known node");
                cluster.lock().unwrap().kill(i);
                *killed_addr.lock().unwrap() = node;
            }
        }
    })
    .expect("cluster sweep survives the kill");

    // The sweep completed on the survivors, with nothing lost.
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.stats.completed, 12);
    assert!(
        report.stats.requeued >= 1,
        "the killed node's next pull must requeue: {:?}",
        report.stats
    );
    let results = report.nodes.clone();
    let killed_addr = killed_addr.lock().unwrap().clone();
    let dead = results
        .iter()
        .find(|n| n.addr == killed_addr)
        .expect("killed node is summarized");
    assert_eq!(dead.state, NodeState::Dead, "killed node must end dead");
    assert!(
        results
            .iter()
            .filter(|n| n.addr != killed_addr)
            .all(|n| n.state == NodeState::Healthy),
        "survivors stay healthy: {results:?}"
    );

    // And the merged result set still matches the serial CLI exactly.
    assert_eq!(
        report.into_results().expect("complete"),
        serial,
        "post-kill results diverge from serial CLI"
    );

    cluster.into_inner().unwrap().shutdown();
    let _ = fs::remove_dir_all(&base);
    let _ = fs::remove_dir_all(&serial_out);
}

#[test]
fn mixed_shard_fleets_are_refused_up_front() {
    let base = scratch("mixed");
    let serial = LocalCluster::start(1, base.join("a"), 2, 1).expect("serial node");
    let sharded = LocalCluster::start(1, base.join("b"), 2, 2).expect("sharded node");
    let mut nodes = serial.addrs();
    nodes.extend(sharded.addrs());

    let coord_out = base.join("coordinator");
    let err = cluster::run_sweep(&four_point_sweep(), &opts(&coord_out), &config(nodes))
        .expect_err("mixed shards must be refused");
    assert!(matches!(err, ClusterError::MixedShards { .. }), "{err}");

    serial.shutdown();
    sharded.shutdown();
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn an_unreachable_fleet_is_a_typed_error_not_a_hang() {
    let out = scratch("unreachable");
    let err = cluster::run_sweep(
        &four_point_sweep(),
        &opts(&out),
        &config(vec!["127.0.0.1:9".into(), "127.0.0.1:10".into()]),
    )
    .expect_err("no node is listening");
    assert!(matches!(err, ClusterError::NoUsableNodes { .. }), "{err}");
    let _ = fs::remove_dir_all(&out);
}
