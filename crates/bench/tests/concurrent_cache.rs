//! Concurrency and durability of the shared result cache: overlapping
//! sweeps on one cache directory must agree byte-for-byte, never observe
//! torn entries, and compute each unique point exactly once.
//!
//! This is the regression suite for the pre-`ResultStore` cache, which
//! wrote entries with a bare `fs::write` (torn files under concurrency or
//! crashes) and recomputed every point per run when racing.

use btbx_bench::faults::{self, ErrKind, FaultOp, FaultPlan, FaultRule};
use btbx_bench::store::{ResultStore, StoreError};
use btbx_bench::warm::WarmCache;
use btbx_bench::{HarnessOpts, Sweep};
use btbx_core::spec::BtbSpec;
use btbx_core::storage::BudgetPoint;
use btbx_core::OrgKind;
use btbx_trace::suite;
use btbx_uarch::stats::SimStats;
use btbx_uarch::{AnyWarmLadder, ParallelSession, SimConfig, SimResult};
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::{Barrier, Mutex};

/// The armed fault plan is process-global; tests that arm one are
/// serialized so they cannot replace each other's schedules. Rules are
/// additionally path-scoped to each test's unique temp directory, so
/// the non-fault tests in this binary are unaffected by an armed plan.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// One fault rule scoped to `scope` (a unique temp-dir substring).
fn rule(op: FaultOp, kind: ErrKind, scope: &str, nth: u64, count: u64) -> FaultRule {
    FaultRule {
        op,
        kind,
        path: scope.to_string(),
        nth,
        count,
        delay_ms: 0,
    }
}

/// A synthetic result for direct store calls (no simulation needed).
fn canned_result(cycles: u64) -> SimResult {
    SimResult {
        workload: "fault".to_string(),
        org: "conv".to_string(),
        fdip_enabled: false,
        btb_budget_bits: 1,
        stats: SimStats {
            cycles,
            instructions: 1_000,
            ..SimStats::default()
        },
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btbx-conc-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(out_dir: &std::path::Path) -> HarnessOpts {
    HarnessOpts {
        warmup: 2_000,
        measure: 4_000,
        offset_instrs: 10_000,
        fresh: false,
        out_dir: out_dir.to_path_buf(),
        threads: 4,
        shards: 1,
        trace: None,
        http_timeout_ms: 600_000,
        resume: false,
        batch: true,
        fault_plan: None,
        store: None,
    }
}

fn four_point_sweep() -> Sweep {
    Sweep::named("conc")
        .workloads(suite::ipc1_client().into_iter().take(2))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb0_9])
        .fdip_options([false])
        .windows(2_000, 4_000)
}

#[test]
fn concurrent_sweeps_share_one_computation_per_point() {
    let out = scratch("sweeps");
    let sweep = four_point_sweep();
    let opts = opts(&out);
    // Open (and hold) a store handle first: per-directory counters and
    // flights are shared only among concurrently-live stores.
    let store = ResultStore::open(out.join("cache")).unwrap();
    let barrier = Barrier::new(2);
    let (a, b): (Vec<SimResult>, Vec<SimResult>) = std::thread::scope(|scope| {
        let ra = scope.spawn(|| {
            barrier.wait();
            sweep.run(&opts)
        });
        let rb = scope.spawn(|| {
            barrier.wait();
            sweep.run(&opts)
        });
        (ra.join().unwrap(), rb.join().unwrap())
    });

    // Byte-identical results in both runs (SimResult: Eq covers every
    // stat; serialization equality pins the cached bytes too).
    assert_eq!(a.len(), 4);
    assert_eq!(a, b, "concurrent sweeps must agree exactly");

    // The single-flight path computed each unique point exactly once
    // even though both sweeps missed the (empty) cache.
    let counters = store.counters();
    assert_eq!(
        counters.computes, 4,
        "each unique point computes once across both sweeps: {counters:?}"
    );
    assert_eq!(counters.quarantined, 0, "no entry may be damaged");

    // Every cache entry on disk is complete and parseable — no torn
    // writes, no lingering temp files.
    let mut entries = 0;
    for entry in fs::read_dir(out.join("cache")).unwrap() {
        let path = entry.unwrap().path();
        // The sweep journal lives under cache/journal/ by design.
        if path.is_dir() && path.file_name().is_some_and(|n| n == "journal") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.ends_with(".json"),
            "unexpected cache artifact: {name} (temp file leak?)"
        );
        let text = fs::read_to_string(&path).unwrap();
        let _: SimResult = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("torn or damaged entry {name}: {e}"));
        entries += 1;
    }
    assert_eq!(entries, 4);
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn second_sweep_rides_the_cache_with_zero_computes() {
    let out = scratch("warm");
    let sweep = four_point_sweep();
    let opts = opts(&out);
    let store = ResultStore::open(out.join("cache")).unwrap();
    let first = sweep.run(&opts);
    let computes_after_first = store.counters().computes;
    assert_eq!(computes_after_first, 4, "cold sweep computes everything");
    let second = sweep.run(&opts);
    assert_eq!(first, second);
    assert_eq!(
        store.counters().computes,
        computes_after_first,
        "warm sweep must be served entirely from disk"
    );
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn sweeps_racing_with_damaged_entries_recover() {
    let out = scratch("damage");
    let sweep = four_point_sweep();
    let opts = opts(&out);
    let first = sweep.run(&opts);

    // Damage two entries the way a torn legacy write would have: one
    // truncated JSON prefix, one garbage file.
    let cache = out.join("cache");
    let mut names: Vec<PathBuf> = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    names.sort();
    fs::write(&names[0], "{\"workload\":\"cli").unwrap();
    fs::write(&names[1], "not json at all").unwrap();

    let again = sweep.run(&opts);
    assert_eq!(first, again, "recovered results must match the originals");
    // The damaged bytes are preserved for inspection, not silently lost.
    let corrupt: Vec<_> = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".corrupt"))
        .collect();
    assert_eq!(corrupt.len(), 2, "both damaged entries quarantined");
    let _ = fs::remove_dir_all(&out);
}

/// Every file currently in `dir` (names only), for litter assertions.
fn dir_names(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

#[test]
fn injected_enospc_fails_the_store_loudly_with_no_half_entries() {
    let _serial = fault_lock();
    let out = scratch("fault-enospc");
    let cache = out.join("cache");
    let store = ResultStore::open(&cache).unwrap();
    // Writes 1 and 2 under this test's directory hit a full disk; the
    // scope substring keeps every other test's I/O untouched.
    let _guard = faults::arm(FaultPlan {
        seed: 1,
        rules: vec![rule(
            FaultOp::Write,
            ErrKind::Enospc,
            "btbx-conc-fault-enospc",
            1,
            2,
        )],
    });

    // A direct store fails loudly with the real error kind — never a
    // silent recompute-forever degradation.
    let err = store.store("a.json", &canned_result(1)).unwrap_err();
    match &err {
        StoreError::Io { source, .. } => {
            assert_eq!(source.kind(), io::ErrorKind::StorageFull, "{err}");
        }
        other => panic!("expected Io, got {other}"),
    }
    // The failed temp write must not leave a half-entry behind.
    assert_eq!(dir_names(&cache), Vec::<String>::new(), "no litter");

    // Through the single-flight path the computed result is still
    // served (joiners cannot be retroactively failed), the incident is
    // counted, and nothing torn reaches the directory.
    let (r, _) = store
        .get_or_compute("a.json", true, || canned_result(2))
        .unwrap();
    assert_eq!(r.stats.cycles, 2);
    assert_eq!(store.counters().store_failures, 1, "exactly one failure");
    assert_eq!(dir_names(&cache), Vec::<String>::new(), "no litter");

    // The plan is exhausted (count = 2): the next publish lands and the
    // entry is complete and parseable.
    store.store("a.json", &canned_result(3)).unwrap();
    assert_eq!(store.load("a.json").unwrap().unwrap().stats.cycles, 3);
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn injected_rename_failure_is_loud_and_removes_the_temp_file() {
    let _serial = fault_lock();
    let out = scratch("fault-rename");
    let cache = out.join("cache");
    let store = ResultStore::open(&cache).unwrap();
    let guard = faults::arm(FaultPlan {
        seed: 2,
        rules: vec![rule(
            FaultOp::Rename,
            ErrKind::RenameFail,
            "btbx-conc-fault-rename",
            1,
            1,
        )],
    });

    // The temp write succeeds but the publishing rename never lands:
    // the caller hears about it and the orphaned temp file is removed.
    let err = store.store("a.json", &canned_result(4)).unwrap_err();
    match &err {
        StoreError::Io { action, source, .. } => {
            assert_eq!(*action, "publishing store entry");
            assert_eq!(source.kind(), io::ErrorKind::PermissionDenied, "{err}");
        }
        other => panic!("expected Io, got {other}"),
    }
    assert_eq!(dir_names(&cache), Vec::<String>::new(), "no temp litter");

    drop(guard);
    store.store("a.json", &canned_result(5)).unwrap();
    assert_eq!(store.load("a.json").unwrap().unwrap().stats.cycles, 5);
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn quarantine_counters_are_exact_when_the_quarantine_rename_is_injected() {
    let _serial = fault_lock();
    let out = scratch("fault-quarantine");
    let cache = out.join("cache");
    let store = ResultStore::open(&cache).unwrap();
    fs::write(cache.join("a.json"), "not json at all").unwrap();

    // While the quarantine rename itself fails, nothing was
    // quarantined: the counter must stay at zero and the damage must
    // stay in place for the next attempt.
    let guard = faults::arm(FaultPlan {
        seed: 3,
        rules: vec![rule(
            FaultOp::Rename,
            ErrKind::RenameFail,
            "btbx-conc-fault-quarantine",
            1,
            1,
        )],
    });
    assert!(store.load("a.json").unwrap().is_none(), "damaged is a miss");
    assert_eq!(
        store.counters().quarantined,
        0,
        "a failed quarantine rename quarantined nothing"
    );
    assert!(cache.join("a.json").exists(), "damage stays put");

    // Once the injected failure clears, the same damage quarantines
    // exactly once.
    drop(guard);
    assert!(store.load("a.json").unwrap().is_none());
    assert_eq!(store.counters().quarantined, 1, "exactly one quarantine");
    assert!(cache.join("a.json.corrupt").exists());
    assert!(!cache.join("a.json").exists());
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn warm_cache_surfaces_injected_publish_failures_without_litter() {
    // Build a small real ladder (the warm cache refuses to persist an
    // empty one).
    let workload = suite::ipc1_client().into_iter().next().unwrap();
    let proto = workload.build_source().unwrap();
    let ladder = AnyWarmLadder::new();
    {
        let proto = proto.clone();
        ParallelSession::new(move || proto.clone(), BtbSpec::of(OrgKind::Conv))
            .config(SimConfig::without_fdip())
            .warmup(4_000)
            .measure(12_000)
            .shards(3)
            .warm_ladder(&ladder)
            .run()
            .unwrap();
    }
    assert!(!ladder.is_empty());

    let _serial = fault_lock();
    let out = scratch("fault-warm");
    let warm_dir = out.join("cache").join("warm");
    let cache = WarmCache::open(&warm_dir).unwrap();

    // ENOSPC on the temp write: loud failure, no half-written snapshot.
    let guard = faults::arm(FaultPlan {
        seed: 4,
        rules: vec![rule(
            FaultOp::Write,
            ErrKind::Enospc,
            "btbx-conc-fault-warm",
            1,
            1,
        )],
    });
    let err = cache.store(&ladder).unwrap_err();
    match &err {
        StoreError::Io { source, .. } => {
            assert_eq!(source.kind(), io::ErrorKind::StorageFull, "{err}");
        }
        other => panic!("expected Io, got {other}"),
    }
    assert_eq!(dir_names(&warm_dir), Vec::<String>::new(), "no litter");
    drop(guard);

    // A clean publish, then an injected rename failure on the replace:
    // the previous complete file survives and no temp file lingers.
    let stored = cache.store(&ladder).unwrap();
    assert_eq!(stored, ladder.len());
    let published = dir_names(&warm_dir);
    assert_eq!(published.len(), 1, "one complete snapshot file");

    let guard = faults::arm(FaultPlan {
        seed: 5,
        rules: vec![rule(
            FaultOp::Rename,
            ErrKind::RenameFail,
            "btbx-conc-fault-warm",
            1,
            1,
        )],
    });
    let err = cache.store(&ladder).unwrap_err();
    match &err {
        StoreError::Io { action, .. } => assert_eq!(*action, "publishing store entry"),
        other => panic!("expected Io, got {other}"),
    }
    drop(guard);
    assert_eq!(
        dir_names(&warm_dir),
        published,
        "the complete file survives, the failed replace leaves no temp"
    );
    // The surviving file still loads.
    let fresh = AnyWarmLadder::new();
    let identity = ladder.identity().unwrap();
    let loaded = cache.load(&identity, &proto, &fresh).unwrap();
    assert_eq!(loaded, stored);
    let _ = fs::remove_dir_all(&out);
}
