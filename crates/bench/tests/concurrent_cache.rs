//! Concurrency and durability of the shared result cache: overlapping
//! sweeps on one cache directory must agree byte-for-byte, never observe
//! torn entries, and compute each unique point exactly once.
//!
//! This is the regression suite for the pre-`ResultStore` cache, which
//! wrote entries with a bare `fs::write` (torn files under concurrency or
//! crashes) and recomputed every point per run when racing.

use btbx_bench::store::ResultStore;
use btbx_bench::{HarnessOpts, Sweep};
use btbx_core::storage::BudgetPoint;
use btbx_core::OrgKind;
use btbx_trace::suite;
use btbx_uarch::SimResult;
use std::fs;
use std::path::PathBuf;
use std::sync::Barrier;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btbx-conc-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(out_dir: &std::path::Path) -> HarnessOpts {
    HarnessOpts {
        warmup: 2_000,
        measure: 4_000,
        offset_instrs: 10_000,
        fresh: false,
        out_dir: out_dir.to_path_buf(),
        threads: 4,
        shards: 1,
        trace: None,
        http_timeout_ms: 600_000,
    }
}

fn four_point_sweep() -> Sweep {
    Sweep::named("conc")
        .workloads(suite::ipc1_client().into_iter().take(2))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb0_9])
        .fdip_options([false])
        .windows(2_000, 4_000)
}

#[test]
fn concurrent_sweeps_share_one_computation_per_point() {
    let out = scratch("sweeps");
    let sweep = four_point_sweep();
    let opts = opts(&out);
    // Open (and hold) a store handle first: per-directory counters and
    // flights are shared only among concurrently-live stores.
    let store = ResultStore::open(out.join("cache")).unwrap();
    let barrier = Barrier::new(2);
    let (a, b): (Vec<SimResult>, Vec<SimResult>) = std::thread::scope(|scope| {
        let ra = scope.spawn(|| {
            barrier.wait();
            sweep.run(&opts)
        });
        let rb = scope.spawn(|| {
            barrier.wait();
            sweep.run(&opts)
        });
        (ra.join().unwrap(), rb.join().unwrap())
    });

    // Byte-identical results in both runs (SimResult: Eq covers every
    // stat; serialization equality pins the cached bytes too).
    assert_eq!(a.len(), 4);
    assert_eq!(a, b, "concurrent sweeps must agree exactly");

    // The single-flight path computed each unique point exactly once
    // even though both sweeps missed the (empty) cache.
    let counters = store.counters();
    assert_eq!(
        counters.computes, 4,
        "each unique point computes once across both sweeps: {counters:?}"
    );
    assert_eq!(counters.quarantined, 0, "no entry may be damaged");

    // Every cache entry on disk is complete and parseable — no torn
    // writes, no lingering temp files.
    let mut entries = 0;
    for entry in fs::read_dir(out.join("cache")).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.ends_with(".json"),
            "unexpected cache artifact: {name} (temp file leak?)"
        );
        let text = fs::read_to_string(&path).unwrap();
        let _: SimResult = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("torn or damaged entry {name}: {e}"));
        entries += 1;
    }
    assert_eq!(entries, 4);
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn second_sweep_rides_the_cache_with_zero_computes() {
    let out = scratch("warm");
    let sweep = four_point_sweep();
    let opts = opts(&out);
    let store = ResultStore::open(out.join("cache")).unwrap();
    let first = sweep.run(&opts);
    let computes_after_first = store.counters().computes;
    assert_eq!(computes_after_first, 4, "cold sweep computes everything");
    let second = sweep.run(&opts);
    assert_eq!(first, second);
    assert_eq!(
        store.counters().computes,
        computes_after_first,
        "warm sweep must be served entirely from disk"
    );
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn sweeps_racing_with_damaged_entries_recover() {
    let out = scratch("damage");
    let sweep = four_point_sweep();
    let opts = opts(&out);
    let first = sweep.run(&opts);

    // Damage two entries the way a torn legacy write would have: one
    // truncated JSON prefix, one garbage file.
    let cache = out.join("cache");
    let mut names: Vec<PathBuf> = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    names.sort();
    fs::write(&names[0], "{\"workload\":\"cli").unwrap();
    fs::write(&names[1], "not json at all").unwrap();

    let again = sweep.run(&opts);
    assert_eq!(first, again, "recovered results must match the originals");
    // The damaged bytes are preserved for inspection, not silently lost.
    let corrupt: Vec<_> = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".corrupt"))
        .collect();
    assert_eq!(corrupt.len(), 2, "both damaged entries quarantined");
    let _ = fs::remove_dir_all(&out);
}
