//! Fleet-shared store acceptance: a 3-node `LocalCluster` driven with
//! `--store http://<blob-host>` must (a) let the coordinator seed the
//! shared store with the sweep's trace containers, (b) let nodes
//! without a local copy of a container complete points by fetching it
//! by content hash (`remote_hits > 0`), (c) keep fleet-wide
//! `computes == unique points`, and (d) leave the shared cache
//! byte-identical to a serial CLI run of the same matrix.

use btbx_bench::cluster::{self, ClusterConfig, LocalCluster};
use btbx_bench::opts::StoreUrl;
use btbx_bench::serve::{ServeConfig, Server};
use btbx_bench::{HarnessOpts, Sweep};
use btbx_core::storage::BudgetPoint;
use btbx_core::OrgKind;
use btbx_trace::container::write_container;
use btbx_trace::suite::{self, TraceRef, WorkloadSpec};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btbx-storefleet-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(out_dir: &Path, store: Option<StoreUrl>) -> HarnessOpts {
    HarnessOpts {
        warmup: 1_000,
        measure: 2_000,
        offset_instrs: 10_000,
        fresh: false,
        out_dir: out_dir.to_path_buf(),
        threads: 2,
        shards: 1,
        trace: None,
        http_timeout_ms: 10_000,
        resume: false,
        batch: true,
        fault_plan: None,
        store,
    }
}

fn config(nodes: Vec<String>) -> ClusterConfig {
    let mut config = ClusterConfig::new(nodes);
    config.http_timeout = Duration::from_secs(10);
    config.probe_timeout = Duration::from_secs(2);
    config.probe_interval = Duration::from_millis(50);
    config
}

/// Capture a synthetic workload into a real on-disk `.btbt` container
/// and return its file-backed spec.
fn captured_container(dir: &Path) -> WorkloadSpec {
    fs::create_dir_all(dir).unwrap();
    let path = dir.join("captured.btbt");
    let synthetic = suite::ipc1_client().into_iter().next().unwrap();
    let mut source = synthetic.build_source().unwrap();
    write_container(
        fs::File::create(&path).unwrap(),
        &synthetic.name,
        synthetic.params.arch,
        &mut source,
        12_000,
    )
    .unwrap();
    WorkloadSpec::from_container(&path).unwrap()
}

fn sweep_over(spec: WorkloadSpec, name: &str, budget: BudgetPoint) -> Sweep {
    Sweep::named(name)
        .workloads([spec])
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([budget])
        .fdip_options([false])
        .windows(1_000, 2_000)
}

#[test]
fn fleet_shares_one_store_and_traceless_nodes_fetch_containers_by_hash() {
    let base = scratch("fleet");
    let spec = captured_container(&base.join("traces"));
    let tref = spec.trace.clone().expect("file-backed spec has a tref");

    // Serial CLI reference over both budgets, private dir:// cache.
    let serial_out = base.join("serial");
    let serial_a = sweep_over(spec.clone(), "fleet-a", BudgetPoint::Kb0_9);
    let serial_b = sweep_over(spec.clone(), "fleet-b", BudgetPoint::Kb1_8);
    let serial_opts = opts(&serial_out, None);
    let ref_a = serial_a.run(&serial_opts);
    let ref_b = serial_b.run(&serial_opts);

    // The shared store: one plain serve node's /blob endpoints.
    let blob_out = base.join("blobhost");
    let blob_host = Server::start(ServeConfig {
        port: 0,
        cache_dir: blob_out.join("cache"),
        threads: 2,
        shards: 1,
        max_inflight: 0,
        deadline: None,
        store: None,
        http_timeout: Duration::from_secs(10),
    })
    .expect("blob host starts");
    let store_url = StoreUrl::Http(blob_host.addr().to_string());

    // A 3-node fleet, every node wired to the shared store.
    let cluster = LocalCluster::start_with_store(3, &base, 2, 1, Some(store_url.clone()))
        .expect("cluster starts");
    let coord_opts = opts(&base.join("coordinator"), Some(store_url));

    // Phase A: trefs carry a real local path — the coordinator seeds the
    // shared store with the container, nodes resolve it locally.
    let report_a =
        cluster::run_sweep(&serial_a, &coord_opts, &config(cluster.addrs())).expect("phase A runs");
    assert!(report_a.failures.is_empty(), "{:?}", report_a.failures);
    assert_eq!(report_a.into_results().expect("complete"), ref_a);
    assert!(
        blob_out
            .join("cache")
            .join("trace")
            .join(tref.blob_key())
            .exists(),
        "the coordinator must seed the shared store with the container"
    );

    let stats_after_a: Vec<_> = cluster
        .addrs()
        .iter()
        .map(|addr| cluster::protocol::probe_stats(addr, Duration::from_secs(2)).expect("stats"))
        .collect();

    // Phase B: new points whose trefs are store:// only — no node can
    // resolve them from a local path; completing them requires fetching
    // the container from the shared store by content hash.
    let mut spec_store_only = spec.clone();
    spec_store_only.trace = Some(TraceRef::store_only(tref.content_hash));
    let sweep_b = sweep_over(spec_store_only, "fleet-b", BudgetPoint::Kb1_8);
    let report_b =
        cluster::run_sweep(&sweep_b, &coord_opts, &config(cluster.addrs())).expect("phase B runs");
    assert!(report_b.failures.is_empty(), "{:?}", report_b.failures);
    assert_eq!(
        report_b.into_results().expect("complete"),
        ref_b,
        "store-only trace refs must simulate the identical trace"
    );

    // Fleet-wide dedup held across both phases: computes == unique
    // points, summed over the nodes.
    let stats_after_b: Vec<_> = cluster
        .addrs()
        .iter()
        .map(|addr| cluster::protocol::probe_stats(addr, Duration::from_secs(2)).expect("stats"))
        .collect();
    let fleet_computes: u64 = stats_after_b.iter().map(|s| s.store.computes).sum();
    assert_eq!(fleet_computes, 4, "fleet computed duplicates");

    // Every node that computed a phase-B point was trace-less for it and
    // must have fetched the container (or a peer's result) remotely.
    let mut b_computers = 0;
    for (before, after) in stats_after_a.iter().zip(&stats_after_b) {
        if after.store.computes > before.store.computes {
            b_computers += 1;
            assert!(
                after.store.remote_hits > before.store.remote_hits,
                "a node computing store-only points must hit the shared store: \
                 {before:?} -> {after:?}"
            );
        }
    }
    assert!(b_computers >= 1, "phase B dispatched to at least one node");

    // Byte identity: the shared store's result entries equal the serial
    // CLI's cache entries, file for file, for every point of both
    // phases.
    for point in serial_a.points().iter().chain(serial_b.points().iter()) {
        let name = point.cache_file_for(1);
        let serial_bytes = fs::read(serial_out.join("cache").join(&name)).expect("serial entry");
        let shared_bytes = fs::read(blob_out.join("cache").join(&name)).expect("shared entry");
        assert_eq!(serial_bytes, shared_bytes, "cache entry {name} diverges");
    }

    cluster.shutdown();
    blob_host.shutdown().expect("blob host drains");
    let _ = fs::remove_dir_all(&base);
}
