//! End-to-end tests for `btbx serve`: protocol correctness, concurrent
//! request deduplication, byte-identity with the serial CLI sweep path,
//! and graceful shutdown.

use btbx_bench::opts::DEFAULT_HTTP_TIMEOUT_MS;
use btbx_bench::serve::{http_request, ServeConfig, Server};
use btbx_bench::{HarnessOpts, Sweep};
use btbx_core::storage::BudgetPoint;
use btbx_core::OrgKind;
use btbx_trace::suite;
use btbx_uarch::SimResult;
use std::fs;
use std::path::PathBuf;
use std::sync::Barrier;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btbx-serve-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, shards: usize) -> (Server, PathBuf) {
    let out = scratch(tag);
    let server = Server::start(ServeConfig {
        port: 0,
        cache_dir: out.join("cache"),
        threads: 4,
        shards,
        max_inflight: 0,
        deadline: None,
        store: None,
        http_timeout: Duration::from_millis(DEFAULT_HTTP_TIMEOUT_MS),
    })
    .expect("server starts");
    (server, out)
}

fn two_point_sweep() -> Sweep {
    Sweep::named("serve-test")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb0_9])
        .fdip_options([false])
        .windows(2_000, 4_000)
}

#[test]
fn protocol_basics() {
    let (server, out) = start("protocol", 1);
    let addr = server.addr().to_string();

    // /healthz carries the fleet compat handshake, not a bare ok.
    let health = http_request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    let info: btbx_bench::cluster::HealthInfo = serde_json::from_str(&health.body).unwrap();
    assert!(info.ok);
    assert_eq!(info.cache_version, btbx_bench::sweep::CACHE_VERSION);
    assert_eq!(info.shards, 1);
    assert_eq!(info.version, env!("CARGO_PKG_VERSION"));
    assert!(info.orgs.iter().any(|o| o == "btbx"), "{:?}", info.orgs);

    let missing = http_request(&addr, "GET", "/nope", "").unwrap();
    assert_eq!(missing.status, 404);

    let bad = http_request(&addr, "POST", "/sim", "{\"this is\": not a point").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("bad SimPoint"), "{}", bad.body);

    // Malformed wire data is answered 400 and still counted as a
    // request, so `errors <= requests` holds for stats consumers.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"garbage\r\n\r\n").unwrap();
        let mut raw_response = String::new();
        let _ = raw.read_to_string(&mut raw_response);
        assert!(raw_response.starts_with("HTTP/1.1 400"), "{raw_response}");
    }

    let stats = http_request(&addr, "GET", "/stats", "").unwrap();
    assert_eq!(stats.status, 200);
    assert!(stats.body.contains("\"requests\":"), "{}", stats.body);
    let count = |key: &str| -> u64 {
        let tail = &stats.body[stats.body.find(key).unwrap() + key.len()..];
        tail.split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let (requests, errors) = (count("\"requests\":"), count("\"errors\":"));
    assert!(errors >= 2, "the 404, bad JSON and garbage count: {errors}");
    assert!(
        errors <= requests,
        "errors ({errors}) must be a subset of requests ({requests})"
    );

    server.shutdown().unwrap();
    server.join();
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn eight_concurrent_clients_compute_each_unique_point_once() {
    let (server, out) = start("dedup", 1);
    let addr = server.addr().to_string();
    let points = two_point_sweep().points();
    assert_eq!(points.len(), 2);
    let bodies: Vec<String> = points
        .iter()
        .map(|p| serde_json::to_string(p).unwrap())
        .collect();

    // 8 concurrent clients, 4 duplicates of each of the 2 unique points.
    let barrier = Barrier::new(8);
    let responses: Vec<(usize, u16, String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = &addr;
                let bodies = &bodies;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let which = i % 2;
                    let r = http_request(addr, "POST", "/sim", &bodies[which]).unwrap();
                    let cache = r.header("X-Btbx-Cache").unwrap_or("missing").to_string();
                    (which, r.status, r.body, cache)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (_, status, body, cache) in &responses {
        assert_eq!(*status, 200, "{body}");
        assert!(
            ["disk", "computed", "joined"].contains(&cache.as_str()),
            "unexpected cache header {cache}"
        );
    }
    // All duplicates of one point get byte-identical bodies.
    for which in 0..2 {
        let bodies: Vec<&String> = responses
            .iter()
            .filter(|(w, ..)| *w == which)
            .map(|(_, _, body, _)| body)
            .collect();
        assert_eq!(bodies.len(), 4);
        assert!(
            bodies.windows(2).all(|w| w[0] == w[1]),
            "duplicate requests must agree byte-for-byte"
        );
    }

    // The server computed exactly 2 simulations for the 8 requests.
    let stats = http_request(&addr, "GET", "/stats", "").unwrap();
    assert!(
        stats.body.contains("\"computes\":2"),
        "dedup failed: {}",
        stats.body
    );

    server.shutdown().unwrap();
    server.join();
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn served_results_are_byte_identical_to_the_serial_cli_path() {
    // Reference: the serial CLI sweep (shards=1), its own cache dir.
    let cli_out = scratch("cli-ref");
    let sweep = two_point_sweep();
    let cli_results = sweep.run(&HarnessOpts {
        warmup: 2_000,
        measure: 4_000,
        offset_instrs: 10_000,
        fresh: false,
        out_dir: cli_out.clone(),
        threads: 2,
        shards: 1,
        trace: None,
        http_timeout_ms: 600_000,
        resume: false,
        batch: true,
        fault_plan: None,
        store: None,
    });

    // Same points through a fresh server (separate cache).
    let (server, out) = start("vs-cli", 1);
    let addr = server.addr().to_string();
    for (point, cli) in sweep.points().iter().zip(&cli_results) {
        let body = serde_json::to_string(point).unwrap();
        let response = http_request(&addr, "POST", "/sim", &body).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let served: SimResult = serde_json::from_str(&response.body).unwrap();
        assert_eq!(&served, cli, "served result diverges from CLI");
        // Byte-level: the response body is the serialized result, which
        // must match the CLI's cache file exactly.
        let cache_file = cli_out.join("cache").join(point.cache_file_for(1));
        assert_eq!(
            response.body,
            fs::read_to_string(cache_file).unwrap(),
            "served bytes diverge from the CLI cache entry"
        );
    }

    server.shutdown().unwrap();
    server.join();
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&cli_out);
}

#[test]
fn sweep_via_server_matches_local_sweep_order_and_results() {
    let (server, out) = start("sweep-client", 1);
    let addr = server.addr().to_string();
    let sweep = two_point_sweep();
    let local_out = scratch("sweep-client-local");
    let opts = HarnessOpts {
        warmup: 2_000,
        measure: 4_000,
        offset_instrs: 10_000,
        fresh: false,
        out_dir: local_out.clone(),
        threads: 4,
        shards: 1,
        trace: None,
        http_timeout_ms: 600_000,
        resume: false,
        batch: true,
        fault_plan: None,
        store: None,
    };
    let local = sweep.run(&opts);
    let remote =
        btbx_bench::serve::sweep_via_server(&sweep, &opts, &addr).expect("server sweep succeeds");
    assert_eq!(local, remote, "remote sweep must mirror the local one");

    // A dead address surfaces as a typed handshake error, not a panic.
    let err = btbx_bench::serve::sweep_via_server(&sweep, &opts, "127.0.0.1:9")
        .expect_err("unreachable server must be a typed error");
    assert!(
        matches!(err, btbx_bench::cluster::ClusterError::Unreachable { .. }),
        "{err}"
    );

    server.shutdown().unwrap();
    server.join();
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&local_out);
}

#[test]
fn sharded_server_reuses_ladders_across_requests() {
    // A sharded server re-serving the same workload should still answer
    // correctly (the ladder makes repositioning cheap; correctness is
    // what we can assert here).
    let (server, out) = start("ladder", 2);
    let addr = server.addr().to_string();
    let point = &two_point_sweep().points()[0];
    let body = serde_json::to_string(point).unwrap();
    let first = http_request(&addr, "POST", "/sim", &body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("X-Btbx-Cache"), Some("computed"));
    // Second request: served from the durable cache.
    let second = http_request(&addr, "POST", "/sim", &body).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Btbx-Cache"), Some("disk"));
    assert_eq!(first.body, second.body);

    server.shutdown().unwrap();
    server.join();
    let _ = fs::remove_dir_all(&out);
}
