//! Randomized chaos suite: seeded fault schedules against the durable
//! stores, overload and deadline behaviour of `btbx serve`, and the
//! kill-and-resume harness for crash-resumable sweeps.
//!
//! Three layers of the robustness story are pinned here:
//!
//! 1. **Property**: under *any* seeded fault plan scoped to its cache
//!    directory, the result store either succeeds with correct bytes or
//!    fails loudly — never a torn entry, never temp-file litter, and a
//!    clean rerun always converges to the undisturbed results.
//! 2. **Serve degradation**: a server at 4× its admission limit sheds
//!    excess requests with `429` + `Retry-After` (never a connection
//!    reset), completes everything it admits, and aborts runaway
//!    simulations at the per-request deadline with `503` while staying
//!    healthy for the next request.
//! 3. **Kill-and-resume**: a `btbx sweep` killed with SIGKILL mid-run
//!    resumes with `--resume` and publishes a cache byte-identical to an
//!    undisturbed run's.

use btbx_bench::faults::{self, ErrKind, FaultOp, FaultPlan, FaultRule};
use btbx_bench::opts::DEFAULT_HTTP_TIMEOUT_MS;
use btbx_bench::serve::{http_request, ServeConfig, Server};
use btbx_bench::store::ResultStore;
use btbx_bench::Sweep;
use btbx_core::storage::BudgetPoint;
use btbx_core::OrgKind;
use btbx_trace::suite;
use btbx_uarch::stats::SimStats;
use btbx_uarch::SimResult;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Barrier, Mutex};
use std::time::Duration;

/// The armed fault plan is process-global; tests that arm one are
/// serialized. Every rule is additionally path-scoped to its test's
/// unique temp directory, so unrelated tests in this binary never match.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btbx-chaos-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn canned(cycles: u64) -> SimResult {
    SimResult {
        workload: "chaos".to_string(),
        org: "conv".to_string(),
        fdip_enabled: false,
        btb_budget_bits: 1,
        stats: SimStats {
            cycles,
            instructions: 1_000,
            ..SimStats::default()
        },
    }
}

/// One fault rule scoped to the property test's directory. Kinds are
/// paired with the operations they can actually fire on.
fn arb_rule() -> impl Strategy<Value = FaultRule> {
    let op_kind = prop_oneof![
        Just((FaultOp::Write, ErrKind::Enospc)),
        Just((FaultOp::Write, ErrKind::TornWrite)),
        Just((FaultOp::Write, ErrKind::Eio)),
        Just((FaultOp::Rename, ErrKind::RenameFail)),
        Just((FaultOp::Read, ErrKind::Eio)),
    ];
    (op_kind, 0u64..5u64, 0u64..3u64).prop_map(|((op, kind), nth, count)| FaultRule {
        op,
        kind,
        path: "btbx-chaos-prop".to_string(),
        nth,
        count,
        delay_ms: 0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any seeded schedule: operations succeed with the right
    /// value or fail loudly; the directory never holds a torn entry or
    /// a temp file; and once the plan is exhausted a clean pass
    /// converges to the undisturbed results.
    #[test]
    fn random_fault_schedules_never_corrupt_the_store(
        seed in any::<u64>(),
        rules in collection::vec(arb_rule(), 0..5),
    ) {
        let _serial = fault_lock();
        let dir = scratch("prop");
        let store = ResultStore::open(&dir).unwrap();
        let guard = faults::arm(FaultPlan { seed, rules });

        for i in 0..6u64 {
            let name = format!("k{i}.json");
            // A success must carry the correct value even when its
            // persistence failed behind the scenes; a failure is loud and
            // typed, nothing to assert beyond it not being a silent wrong
            // answer.
            if let Ok((r, _)) = store.get_or_compute(&name, false, || canned(i + 1)) {
                prop_assert_eq!(r.stats.cycles, i + 1);
            }
        }
        drop(guard);

        // Disk invariants: only complete entries and quarantined
        // damage, never a half-written file or abandoned temp.
        for entry in fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.ends_with(".corrupt") {
                continue;
            }
            prop_assert!(name.ends_with(".json"), "litter: {}", name);
            let text = fs::read_to_string(&path).unwrap();
            let parsed: Result<SimResult, _> = serde_json::from_str(&text);
            prop_assert!(parsed.is_ok(), "torn entry {}: {}", name, text);
        }

        // Clean pass: every key converges to the undisturbed value.
        for i in 0..6u64 {
            let name = format!("k{i}.json");
            let (r, _) = store.get_or_compute(&name, false, || canned(i + 1)).unwrap();
            prop_assert_eq!(r.stats.cycles, i + 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// 4 distinct points into a `max_inflight = 1` server whose publishes
/// are stalled: exactly one request is admitted at a time, the rest are
/// shed with `429` + `Retry-After` — and every shed point succeeds on
/// retry once load drains. No connection is ever reset.
#[test]
fn overloaded_server_sheds_with_retry_after_and_completes_admitted_work() {
    let _serial = fault_lock();
    let out = scratch("overload");
    let server = Server::start(ServeConfig {
        port: 0,
        cache_dir: out.join("cache"),
        threads: 4,
        shards: 1,
        max_inflight: 1,
        deadline: None,
        store: None,
        http_timeout: Duration::from_millis(DEFAULT_HTTP_TIMEOUT_MS),
    })
    .expect("server starts");
    let addr = server.addr().to_string();

    // Stall every cache publish under this test's directory: each
    // admitted request holds its admission slot for ≥400 ms, so the
    // barrier-released peers are deterministically shed.
    let guard = faults::arm(FaultPlan {
        seed: 6,
        rules: vec![FaultRule {
            op: FaultOp::Write,
            kind: ErrKind::Stall,
            path: "btbx-chaos-overload".to_string(),
            nth: 1,
            count: 0,
            delay_ms: 400,
        }],
    });

    let sweep = Sweep::named("chaos-overload")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb0_9, BudgetPoint::Kb1_8])
        .fdip_options([false])
        .windows(2_000, 4_000);
    let bodies: Vec<String> = sweep
        .points()
        .iter()
        .map(|p| serde_json::to_string(p).unwrap())
        .collect();
    assert_eq!(bodies.len(), 4);

    let barrier = Barrier::new(4);
    let responses: Vec<(usize, u16, String, Option<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .iter()
            .enumerate()
            .map(|(i, body)| {
                let addr = &addr;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    // An Err here would be a reset/dropped connection —
                    // exactly what overload protection must never do.
                    let r = http_request(addr, "POST", "/sim", body)
                        .expect("shedding must answer, not reset");
                    let retry = r.header("Retry-After").map(str::to_string);
                    (i, r.status, r.body, retry)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let shed: Vec<&(usize, u16, String, Option<String>)> =
        responses.iter().filter(|(_, s, ..)| *s == 429).collect();
    let ok = responses.iter().filter(|(_, s, ..)| *s == 200).count();
    assert!(ok >= 1, "the admitted request must complete: {responses:?}");
    assert!(!shed.is_empty(), "4 requests into 1 slot must shed");
    for (_, _, body, retry) in &shed {
        assert_eq!(retry.as_deref(), Some("1"), "shed without Retry-After");
        assert!(body.contains("overloaded"), "{body}");
    }
    for (_, status, body, _) in &responses {
        if *status == 200 {
            let _: SimResult = serde_json::from_str(body).expect("complete result body");
        }
    }

    // Every shed point succeeds on retry once capacity frees up.
    for (i, ..) in &shed {
        let mut done = false;
        for _ in 0..100 {
            let r = http_request(&addr, "POST", "/sim", &bodies[*i]).unwrap();
            match r.status {
                200 => {
                    done = true;
                    break;
                }
                429 => std::thread::sleep(Duration::from_millis(100)),
                other => panic!("unexpected status {other}: {}", r.body),
            }
        }
        assert!(done, "shed point {i} never completed on retry");
    }

    // The stats counters record the shedding.
    let stats = http_request(&addr, "GET", "/stats", "").unwrap();
    let count = |key: &str| -> u64 {
        let tail = &stats.body[stats.body.find(key).unwrap() + key.len()..];
        tail.split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(
        count("\"shed\":") >= shed.len() as u64,
        "shed counter must cover the observed 429s: {}",
        stats.body
    );
    assert!(count("\"errors\":") >= shed.len() as u64);

    drop(guard);
    server.shutdown().unwrap();
    server.join();
    let _ = fs::remove_dir_all(&out);
}

/// A runaway simulation is aborted at the per-request deadline with a
/// `503` on the *same connection* (no reset), counted, and the server
/// remains healthy for normal-sized work afterwards.
#[test]
fn deadline_aborts_runaway_simulations_and_the_server_survives() {
    let out = scratch("deadline");
    let server = Server::start(ServeConfig {
        port: 0,
        cache_dir: out.join("cache"),
        threads: 2,
        shards: 1,
        max_inflight: 0,
        deadline: Some(Duration::from_millis(150)),
        store: None,
        http_timeout: Duration::from_millis(DEFAULT_HTTP_TIMEOUT_MS),
    })
    .expect("server starts");
    let addr = server.addr().to_string();

    // A point far too large to finish inside 150 ms.
    let runaway = Sweep::named("chaos-runaway")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::BtbX])
        .budgets([BudgetPoint::Kb0_9])
        .fdip_options([false])
        .windows(2_000_000, 4_000_000);
    let body = serde_json::to_string(&runaway.points()[0]).unwrap();
    let r = http_request(&addr, "POST", "/sim", &body).expect("aborts answer, never reset");
    assert_eq!(r.status, 503, "{}", r.body);
    assert!(r.body.contains("deadline"), "{}", r.body);

    let stats = http_request(&addr, "GET", "/stats", "").unwrap();
    assert!(
        stats.body.contains("\"deadline_aborts\":1"),
        "{}",
        stats.body
    );

    // The server is not poisoned: health stays green and a reasonable
    // point still completes well inside the deadline.
    let health = http_request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    let small = Sweep::named("chaos-runaway")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::BtbX])
        .budgets([BudgetPoint::Kb0_9])
        .fdip_options([false])
        .windows(2_000, 4_000);
    let body = serde_json::to_string(&small.points()[0]).unwrap();
    let r = http_request(&addr, "POST", "/sim", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    server.shutdown().unwrap();
    server.join();
    let _ = fs::remove_dir_all(&out);
}

/// Every cache entry (name → bytes) under `out/cache`, excluding the
/// journal directory.
fn cache_entries(out: &Path) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = fs::read_dir(out.join("cache"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read(&p).unwrap(),
            )
        })
        .collect();
    entries.sort();
    entries
}

/// SIGKILL a sweep mid-run, resume it, and require the resumed cache to
/// be byte-identical to an undisturbed run's. Exercises the journal the
/// way a real crash does — no drop handlers, no flushes.
#[test]
fn sigkilled_sweep_resumes_to_byte_identical_results() {
    let bin = env!("CARGO_BIN_EXE_btbx");
    let workload = suite::ipc1_client().into_iter().next().unwrap().name;
    let disturbed = scratch("kill-a");
    let undisturbed = scratch("kill-b");
    let args = |out: &Path| -> Vec<String> {
        [
            "sweep",
            "--orgs",
            "conv,btbx",
            "--budgets",
            "0.9KB",
            "--suite",
            "ipc1",
            "--workloads",
            &workload,
            "--fdip",
            "both",
            "--warmup",
            "100000",
            "--measure",
            "200000",
            "--threads",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]
        .into_iter()
        .map(str::to_string)
        .collect()
    };

    // Start the doomed sweep and SIGKILL it mid-run (Child::kill is
    // SIGKILL on Unix: no unwinding, no Drop, no flushes).
    let mut child = Command::new(bin)
        .args(args(&disturbed))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweep");
    std::thread::sleep(Duration::from_millis(300));
    // On a fast machine the sweep may already have finished — the
    // resume path must behave identically either way.
    let _ = child.kill();
    let _ = child.wait();

    // Resume: exits 0 and reports what the journal restored.
    let resumed = Command::new(bin)
        .args(args(&disturbed))
        .arg("--resume")
        .output()
        .expect("resume run");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        resumed.status.success(),
        "resume failed: {stderr}\n{}",
        String::from_utf8_lossy(&resumed.stdout)
    );
    assert!(
        stderr.contains("resume:") && stderr.contains("resumed_points="),
        "resume must report journal recovery: {stderr}"
    );

    // Reference: the same sweep, never disturbed.
    let reference = Command::new(bin)
        .args(args(&undisturbed))
        .output()
        .expect("reference run");
    assert!(reference.status.success());

    let a = cache_entries(&disturbed);
    let b = cache_entries(&undisturbed);
    assert!(!a.is_empty(), "the resumed sweep must publish entries");
    assert_eq!(
        a.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "same entry set"
    );
    assert_eq!(a, b, "resumed cache must be byte-identical");
    let _ = fs::remove_dir_all(&disturbed);
    let _ = fs::remove_dir_all(&undisturbed);
}
