//! Differential suite for batched execution: a batched sweep must be a
//! pure performance optimization — bit-identical statistics AND
//! byte-identical cache entries versus the per-point serial path, for
//! every organization, across sharding, warm-ladder reuse and
//! crash-resume. Any divergence here means the batched executor is
//! simulating a *different* machine, not the same machine faster.

use btbx_bench::journal::{self, SweepJournal};
use btbx_bench::store::ResultStore;
use btbx_bench::{HarnessOpts, Sweep};
use btbx_core::storage::BudgetPoint;
use btbx_core::OrgKind;
use btbx_trace::suite;
use btbx_uarch::{AnyWarmLadder, SimResult};
use std::fs;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btbx-batchdiff-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(out_dir: &Path) -> HarnessOpts {
    HarnessOpts {
        warmup: 2_000,
        measure: 4_000,
        offset_instrs: 10_000,
        fresh: false,
        out_dir: out_dir.to_path_buf(),
        threads: 4,
        shards: 1,
        trace: None,
        http_timeout_ms: 600_000,
        resume: false,
        batch: true,
        fault_plan: None,
        store: None,
    }
}

/// Assert that two completed sweep output directories hold
/// byte-identical cache entries for every point of `sweep`.
fn assert_cache_bytes_equal(sweep: &Sweep, a: &Path, b: &Path) {
    for p in sweep.points() {
        let name = p.cache_file();
        let ba = fs::read(a.join("cache").join(&name))
            .unwrap_or_else(|e| panic!("{}: {e}", a.join("cache").join(&name).display()));
        let bb = fs::read(b.join("cache").join(&name))
            .unwrap_or_else(|e| panic!("{}: {e}", b.join("cache").join(&name).display()));
        assert_eq!(ba, bb, "cache entry bytes diverge for {name}");
    }
}

/// Every organization the factory knows, at three budget tiers: if any
/// lane's pipeline interaction (decode resteer, FDIP, MSHR timeliness)
/// leaked across lanes, at least one of these 24 points would diverge.
#[test]
fn batched_matches_per_point_for_every_org_and_budget() {
    let sweep = Sweep::named("diff-all-orgs")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs(OrgKind::ALL)
        .budgets([BudgetPoint::Kb1_8, BudgetPoint::Kb3_6, BudgetPoint::Kb14_5])
        .fdip_options([true])
        .windows(2_000, 4_000);
    let batched_dir = scratch("all-orgs-batched");
    let serial_dir = scratch("all-orgs-serial");
    let batched_opts = opts(&batched_dir);
    let mut serial_opts = opts(&serial_dir);
    serial_opts.batch = false;

    let batched = sweep.run(&batched_opts);
    let serial = sweep.run(&serial_opts);
    assert_eq!(batched.len(), OrgKind::ALL.len() * 3);
    for (b, s) in batched.iter().zip(&serial) {
        assert_eq!(
            b, s,
            "batched lane diverges from the serial run for {}@{}",
            b.org, b.btb_budget_bits
        );
    }
    assert_cache_bytes_equal(&sweep, &batched_dir, &serial_dir);
    let _ = fs::remove_dir_all(&batched_dir);
    let _ = fs::remove_dir_all(&serial_dir);
}

/// Sharding composed with batching: a batched group runs its lanes
/// unsharded, which per the cache-v3 contract (sharded == serial,
/// bit-for-bit) must still produce the bytes a sharded-unbatched or
/// serial-unbatched sweep would publish.
#[test]
fn sharded_batched_sweep_matches_serial_unbatched_bytes() {
    let sweep = Sweep::named("diff-sharded")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb3_6])
        .fdip_both()
        .windows(2_000, 4_000);
    let sharded_dir = scratch("sharded-batched");
    let serial_dir = scratch("sharded-serial");
    let mut sharded_opts = opts(&sharded_dir);
    sharded_opts.shards = 3;
    let mut serial_opts = opts(&serial_dir);
    serial_opts.batch = false;

    let sharded_batched = sweep.run(&sharded_opts);
    let serial = sweep.run(&serial_opts);
    assert_eq!(sharded_batched, serial);
    assert_cache_bytes_equal(&sweep, &sharded_dir, &serial_dir);
    let _ = fs::remove_dir_all(&sharded_dir);
    let _ = fs::remove_dir_all(&serial_dir);
}

/// Warm-ladder reuse next to batching: the serve layer restores warmed
/// microarchitectural state from an [`AnyWarmLadder`] across repeat
/// runs; those restored runs must agree exactly with what a batched
/// sweep published for the same points.
#[test]
fn warm_ladder_reuse_stays_bit_identical_alongside_batching() {
    let sweep = Sweep::named("diff-warm")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb3_6])
        .fdip_options([false])
        .windows(2_000, 4_000);
    let dir = scratch("warm-batched");
    let batched = sweep.run(&opts(&dir));
    for (point, expected) in sweep.points().iter().zip(&batched) {
        let ladder = AnyWarmLadder::new();
        let populate = point.run_sharded_with(3, 2, Some(&ladder));
        assert!(!ladder.is_empty(), "populate run must fill the ladder");
        let reuse = point.run_sharded_with(3, 2, Some(&ladder));
        assert_eq!(&populate, expected, "ladder-populating run diverges");
        assert_eq!(&reuse, expected, "warm-restored run diverges");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Crash-resume under batching: with some lanes of a batch group
/// journalled `done` (and durably published) and the rest lost, a
/// `--resume` run restores exactly the completed points and recomputes
/// only the missing ones — at lane granularity, not group granularity.
#[test]
fn resume_restores_exactly_completed_points_under_batching() {
    let sweep = Sweep::named("diff-resume")
        .workloads(suite::ipc1_client().into_iter().take(1))
        .orgs([OrgKind::Conv, OrgKind::BtbX])
        .budgets([BudgetPoint::Kb1_8, BudgetPoint::Kb14_5])
        .fdip_options([false])
        .windows(2_000, 4_000);
    let dir = scratch("resume");
    let first = sweep.run(&opts(&dir));
    assert_eq!(first.len(), 4);
    let names: Vec<String> = sweep.points().iter().map(|p| p.cache_file()).collect();
    let baseline: Vec<Vec<u8>> = names
        .iter()
        .map(|n| fs::read(dir.join("cache").join(n)).unwrap())
        .collect();

    // Simulate a crash after two lanes published: drop the other two
    // entries and craft the journal a dying sweep would have left —
    // `done` strictly for the survivors, no `finish`.
    for name in &names[2..] {
        fs::remove_file(dir.join("cache").join(name)).unwrap();
    }
    let key = journal::sweep_key(&names);
    {
        let (journal, _) = SweepJournal::open(&dir, key, false).unwrap();
        for name in &names[..2] {
            journal.attempt(name, "crafted");
            journal.done(name);
        }
        // Dropped without `finish()`: the journal file survives, as
        // after a crash.
    }

    let store = ResultStore::open(dir.join("cache")).unwrap();
    let mut resume_opts = opts(&dir);
    resume_opts.resume = true;
    let resumed: Vec<SimResult> = sweep.run(&resume_opts);

    assert_eq!(resumed, first, "resumed sweep must reproduce the matrix");
    assert_eq!(
        store.counters().computes,
        2,
        "exactly the lost lanes recompute; journalled-done points are restored"
    );
    for (name, bytes) in names.iter().zip(&baseline) {
        let now = fs::read(dir.join("cache").join(name)).unwrap();
        assert_eq!(&now, bytes, "recomputed entry bytes diverge for {name}");
    }
    // Completion removes the journal so a later --resume starts clean.
    assert!(
        !journal::journal_dir(&dir)
            .join(format!("sweep-{key:016x}.jnl"))
            .exists(),
        "completed sweep must retire its journal"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// `--no-batch` and batching agree even when the planner would have
/// formed mixed groups (two workloads, both FDIP settings): grouping is
/// invisible in every published artifact.
#[test]
fn mixed_workload_groups_match_unbatched_end_to_end() {
    let sweep = Sweep::named("diff-mixed")
        .workloads(suite::ipc1_client().into_iter().take(2))
        .orgs([OrgKind::Pdede, OrgKind::BtbXNoXc])
        .budgets([BudgetPoint::Kb3_6])
        .fdip_both()
        .windows(2_000, 4_000);
    let batched_dir = scratch("mixed-batched");
    let serial_dir = scratch("mixed-serial");
    let mut serial_opts = opts(&serial_dir);
    serial_opts.batch = false;

    let batched = sweep.run(&opts(&batched_dir));
    let serial = sweep.run(&serial_opts);
    assert_eq!(batched, serial);
    assert_cache_bytes_equal(&sweep, &batched_dir, &serial_dir);
    let _ = fs::remove_dir_all(&batched_dir);
    let _ = fs::remove_dir_all(&serial_dir);
}
