//! Backend-conformance suite for the content-addressed [`Store`] trait:
//! every backend (`dir://`, `mem://`, `http://`, `tiered://`) must
//! uphold the same guarantees behind [`ResultStore`] — publish/load
//! round-trips, damaged-entry quarantine (or absent-equivalence where
//! quarantine is unsupported), and single-flight computation — and the
//! HTTP backend must turn injected transport faults into typed
//! [`StoreError`]s rather than hangs or panics.

use btbx_bench::faults::{self, ErrKind, FaultOp, FaultPlan, FaultRule};
use btbx_bench::opts::StoreUrl;
use btbx_bench::serve::{ServeConfig, Server};
use btbx_bench::store::{open_store, HttpStore, MemStore, ResultStore, Store, StoreError};
use btbx_uarch::stats::SimStats;
use btbx_uarch::SimResult;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// The armed fault plan is process-global; tests that arm one are
/// serialized, and rules are scoped to this test's unique server
/// address so the other tests in this binary are unaffected.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btbx-storeconf-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn canned_result(cycles: u64) -> SimResult {
    SimResult {
        workload: "conformance".to_string(),
        org: "conv".to_string(),
        fdip_enabled: false,
        btb_budget_bits: 1,
        stats: SimStats {
            cycles,
            instructions: 1_000,
            ..SimStats::default()
        },
    }
}

const TIMEOUT: Duration = Duration::from_secs(10);

/// A blob host for the remote-backed stores: a plain `btbx serve` node
/// over its own `dir://` cache.
fn blob_host(tag: &str) -> (Server, PathBuf) {
    let out = scratch(tag);
    let server = Server::start(ServeConfig {
        port: 0,
        cache_dir: out.join("cache"),
        threads: 2,
        shards: 1,
        max_inflight: 0,
        deadline: None,
        store: None,
        http_timeout: TIMEOUT,
    })
    .expect("blob host starts");
    (server, out)
}

/// Every backend under test, each with its own label. The server handle
/// keeps the `http://` and `tiered://` backends' peer alive.
fn all_backends(tag: &str) -> (Server, PathBuf, Vec<(&'static str, ResultStore)>) {
    let (server, out) = blob_host(tag);
    let addr = server.addr().to_string();
    let stores = vec![
        (
            "dir",
            ResultStore::open(out.join("dir-backend")).expect("dir opens"),
        ),
        ("mem", ResultStore::open_backend(Arc::new(MemStore::new()))),
        (
            "http",
            ResultStore::open_url(&StoreUrl::Http(addr.clone()), TIMEOUT).expect("http opens"),
        ),
        (
            "tiered",
            ResultStore::open_url(
                &StoreUrl::Tiered {
                    local: out.join("tier-local"),
                    remote: addr,
                },
                TIMEOUT,
            )
            .expect("tiered opens"),
        ),
    ];
    (server, out, stores)
}

#[test]
fn every_backend_round_trips_results_and_reports_absent_as_none() {
    let (_server, out, stores) = all_backends("roundtrip");
    for (name, store) in &stores {
        let id = store.backend().id();
        assert_eq!(
            store
                .load("absent.json")
                .unwrap_or_else(|e| panic!("[{name}] {e}")),
            None,
            "[{name}] absent entries read as None, not as errors"
        );
        let result = canned_result(7);
        store
            .store("a.json", &result)
            .unwrap_or_else(|e| panic!("[{name}] {e}"));
        let loaded = store
            .load("a.json")
            .unwrap_or_else(|e| panic!("[{name}] {e}"))
            .unwrap_or_else(|| panic!("[{name}] stored entry must load"));
        assert_eq!(loaded, result, "[{name}] ({id}) round-trip equality");
        assert!(
            store.backend().has("a.json").unwrap(),
            "[{name}] has() sees the published entry"
        );
        assert!(
            !store.backend().has("absent.json").unwrap(),
            "[{name}] has() is false for absent keys"
        );
        assert_eq!(store.counters().disk_hits, 1, "[{name}] load counted");
    }
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn every_backend_treats_damaged_entries_as_misses_and_recovers() {
    let (_server, out, stores) = all_backends("damaged");
    for (name, store) in &stores {
        store
            .backend()
            .put("bad.json", b"{ not json !!")
            .unwrap_or_else(|e| panic!("[{name}] {e}"));
        assert_eq!(
            store
                .load("bad.json")
                .unwrap_or_else(|e| panic!("[{name}] {e}")),
            None,
            "[{name}] damaged entries are misses, never parse errors"
        );
        // The atomic rewrite lands cleanly over (or beside) the damage.
        let result = canned_result(11);
        store
            .store("bad.json", &result)
            .unwrap_or_else(|e| panic!("[{name}] {e}"));
        assert_eq!(
            store
                .load("bad.json")
                .unwrap_or_else(|e| panic!("[{name}] {e}")),
            Some(result),
            "[{name}] a clean rewrite replaces the damaged entry"
        );
    }
    // Local backends preserve the damage as evidence.
    assert!(
        out.join("dir-backend").join("bad.json.corrupt").exists(),
        "dir backend quarantines to .corrupt"
    );
    assert!(
        out.join("tier-local").join("bad.json.corrupt").exists(),
        "tiered backend quarantines its local tier"
    );
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn every_backend_single_flights_concurrent_computes() {
    let (_server, out, stores) = all_backends("singleflight");
    for (name, store) in &stores {
        let computed = AtomicU64::new(0);
        let threads = 4;
        let keys = [format!("{name}-p1.json"), format!("{name}-p2.json")];
        let barrier = Barrier::new(threads * keys.len());
        std::thread::scope(|scope| {
            for key in &keys {
                for _ in 0..threads {
                    let store = store.clone();
                    let computed = &computed;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        let (result, _fetch) = store
                            .get_or_compute(key, false, || {
                                computed.fetch_add(1, Ordering::Relaxed);
                                // Hold the flight open long enough for
                                // peers to join rather than disk-hit.
                                std::thread::sleep(Duration::from_millis(30));
                                canned_result(42)
                            })
                            .unwrap_or_else(|e| panic!("[{name}] {e}"));
                        assert_eq!(result.stats.cycles, 42);
                    });
                }
            }
        });
        assert_eq!(
            computed.load(Ordering::Relaxed),
            keys.len() as u64,
            "[{name}] computes == unique points across {threads} callers/key"
        );
        assert_eq!(store.counters().computes, keys.len() as u64, "[{name}]");
    }
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn remote_counters_track_hits_misses_and_bytes() {
    let (_server, out, stores) = all_backends("counters");
    for (name, store) in &stores {
        let Some(_) = store.backend().remote_counters() else {
            continue; // dir://, mem://: no remote tier to count.
        };
        let key = format!("{name}-m.json");
        assert_eq!(store.load(&key).unwrap(), None);
        store.store(&key, &canned_result(3)).unwrap();
        // tiered:// answers the re-read locally; http:// refetches.
        let _ = store.load(&key).unwrap();
        let counters = store.counters();
        assert!(
            counters.remote_misses >= 1,
            "[{name}] the absent probe counts as a remote miss"
        );
        if *name == "http" {
            assert!(counters.remote_hits >= 1, "[{name}] refetch counts");
            assert!(counters.remote_fetch_bytes > 0, "[{name}] bytes counted");
        }
        assert_eq!(counters.remote_errors, 0, "[{name}] no errors in this test");
    }
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn injected_transport_faults_surface_as_typed_errors_not_hangs() {
    let _serial = fault_lock();
    let (server, out, _stores) = all_backends("faults");
    let addr = server.addr().to_string();
    let store = ResultStore::open_url(&StoreUrl::Http(addr.clone()), TIMEOUT).unwrap();
    store.store("f.json", &canned_result(9)).unwrap();

    // A reset connection is a typed StoreError::Remote, and counted.
    let guard = faults::arm(FaultPlan {
        seed: 11,
        rules: vec![FaultRule {
            op: FaultOp::Connect,
            kind: ErrKind::ConnReset,
            path: addr.clone(),
            nth: 1,
            count: 1,
            delay_ms: 0,
        }],
    });
    match store.load("f.json") {
        Err(StoreError::Remote { action, url, .. }) => {
            assert_eq!(action, "fetching remote blob");
            assert!(url.contains("/blob/f.json"), "{url}");
        }
        other => panic!("expected StoreError::Remote, got {other:?}"),
    }
    assert!(store.counters().remote_errors >= 1, "error was counted");
    drop(guard);

    // A slow read delays but completes: bounded, typed, no hang.
    let guard = faults::arm(FaultPlan {
        seed: 12,
        rules: vec![FaultRule {
            op: FaultOp::HttpRead,
            kind: ErrKind::SlowRead,
            path: addr.clone(),
            nth: 1,
            count: 1,
            delay_ms: 50,
        }],
    });
    let begin = Instant::now();
    let loaded = store.load("f.json").expect("slow read still completes");
    assert_eq!(loaded, Some(canned_result(9)));
    assert!(
        begin.elapsed() < TIMEOUT,
        "the slow read must finish well inside the request timeout"
    );
    drop(guard);
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn open_store_builds_the_backend_a_url_names() {
    let (server, out, _stores) = all_backends("urls");
    let addr = server.addr().to_string();
    for (url, id_prefix) in [
        (StoreUrl::Dir(out.join("u-dir")), "dir://"),
        (StoreUrl::Mem, "mem://"),
        (StoreUrl::Http(addr.clone()), "http://"),
        (
            StoreUrl::Tiered {
                local: out.join("u-tier"),
                remote: addr,
            },
            "tiered://",
        ),
    ] {
        let backend = open_store(&url, TIMEOUT).expect("opens");
        assert!(
            backend.id().starts_with(id_prefix),
            "{url} -> {}",
            backend.id()
        );
        backend.put("k", b"v").unwrap();
        assert_eq!(backend.get("k").unwrap().as_deref(), Some(&b"v"[..]));
    }
    // An HttpStore against a dead peer errors out instead of hanging.
    let dead = HttpStore::new("127.0.0.1:1", Duration::from_millis(500));
    match dead.get("k") {
        Err(StoreError::Remote { .. }) => {}
        other => panic!("expected Remote error from a dead peer, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&out);
}
