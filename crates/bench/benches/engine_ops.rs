//! Criterion microbenchmarks for the statically dispatched
//! [`BtbEngine`]: per-organization `lookup` and `update` cost at the
//! paper's 14.5 KB budget, across every `OrgKind` (including the
//! ablations and the idealized infinite BTB, whose hash-map probe rides
//! on the in-repo Fx hasher). The companion `btb_ops` bench measures the
//! same operations through the boxed `dyn Btb` compatibility path; the
//! gap between the two is the dispatch cost the engine exists to remove.

use btbx_core::storage::BudgetPoint;
use btbx_core::types::{Arch, BranchClass, BranchEvent};
use btbx_core::{BtbEngine, OrgKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn branch_stream(n: usize) -> Vec<BranchEvent> {
    let mut rng = SmallRng::seed_from_u64(42);
    (0..n)
        .map(|_| {
            let pc = rng.gen_range(0x10_0000u64..0x40_0000) & !3;
            let dist = 4u64 << rng.gen_range(0..18);
            let class = match rng.gen_range(0..10) {
                0..=5 => BranchClass::CondDirect,
                6..=7 => BranchClass::CallDirect,
                8 => BranchClass::Return,
                _ => BranchClass::UncondDirect,
            };
            BranchEvent::taken(pc, pc + dist, class)
        })
        .collect()
}

fn engine(org: OrgKind) -> BtbEngine {
    BtbEngine::build(org, BudgetPoint::Kb14_5.bits(Arch::Arm64), Arch::Arm64)
}

fn bench_engine_lookup(c: &mut Criterion) {
    let stream = branch_stream(4096);
    let mut group = c.benchmark_group("engine_lookup");
    for org in OrgKind::ALL {
        let mut btb = engine(org);
        for ev in &stream {
            btb.update(ev);
        }
        group.bench_function(org.id(), |b| {
            let mut i = 0;
            b.iter(|| {
                let ev = &stream[i & 4095];
                i += 1;
                black_box(btb.lookup(black_box(ev.pc)))
            });
        });
    }
    group.finish();
}

fn bench_engine_update(c: &mut Criterion) {
    let stream = branch_stream(4096);
    let mut group = c.benchmark_group("engine_update");
    for org in OrgKind::ALL {
        let mut btb = engine(org);
        group.bench_function(org.id(), |b| {
            let mut i = 0;
            b.iter(|| {
                let ev = &stream[i & 4095];
                i += 1;
                btb.update(black_box(ev));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine_lookup, bench_engine_update
}
criterion_main!(benches);
