//! Criterion microbenchmarks: hashed perceptron prediction/training and
//! RAS operations.

use btbx_uarch::perceptron::HashedPerceptron;
use btbx_uarch::ras::ReturnAddressStack;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_perceptron(c: &mut Criterion) {
    let mut group = c.benchmark_group("perceptron");
    group.bench_function("predict", |b| {
        let p = HashedPerceptron::new();
        let mut pc = 0x40_0000u64;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            black_box(p.predict(black_box(pc)))
        });
    });
    group.bench_function("predict_train", |b| {
        let mut p = HashedPerceptron::new();
        let mut pc = 0x40_0000u64;
        let mut flip = false;
        b.iter(|| {
            pc = pc.wrapping_add(64);
            let pred = p.predict(black_box(pc));
            flip = !flip;
            p.train(pred, flip);
        });
    });
    group.finish();
}

fn bench_ras(c: &mut Criterion) {
    c.bench_function("ras_push_pop", |b| {
        let mut ras = ReturnAddressStack::new(64);
        b.iter(|| {
            ras.push(black_box(0x1234));
            black_box(ras.pop())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_perceptron, bench_ras
}
criterion_main!(benches);
