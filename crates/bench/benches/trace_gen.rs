//! Criterion microbenchmarks: synthetic image generation and walker
//! throughput, plus trace codec encode/decode rates.

use btbx_core::types::Arch;
use btbx_trace::codec;
use btbx_trace::synth::{ProgramImage, SynthParams, SyntheticTrace};
use btbx_trace::TraceSource;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("image_generate");
    group.sample_size(10);
    for funcs in [100usize, 800] {
        group.bench_function(format!("{funcs}_funcs"), |b| {
            let params = SynthParams::server(funcs);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(ProgramImage::generate(&params, seed))
            });
        });
    }
    group.finish();
}

fn bench_walker(c: &mut Criterion) {
    let image = ProgramImage::generate(&SynthParams::server(400), 7);
    let mut trace = SyntheticTrace::new(image, "bench", 7);
    let mut group = c.benchmark_group("walker");
    group.throughput(Throughput::Elements(1));
    group.bench_function("next_instr", |b| {
        b.iter(|| black_box(trace.next_instr()));
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let image = ProgramImage::generate(&SynthParams::server(200), 9);
    let instrs: Vec<_> = SyntheticTrace::new(image, "bench", 9)
        .take_instrs(50_000)
        .into_iter_instrs()
        .collect();
    let encoded = codec::encode("bench", Arch::Arm64, instrs.clone());
    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(instrs.len() as u64));
    group.bench_function("encode_50k", |b| {
        b.iter(|| black_box(codec::encode("bench", Arch::Arm64, instrs.iter().copied())));
    });
    group.bench_function("decode_50k", |b| {
        b.iter(|| {
            let d = codec::Decoder::new(encoded.clone()).unwrap();
            black_box(d.into_iter_instrs().count())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generation, bench_walker, bench_codec
}
criterion_main!(benches);
