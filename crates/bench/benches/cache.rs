//! Criterion microbenchmarks: cache probe/fill and full-hierarchy access
//! paths.

use btbx_uarch::cache::{Cache, Probe};
use btbx_uarch::config::SimConfig;
use btbx_uarch::hierarchy::{Hierarchy, Port};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cache_probe(c: &mut Criterion) {
    let config = SimConfig::default();
    let mut cache = Cache::new("bench-l1i", config.l1i);
    // Warm half the blocks so probes mix hits and misses.
    for b in 0..256u64 {
        if let Probe::Miss(start) = cache.probe(b * 2, 0) {
            cache.record_fill(b * 2, start + 4, false);
        }
    }
    c.bench_function("l1i_probe", |b| {
        let mut blk = 0u64;
        let mut now = 1_000u64;
        b.iter(|| {
            blk = (blk + 1) % 512;
            now += 1;
            black_box(cache.probe(black_box(blk), now))
        });
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    group.bench_function("instr_hit_path", |b| {
        let mut h = Hierarchy::new(&SimConfig::default());
        let _ = h.access(Port::Instr, 0x1000, 0);
        let mut now = 1_000u64;
        b.iter(|| {
            now += 1;
            black_box(h.access(Port::Instr, black_box(0x1000), now))
        });
    });
    group.bench_function("data_streaming", |b| {
        let mut h = Hierarchy::new(&SimConfig::default());
        let mut addr = 0x6000_0000u64;
        let mut now = 0u64;
        b.iter(|| {
            addr += 64;
            now += 10_000; // let MSHRs drain between accesses
            black_box(h.access(Port::Data, black_box(addr), now))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache_probe, bench_hierarchy
}
criterion_main!(benches);
