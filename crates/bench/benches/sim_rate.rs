//! Criterion macrobenchmark: end-to-end simulation rate (instructions
//! simulated per second) per BTB organization — the cost of the full
//! front-end model.

use btbx_core::storage::BudgetPoint;
use btbx_core::types::Arch;
use btbx_core::{factory, OrgKind};
use btbx_trace::synth::{ProgramImage, SynthParams, SyntheticTrace};
use btbx_uarch::{simulate, SimConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_sim(c: &mut Criterion) {
    let image = ProgramImage::generate(&SynthParams::server(600), 3);
    let budget = BudgetPoint::Kb14_5.bits(Arch::Arm64);
    const INSTRS: u64 = 100_000;
    let mut group = c.benchmark_group("sim_rate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INSTRS));
    for org in [OrgKind::Conv, OrgKind::Pdede, OrgKind::BtbX] {
        group.bench_function(org.id(), |b| {
            b.iter(|| {
                let trace = SyntheticTrace::new(image.clone(), "bench", 3);
                let btb = factory::build(org, budget, Arch::Arm64);
                black_box(simulate(
                    SimConfig::with_fdip(),
                    trace,
                    btb,
                    org.id(),
                    20_000,
                    INSTRS,
                ))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim
}
criterion_main!(benches);
