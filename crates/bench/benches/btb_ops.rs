//! Criterion microbenchmarks: BTB lookup/update throughput per
//! organization at the paper's 14.5 KB budget, plus the way-sizing
//! ablation (uniform vs paper ways).

use btbx_core::storage::BudgetPoint;
use btbx_core::types::{Arch, BranchClass, BranchEvent};
use btbx_core::{factory, OrgKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn branch_stream(n: usize) -> Vec<BranchEvent> {
    let mut rng = SmallRng::seed_from_u64(42);
    (0..n)
        .map(|_| {
            let pc = rng.gen_range(0x10_0000u64..0x40_0000) & !3;
            let dist = 4u64 << rng.gen_range(0..18);
            let class = match rng.gen_range(0..10) {
                0..=5 => BranchClass::CondDirect,
                6..=7 => BranchClass::CallDirect,
                8 => BranchClass::Return,
                _ => BranchClass::UncondDirect,
            };
            BranchEvent::taken(pc, pc + dist, class)
        })
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let budget = BudgetPoint::Kb14_5.bits(Arch::Arm64);
    let stream = branch_stream(4096);
    let mut group = c.benchmark_group("btb_lookup");
    for org in [
        OrgKind::Conv,
        OrgKind::Pdede,
        OrgKind::BtbX,
        OrgKind::RBtb,
        OrgKind::BtbXUniform,
    ] {
        let mut btb = factory::build(org, budget, Arch::Arm64);
        for ev in &stream {
            btb.update(ev);
        }
        group.bench_function(org.id(), |b| {
            let mut i = 0;
            b.iter(|| {
                let ev = &stream[i & 4095];
                i += 1;
                black_box(btb.lookup(black_box(ev.pc)))
            });
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let budget = BudgetPoint::Kb14_5.bits(Arch::Arm64);
    let stream = branch_stream(4096);
    let mut group = c.benchmark_group("btb_update");
    for org in [OrgKind::Conv, OrgKind::Pdede, OrgKind::BtbX] {
        let mut btb = factory::build(org, budget, Arch::Arm64);
        group.bench_function(org.id(), |b| {
            let mut i = 0;
            b.iter(|| {
                let ev = &stream[i & 4095];
                i += 1;
                btb.update(black_box(ev));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lookup, bench_update
}
criterion_main!(benches);
