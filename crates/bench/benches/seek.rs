//! Criterion microbenchmarks for synthetic-generator repositioning: the
//! costs behind `ParallelSession`'s streaming shards.
//!
//! * `step` — materialize records one by one (`next_instr`), the cost a
//!   consumer pays per simulated instruction;
//! * `advance` — the materialization-free skip used to position a cold
//!   shard at its window start;
//! * `checkpoint_restore` — O(state) repositioning through a snapshot,
//!   what a ladder-warm shard pays instead of `advance`;
//! * `walker_clone` — handing a shard its own stream off the Arc-shared
//!   prototype image.

use btbx_trace::source::{SeekableSource, TraceSource};
use btbx_trace::synth::{ProgramImage, SynthParams, SyntheticTrace};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const SKIP: u64 = 50_000;

fn walker() -> SyntheticTrace {
    let params = SynthParams::server(700);
    SyntheticTrace::new(ProgramImage::generate(&params, 11), "bench", 11)
}

fn bench_positioning(c: &mut Criterion) {
    let proto = walker();
    let mut group = c.benchmark_group("generator_positioning");
    group.throughput(Throughput::Elements(SKIP));

    group.bench_function("step", |b| {
        b.iter(|| {
            let mut w = proto.clone();
            for _ in 0..SKIP {
                black_box(w.next_instr());
            }
            w.position()
        });
    });

    group.bench_function("advance", |b| {
        b.iter(|| {
            let mut w = proto.clone();
            w.advance(SKIP);
            black_box(w.position())
        });
    });

    // Snapshot taken once, restored per iteration: the ladder-warm path.
    let cp = {
        let mut w = proto.clone();
        w.advance(SKIP);
        w.checkpoint()
    };
    group.bench_function("checkpoint_restore", |b| {
        b.iter(|| {
            let mut w = proto.clone();
            w.restore(&cp);
            black_box(w.position())
        });
    });

    group.finish();
}

fn bench_clone(c: &mut Criterion) {
    let proto = walker();
    c.bench_function("walker_clone", |b| {
        b.iter(|| black_box(proto.clone()).position());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_positioning, bench_clone
}
criterion_main!(benches);
