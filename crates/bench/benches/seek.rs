//! Criterion microbenchmarks for trace repositioning: the costs behind
//! `ParallelSession`'s streaming shards.
//!
//! Synthetic walker (`generator_positioning`):
//!
//! * `step` — materialize records one by one (`next_instr`), the cost a
//!   consumer pays per simulated instruction;
//! * `advance` — the materialization-free skip used to position a cold
//!   shard at its window start;
//! * `checkpoint_restore` — O(state) repositioning through a snapshot,
//!   what a ladder-warm shard pays instead of `advance`;
//! * `walker_clone` — handing a shard its own stream off the Arc-shared
//!   prototype image.
//!
//! `.btbt` container (`container_positioning`):
//!
//! * `file_step` — sequential block decode via `next_instr`, the
//!   file-backed analogue of `step`;
//! * `file_fill_block` — the batched decode path the simulator's hot
//!   loop actually uses;
//! * `file_seek_cold` — index binary-search + one block read from a
//!   fresh source: the cost of positioning a file-backed shard with no
//!   ladder at all (contrast with the walker, where a cold seek is
//!   O(position) stepping).

use btbx_trace::container::{write_container, PackedFileSource};
use btbx_trace::packed::PackedBuf;
use btbx_trace::source::{SeekableSource, TraceSource};
use btbx_trace::synth::{ProgramImage, SynthParams, SyntheticTrace};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const SKIP: u64 = 50_000;

fn walker() -> SyntheticTrace {
    let params = SynthParams::server(700);
    SyntheticTrace::new(ProgramImage::generate(&params, 11), "bench", 11)
}

fn bench_positioning(c: &mut Criterion) {
    let proto = walker();
    let mut group = c.benchmark_group("generator_positioning");
    group.throughput(Throughput::Elements(SKIP));

    group.bench_function("step", |b| {
        b.iter(|| {
            let mut w = proto.clone();
            for _ in 0..SKIP {
                black_box(w.next_instr());
            }
            w.position()
        });
    });

    group.bench_function("advance", |b| {
        b.iter(|| {
            let mut w = proto.clone();
            w.advance(SKIP);
            black_box(w.position())
        });
    });

    // Snapshot taken once, restored per iteration: the ladder-warm path.
    let cp = {
        let mut w = proto.clone();
        w.advance(SKIP);
        w.checkpoint()
    };
    group.bench_function("checkpoint_restore", |b| {
        b.iter(|| {
            let mut w = proto.clone();
            w.restore(&cp);
            black_box(w.position())
        });
    });

    group.finish();
}

fn bench_clone(c: &mut Criterion) {
    let proto = walker();
    c.bench_function("walker_clone", |b| {
        b.iter(|| black_box(proto.clone()).position());
    });
}

fn bench_container(c: &mut Criterion) {
    // The walker's first 2×SKIP instructions, as a .btbt container.
    let path = std::env::temp_dir().join(format!("btbx-seek-bench-{}.btbt", std::process::id()));
    let file = std::fs::File::create(&path).expect("temp container");
    let mut source = walker();
    write_container(
        file,
        "bench",
        btbx_core::types::Arch::Arm64,
        &mut source,
        SKIP * 2,
    )
    .expect("container writes");
    let proto = PackedFileSource::open(&path).expect("container reads");

    let mut group = c.benchmark_group("container_positioning");
    group.throughput(Throughput::Elements(SKIP));

    group.bench_function("file_step", |b| {
        b.iter(|| {
            let mut s = proto.clone();
            for _ in 0..SKIP {
                black_box(s.next_instr());
            }
            SeekableSource::position(&s)
        });
    });

    group.bench_function("file_fill_block", |b| {
        let mut block = PackedBuf::with_capacity(256);
        b.iter(|| {
            let mut s = proto.clone();
            let mut left = SKIP as usize;
            while left > 0 {
                block.clear();
                let n = s.fill_block(&mut block, 256.min(left));
                if n == 0 {
                    break;
                }
                left -= n;
            }
            black_box(SeekableSource::position(&s))
        });
    });

    // A cold seek lands SKIP deep with one index lookup + one block
    // decode; same throughput denominator as the walker's `advance` for
    // direct comparison.
    group.bench_function("file_seek_cold", |b| {
        b.iter(|| {
            let mut s = proto.clone();
            s.seek(SKIP);
            black_box(s.next_instr());
            SeekableSource::position(&s)
        });
    });

    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_positioning, bench_clone, bench_container
}
criterion_main!(benches);
