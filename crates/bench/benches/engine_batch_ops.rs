//! Criterion microbenchmarks for [`EngineBank`] fan-out: the marginal
//! per-engine cost of probing and training K engines through
//! `lookup_all`/`update_all` versus driving one engine directly. The
//! batched sweep executor amortizes trace decode across a bank of
//! org×budget lanes; these numbers bound how much of that amortization
//! the fan-out layer itself gives back. Reported per-element (`K`
//! lookups per iteration), so a flat line across bank sizes means the
//! bank adds no overhead beyond the engines it holds.

use btbx_core::spec::BtbSpec;
use btbx_core::storage::BudgetPoint;
use btbx_core::types::{Arch, BranchClass, BranchEvent};
use btbx_core::{BtbEngine, EngineBank, OrgKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn branch_stream(n: usize) -> Vec<BranchEvent> {
    let mut rng = SmallRng::seed_from_u64(42);
    (0..n)
        .map(|_| {
            let pc = rng.gen_range(0x10_0000u64..0x40_0000) & !3;
            let dist = 4u64 << rng.gen_range(0..18);
            let class = match rng.gen_range(0..10) {
                0..=5 => BranchClass::CondDirect,
                6..=7 => BranchClass::CallDirect,
                8 => BranchClass::Return,
                _ => BranchClass::UncondDirect,
            };
            BranchEvent::taken(pc, pc + dist, class)
        })
        .collect()
}

/// A bank of `k` lanes cycling through the evaluated organizations and
/// budget tiers — the mix a real batched sweep group holds.
fn bank(k: usize) -> EngineBank {
    const BUDGETS: [BudgetPoint; 3] = [BudgetPoint::Kb1_8, BudgetPoint::Kb3_6, BudgetPoint::Kb14_5];
    let specs: Vec<BtbSpec> = (0..k)
        .map(|i| {
            BtbSpec::of(OrgKind::PAPER_EVAL[i % OrgKind::PAPER_EVAL.len()])
                .at(BUDGETS[(i / OrgKind::PAPER_EVAL.len()) % BUDGETS.len()])
        })
        .collect();
    EngineBank::from_specs(&specs).expect("bench specs are valid")
}

fn bench_bank_lookup(c: &mut Criterion) {
    let stream = branch_stream(4096);
    let mut group = c.benchmark_group("bank_lookup");
    // Single-engine baseline: what one lane pays without the bank.
    let mut solo = BtbEngine::build(
        OrgKind::BtbX,
        BudgetPoint::Kb14_5.bits(Arch::Arm64),
        Arch::Arm64,
    );
    for ev in &stream {
        solo.update(ev);
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function("solo", |b| {
        let mut i = 0;
        b.iter(|| {
            let ev = &stream[i & 4095];
            i += 1;
            black_box(solo.lookup(black_box(ev.pc)))
        });
    });
    for k in [3usize, 9, 18] {
        let mut engines = bank(k);
        for ev in &stream {
            engines.update_all(ev);
        }
        let mut hits = Vec::with_capacity(k);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_function(format!("bank{k}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let ev = &stream[i & 4095];
                i += 1;
                engines.lookup_all(black_box(ev.pc), &mut hits);
                black_box(hits.len())
            });
        });
    }
    group.finish();
}

fn bench_bank_update(c: &mut Criterion) {
    let stream = branch_stream(4096);
    let mut group = c.benchmark_group("bank_update");
    group.throughput(Throughput::Elements(1));
    group.bench_function("solo", |b| {
        let mut solo = BtbEngine::build(
            OrgKind::BtbX,
            BudgetPoint::Kb14_5.bits(Arch::Arm64),
            Arch::Arm64,
        );
        let mut i = 0;
        b.iter(|| {
            let ev = &stream[i & 4095];
            i += 1;
            solo.update(black_box(ev));
        });
    });
    for k in [3usize, 9, 18] {
        let mut engines = bank(k);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_function(format!("bank{k}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let ev = &stream[i & 4095];
                i += 1;
                engines.update_all(black_box(ev));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bank_lookup, bench_bank_update
}
criterion_main!(benches);
