//! Command-line options shared by every `btbx` subcommand.

use std::path::PathBuf;

/// Harness options parsed from `std::env::args`.
///
/// The paper warms for 50 M instructions and measures 50 M; the defaults
/// here are scaled to interactive hardware and can be raised with
/// `--warmup`/`--measure` for higher-fidelity runs (shapes are stable
/// well below the paper's window sizes because the synthetic workloads
/// cycle their working sets quickly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Warm-up instructions per simulation.
    pub warmup: u64,
    /// Measured instructions per simulation.
    pub measure: u64,
    /// Instructions per workload for offset-distribution studies.
    pub offset_instrs: u64,
    /// Ignore cached simulation results and re-run (the cache is still
    /// refreshed with the new results).
    pub fresh: bool,
    /// Output directory for CSV/JSON artifacts and the simulation cache.
    pub out_dir: PathBuf,
    /// Worker threads.
    pub threads: usize,
    /// Trace shards per simulation (1 = serial replay). Sharded runs
    /// replay each simulation as `N` interval shards with warm-up
    /// carry-in (see EXPERIMENTS.md, "Interval sharding").
    pub shards: usize,
    /// Replay this `.btbt` trace container instead of the synthetic
    /// suites (`sweep` substitutes it for the selected suite; `bench`
    /// measures file-backed throughput on it).
    pub trace: Option<PathBuf>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            warmup: 500_000,
            measure: 1_000_000,
            offset_instrs: 1_000_000,
            fresh: false,
            out_dir: PathBuf::from("results"),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            shards: 1,
            trace: None,
        }
    }
}

/// A command-line parse failure, formatted for terminal display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// A flag that is not part of the option grammar.
    UnknownFlag(String),
    /// A flag whose value is missing or not a number.
    BadValue {
        /// The flag, e.g. `--warmup`.
        flag: String,
        /// What was found instead of a value.
        found: Option<String>,
    },
    /// `--help` was requested; the caller should print usage and exit 0.
    HelpRequested,
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::UnknownFlag(flag) => {
                write!(f, "unknown option `{flag}` (try --help)")
            }
            OptError::BadValue {
                flag,
                found: Some(v),
            } => {
                write!(f, "{flag} expects a number, got `{v}`")
            }
            OptError::BadValue { flag, found: None } => {
                write!(f, "{flag} expects a value")
            }
            OptError::HelpRequested => f.write_str("help requested"),
        }
    }
}

impl std::error::Error for OptError {}

/// Usage text for the shared options (each subcommand prepends its own).
pub const OPTIONS_USAGE: &str = "\
options:
  --warmup N         warm-up instructions per simulation   [500000]
  --measure N        measured instructions per simulation  [1000000]
  --offset-instrs N  instructions per offset study         [1000000]
  --quick            preset: 150k warm-up / 300k measured windows
  --threads N        worker threads                        [all cores]
  --shards N         interval shards per simulation        [1]
  --trace FILE       replay a .btbt trace container instead of the
                     synthetic suites (see `btbx trace --help`)
  --fresh            re-simulate even when cached results exist
  --out DIR          artifact + cache directory            [results]
  -h, --help         show this help";

impl HarnessOpts {
    /// Parse from an iterator of arguments (without the program name).
    ///
    /// # Errors
    ///
    /// [`OptError`] on unknown flags or malformed values;
    /// [`OptError::HelpRequested`] when `--help`/`-h` is present.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, OptError> {
        let mut opts = HarnessOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |flag: &str| -> Result<u64, OptError> {
                let found = it.next();
                found
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .ok_or(OptError::BadValue {
                        flag: flag.to_string(),
                        found,
                    })
            };
            match arg.as_str() {
                "--warmup" => opts.warmup = take("--warmup")?,
                "--measure" => opts.measure = take("--measure")?,
                "--offset-instrs" => opts.offset_instrs = take("--offset-instrs")?,
                "--threads" => opts.threads = take("--threads")? as usize,
                "--shards" => opts.shards = (take("--shards")? as usize).max(1),
                "--quick" => {
                    opts.warmup = 150_000;
                    opts.measure = 300_000;
                    opts.offset_instrs = 300_000;
                }
                "--fresh" => opts.fresh = true,
                "--trace" => {
                    let file = it.next().ok_or(OptError::BadValue {
                        flag: "--trace".to_string(),
                        found: None,
                    })?;
                    opts.trace = Some(PathBuf::from(file));
                }
                "--out" => {
                    let dir = it.next().ok_or(OptError::BadValue {
                        flag: "--out".to_string(),
                        found: None,
                    })?;
                    opts.out_dir = PathBuf::from(dir);
                }
                "--help" | "-h" => return Err(OptError::HelpRequested),
                other => return Err(OptError::UnknownFlag(other.to_string())),
            }
        }
        Ok(opts)
    }

    /// Parse from the process arguments, exiting with usage on errors (the
    /// behaviour every binary wants at top level).
    pub fn from_env() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(OptError::HelpRequested) => {
                println!("{OPTIONS_USAGE}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}\n{OPTIONS_USAGE}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessOpts, OptError> {
        HarnessOpts::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.warmup, 500_000);
        assert!(!o.fresh);
    }

    #[test]
    fn numeric_flags() {
        let o = parse(&["--warmup", "1000", "--measure", "2000", "--threads", "4"]).unwrap();
        assert_eq!(o.warmup, 1000);
        assert_eq!(o.measure, 2000);
        assert_eq!(o.threads, 4);
    }

    #[test]
    fn quick_scales_down() {
        let o = parse(&["--quick"]).unwrap();
        assert!(o.measure < HarnessOpts::default().measure);
    }

    #[test]
    fn out_dir() {
        let o = parse(&["--out", "/tmp/x", "--fresh"]).unwrap();
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert!(o.fresh);
    }

    #[test]
    fn trace_file() {
        assert_eq!(parse(&[]).unwrap().trace, None);
        let o = parse(&["--trace", "/tmp/t.btbt"]).unwrap();
        assert_eq!(o.trace, Some(PathBuf::from("/tmp/t.btbt")));
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert_eq!(
            parse(&["--bogus"]),
            Err(OptError::UnknownFlag("--bogus".to_string()))
        );
    }

    #[test]
    fn missing_and_malformed_values_are_errors() {
        assert_eq!(
            parse(&["--warmup"]),
            Err(OptError::BadValue {
                flag: "--warmup".to_string(),
                found: None
            })
        );
        assert_eq!(
            parse(&["--measure", "lots"]),
            Err(OptError::BadValue {
                flag: "--measure".to_string(),
                found: Some("lots".to_string())
            })
        );
        assert!(parse(&["--out"]).is_err());
    }

    #[test]
    fn help_is_reported_not_exited() {
        assert_eq!(parse(&["--help"]), Err(OptError::HelpRequested));
        assert_eq!(parse(&["-h"]), Err(OptError::HelpRequested));
    }

    #[test]
    fn errors_render_usefully() {
        let e = parse(&["--bogus"]).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
        let e = parse(&["--warmup", "x"]).unwrap_err();
        assert!(e.to_string().contains("expects a number"));
    }
}
