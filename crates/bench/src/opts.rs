//! Command-line options shared by every harness binary.

use std::path::PathBuf;

/// Harness options parsed from `std::env::args`.
///
/// The paper warms for 50 M instructions and measures 50 M; the defaults
/// here are scaled to interactive hardware and can be raised with
/// `--warmup`/`--measure` for higher-fidelity runs (shapes are stable
/// well below the paper's window sizes because the synthetic workloads
/// cycle their working sets quickly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Warm-up instructions per simulation.
    pub warmup: u64,
    /// Measured instructions per simulation.
    pub measure: u64,
    /// Instructions per workload for offset-distribution studies.
    pub offset_instrs: u64,
    /// Ignore cached simulation matrices and re-run.
    pub fresh: bool,
    /// Output directory for CSV/JSON artifacts.
    pub out_dir: PathBuf,
    /// Worker threads.
    pub threads: usize,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            warmup: 500_000,
            measure: 1_000_000,
            offset_instrs: 1_000_000,
            fresh: false,
            out_dir: PathBuf::from("results"),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
        }
    }
}

impl HarnessOpts {
    /// Parse from an iterator of arguments (without the program name).
    ///
    /// Unknown flags abort with a usage message.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = HarnessOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |name: &str| -> u64 {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} expects a number"))
            };
            match arg.as_str() {
                "--warmup" => opts.warmup = take("--warmup"),
                "--measure" => opts.measure = take("--measure"),
                "--offset-instrs" => opts.offset_instrs = take("--offset-instrs"),
                "--threads" => opts.threads = take("--threads") as usize,
                "--quick" => {
                    opts.warmup = 150_000;
                    opts.measure = 300_000;
                    opts.offset_instrs = 300_000;
                }
                "--fresh" => opts.fresh = true,
                "--out" => {
                    opts.out_dir = PathBuf::from(
                        it.next().expect("--out expects a directory"),
                    );
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: [--warmup N] [--measure N] [--offset-instrs N] \
                         [--threads N] [--quick] [--fresh] [--out DIR]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option {other}; try --help"),
            }
        }
        opts
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessOpts {
        HarnessOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.warmup, 500_000);
        assert!(!o.fresh);
    }

    #[test]
    fn numeric_flags() {
        let o = parse(&["--warmup", "1000", "--measure", "2000", "--threads", "4"]);
        assert_eq!(o.warmup, 1000);
        assert_eq!(o.measure, 2000);
        assert_eq!(o.threads, 4);
    }

    #[test]
    fn quick_scales_down() {
        let o = parse(&["--quick"]);
        assert!(o.measure < HarnessOpts::default().measure);
    }

    #[test]
    fn out_dir() {
        let o = parse(&["--out", "/tmp/x", "--fresh"]);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert!(o.fresh);
    }

    #[test]
    #[should_panic(expected = "unknown option")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }
}
