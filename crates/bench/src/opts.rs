//! Command-line options shared by every `btbx` subcommand.

use std::path::PathBuf;

/// Harness options parsed from `std::env::args`.
///
/// The paper warms for 50 M instructions and measures 50 M; the defaults
/// here are scaled to interactive hardware and can be raised with
/// `--warmup`/`--measure` for higher-fidelity runs (shapes are stable
/// well below the paper's window sizes because the synthetic workloads
/// cycle their working sets quickly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Warm-up instructions per simulation.
    pub warmup: u64,
    /// Measured instructions per simulation.
    pub measure: u64,
    /// Instructions per workload for offset-distribution studies.
    pub offset_instrs: u64,
    /// Ignore cached simulation results and re-run (the cache is still
    /// refreshed with the new results).
    pub fresh: bool,
    /// Output directory for CSV/JSON artifacts and the simulation cache.
    pub out_dir: PathBuf,
    /// Worker threads.
    pub threads: usize,
    /// Trace shards per simulation (1 = serial replay). Sharded runs
    /// replay each simulation as `N` interval shards with warm-up
    /// carry-in (see EXPERIMENTS.md, "Interval sharding").
    pub shards: usize,
    /// Replay this `.btbt` trace container instead of the synthetic
    /// suites (`sweep` substitutes it for the selected suite; `bench`
    /// measures file-backed throughput on it).
    pub trace: Option<PathBuf>,
    /// HTTP client timeout in milliseconds for `--server`/`--cluster`
    /// transports, applied per phase (connect, write, read) so a wedged
    /// node cannot stall a sweep indefinitely.
    pub http_timeout_ms: u64,
    /// Resume a crashed sweep from its journal: points the journal
    /// records as done (and whose cache entries exist) are skipped, and
    /// only incomplete points are re-dispatched.
    pub resume: bool,
    /// Batch cache-missing sweep points that share a (workload, windows,
    /// config) group into one trace traversal (`btbx_uarch::batch`).
    /// Batched results are bit-identical to per-point runs and publish
    /// under the same cache keys; `--no-batch` forces the per-point path
    /// (reference oracle, and the baseline side of `btbx bench`'s
    /// batched-throughput gate).
    pub batch: bool,
    /// Arm this JSON fault plan (a `btbx_bench::faults::FaultPlan`) for
    /// the whole run — chaos testing only.
    pub fault_plan: Option<PathBuf>,
    /// Where content-addressed cache blobs (results, warm snapshots,
    /// trace containers) live. `None` keeps today's default: a `dir://`
    /// store under `<out>/cache`.
    pub store: Option<StoreUrl>,
}

/// Where a run's content-addressed blobs live, parsed from `--store`.
///
/// | Form | Backend |
/// |------|---------|
/// | `dir://<path>` (or a bare path) | local directory — the default layout |
/// | `mem://` | in-process map (tests) |
/// | `http://<host>:<port>` | a peer serve node's `GET/PUT /blob/<key>` endpoints |
/// | `tiered://<path>,http://<host>:<port>` | local dir in front of a remote |
///
/// Unknown schemes are loud parse errors, never silently treated as
/// paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreUrl {
    /// `dir://<path>`: the local-directory layout (today's default).
    Dir(PathBuf),
    /// `mem://`: an in-process map (tests).
    Mem,
    /// `http://<host>:<port>`: a remote blob endpoint.
    Http(String),
    /// `tiered://<path>,http://<host>:<port>`: a local dir in front of a
    /// remote — reads backfill the local tier, writes replicate out.
    Tiered {
        /// The local (front) tier's directory.
        local: PathBuf,
        /// The remote (back) tier's `host:port`.
        remote: String,
    },
}

impl StoreUrl {
    /// Parse a store URL, rejecting unknown schemes loudly.
    ///
    /// # Errors
    ///
    /// A human-readable reason (scheme unknown, location missing or
    /// malformed); the caller wraps it in [`OptError::BadStore`].
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("dir://") {
            if rest.is_empty() {
                return Err("dir:// needs a path, e.g. dir://results/cache".to_string());
            }
            return Ok(StoreUrl::Dir(PathBuf::from(rest)));
        }
        if let Some(rest) = s.strip_prefix("mem://") {
            if !rest.is_empty() {
                return Err(format!("mem:// takes no location, got `{rest}`"));
            }
            return Ok(StoreUrl::Mem);
        }
        if let Some(rest) = s.strip_prefix("http://") {
            return Ok(StoreUrl::Http(parse_http_addr(rest)?));
        }
        if let Some(rest) = s.strip_prefix("tiered://") {
            let (local, remote) = rest
                .split_once(',')
                .ok_or_else(|| "tiered:// needs `<local-dir>,http://<host>:<port>`".to_string())?;
            if local.is_empty() {
                return Err("tiered:// needs a non-empty local dir before the comma".to_string());
            }
            let remote = remote.strip_prefix("http://").ok_or_else(|| {
                format!("tiered:// remote tier must be http://<host>:<port>, got `{remote}`")
            })?;
            return Ok(StoreUrl::Tiered {
                local: PathBuf::from(local),
                remote: parse_http_addr(remote)?,
            });
        }
        if let Some((scheme, _)) = s.split_once("://") {
            return Err(format!(
                "unknown store scheme `{scheme}://` (expected dir://, mem://, http:// or tiered://)"
            ));
        }
        if s.is_empty() {
            return Err("empty store URL".to_string());
        }
        // A bare path is a directory store, same as `--out` paths.
        Ok(StoreUrl::Dir(PathBuf::from(s)))
    }
}

/// Validate the `<host>:<port>` part of an `http://` store URL.
fn parse_http_addr(rest: &str) -> Result<String, String> {
    let addr = rest.trim_end_matches('/');
    if addr.contains('/') {
        return Err(format!(
            "http:// store takes `<host>:<port>` only (no path), got `{rest}`"
        ));
    }
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| format!("http:// store needs `<host>:<port>`, got `{rest}`"))?;
    if host.is_empty() {
        return Err(format!("http:// store needs a host, got `{rest}`"));
    }
    if port.parse::<u16>().is_err() {
        return Err(format!("http:// store port must be 1-65535, got `{port}`"));
    }
    Ok(addr.to_string())
}

impl std::fmt::Display for StoreUrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreUrl::Dir(path) => write!(f, "dir://{}", path.display()),
            StoreUrl::Mem => f.write_str("mem://"),
            StoreUrl::Http(addr) => write!(f, "http://{addr}"),
            StoreUrl::Tiered { local, remote } => {
                write!(f, "tiered://{},http://{remote}", local.display())
            }
        }
    }
}

/// Default [`HarnessOpts::http_timeout_ms`]: generous enough for the
/// largest single simulation a node might compute synchronously, small
/// enough that a truly wedged peer is eventually abandoned.
pub const DEFAULT_HTTP_TIMEOUT_MS: u64 = 600_000;

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            warmup: 500_000,
            measure: 1_000_000,
            offset_instrs: 1_000_000,
            fresh: false,
            out_dir: PathBuf::from("results"),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            shards: 1,
            trace: None,
            http_timeout_ms: DEFAULT_HTTP_TIMEOUT_MS,
            resume: false,
            batch: true,
            fault_plan: None,
            store: None,
        }
    }
}

/// A command-line parse failure, formatted for terminal display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// A flag that is not part of the option grammar.
    UnknownFlag(String),
    /// A flag whose value is missing or not a number.
    BadValue {
        /// The flag, e.g. `--warmup`.
        flag: String,
        /// What was found instead of a value.
        found: Option<String>,
    },
    /// `--store` was given an unparseable or unknown-scheme URL.
    BadStore {
        /// What was passed.
        found: String,
        /// Why it was rejected.
        why: String,
    },
    /// `--help` was requested; the caller should print usage and exit 0.
    HelpRequested,
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::UnknownFlag(flag) => {
                write!(f, "unknown option `{flag}` (try --help)")
            }
            OptError::BadValue {
                flag,
                found: Some(v),
            } => {
                write!(f, "{flag} expects a number, got `{v}`")
            }
            OptError::BadValue { flag, found: None } => {
                write!(f, "{flag} expects a value")
            }
            OptError::BadStore { found, why } => {
                write!(f, "--store: {why} (got `{found}`)")
            }
            OptError::HelpRequested => f.write_str("help requested"),
        }
    }
}

impl std::error::Error for OptError {}

/// Usage text for the shared options (each subcommand prepends its own).
pub const OPTIONS_USAGE: &str = "\
options:
  --warmup N         warm-up instructions per simulation   [500000]
  --measure N        measured instructions per simulation  [1000000]
  --offset-instrs N  instructions per offset study         [1000000]
  --quick            preset: 150k warm-up / 300k measured windows
  --threads N        worker threads                        [all cores]
  --shards N         interval shards per simulation        [1]
  --trace FILE       replay a .btbt trace container instead of the
                     synthetic suites (see `btbx trace --help`)
  --http-timeout-ms N  per-phase HTTP timeout for --server/--cluster
                     transports                           [600000]
  --fresh            re-simulate even when cached results exist
  --resume           resume a crashed sweep from its journal
                     (<out>/cache/journal/), re-dispatching only
                     incomplete points
  --no-batch         run sweep points one at a time instead of batching
                     same-workload points into one trace traversal
                     (results are bit-identical either way)
  --fault-plan FILE  arm a JSON fault-injection plan for the run
                     (chaos testing; see EXPERIMENTS.md)
  --store URL        content-addressed store for cache blobs:
                     dir://PATH [default: <out>/cache], mem://,
                     http://HOST:PORT (a peer's /blob endpoints), or
                     tiered://PATH,http://HOST:PORT
  --out DIR          artifact + cache directory            [results]
  -h, --help         show this help";

impl HarnessOpts {
    /// Parse from an iterator of arguments (without the program name).
    ///
    /// # Errors
    ///
    /// [`OptError`] on unknown flags or malformed values;
    /// [`OptError::HelpRequested`] when `--help`/`-h` is present.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, OptError> {
        let mut opts = HarnessOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut take = |flag: &str| -> Result<u64, OptError> {
                let found = it.next();
                found
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .ok_or(OptError::BadValue {
                        flag: flag.to_string(),
                        found,
                    })
            };
            match arg.as_str() {
                "--warmup" => opts.warmup = take("--warmup")?,
                "--measure" => opts.measure = take("--measure")?,
                "--offset-instrs" => opts.offset_instrs = take("--offset-instrs")?,
                "--threads" => opts.threads = take("--threads")? as usize,
                "--shards" => opts.shards = (take("--shards")? as usize).max(1),
                "--http-timeout-ms" => {
                    opts.http_timeout_ms = take("--http-timeout-ms")?.max(1);
                }
                "--quick" => {
                    opts.warmup = 150_000;
                    opts.measure = 300_000;
                    opts.offset_instrs = 300_000;
                }
                "--fresh" => opts.fresh = true,
                "--resume" => opts.resume = true,
                "--no-batch" => opts.batch = false,
                "--fault-plan" => {
                    let file = it.next().ok_or(OptError::BadValue {
                        flag: "--fault-plan".to_string(),
                        found: None,
                    })?;
                    opts.fault_plan = Some(PathBuf::from(file));
                }
                "--trace" => {
                    let file = it.next().ok_or(OptError::BadValue {
                        flag: "--trace".to_string(),
                        found: None,
                    })?;
                    opts.trace = Some(PathBuf::from(file));
                }
                "--store" => {
                    let url = it.next().ok_or(OptError::BadValue {
                        flag: "--store".to_string(),
                        found: None,
                    })?;
                    opts.store = Some(
                        StoreUrl::parse(&url)
                            .map_err(|why| OptError::BadStore { found: url, why })?,
                    );
                }
                "--out" => {
                    let dir = it.next().ok_or(OptError::BadValue {
                        flag: "--out".to_string(),
                        found: None,
                    })?;
                    opts.out_dir = PathBuf::from(dir);
                }
                "--help" | "-h" => return Err(OptError::HelpRequested),
                other => return Err(OptError::UnknownFlag(other.to_string())),
            }
        }
        Ok(opts)
    }

    /// Split the thread budget between concurrently-running points and
    /// the shard fan-out inside each point, as `(point_threads,
    /// shard_threads)` with `point_threads × shard_threads ≤ threads`
    /// and the product maximal.
    ///
    /// The historical split (`threads / shards` × `threads.clamp(1,
    /// shards)`) mishandled every `threads` that is not a multiple of
    /// `shards`: `threads=6, shards=4` ran 1×4 leaving 2 of 6 threads
    /// idle, and `threads=10, shards=3` ran 3×3 leaving a core idle —
    /// while rounding the other way would oversubscribe. This searches
    /// the (tiny) space of shard-thread counts ≤ `shards` for the split
    /// with maximal utilization, preferring the wider shard fan-out on
    /// ties (fewer points in flight → less peak memory, and each point
    /// finishes sooner).
    pub fn pool_split(&self) -> (usize, usize) {
        pool_split(self.threads, self.shards)
    }

    /// [`pool_split`](Self::pool_split) for a run with a known number of
    /// dispatchable `jobs`, each parallelizable up to `width` — see
    /// [`pool_split_for`]. Batched sweeps pass their batch-group count:
    /// one batched traversal replaces N points, so point-level
    /// parallelism must key on groups, not raw points, or the pool
    /// oversubscribes with workers that have nothing to run.
    pub fn pool_split_for(&self, width: usize, jobs: usize) -> (usize, usize) {
        pool_split_for(self.threads, width, jobs)
    }

    /// The HTTP client timeout as a [`std::time::Duration`], clamped to
    /// the sane range (see [`sane_timeout`]).
    pub fn http_timeout(&self) -> std::time::Duration {
        sane_timeout(std::time::Duration::from_millis(self.http_timeout_ms))
    }

    /// Parse from the process arguments, exiting with usage on errors (the
    /// behaviour every binary wants at top level).
    pub fn from_env() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(OptError::HelpRequested) => {
                println!("{OPTIONS_USAGE}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}\n{OPTIONS_USAGE}");
                std::process::exit(2);
            }
        }
    }
}

/// Longest timeout any network phase is allowed: a full day. Anything
/// larger is a unit mistake (or an overflow feeding `Instant` math) and
/// behaves like "forever" in practice.
pub const MAX_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(24 * 60 * 60);

/// Clamp a timeout into the sane range `[1 ms, 24 h]`.
///
/// Every socket timeout in the codebase goes through this one helper:
/// `TcpStream::connect_timeout` panics on a zero duration, and
/// arithmetic on huge durations (backoff multiplication, deadline
/// addition to `Instant`) can overflow — both classes of bug are cut off
/// here instead of at each call site.
pub fn sane_timeout(timeout: std::time::Duration) -> std::time::Duration {
    timeout.clamp(std::time::Duration::from_millis(1), MAX_TIMEOUT)
}

/// See [`HarnessOpts::pool_split`]; free function so callers without an
/// options struct (and tests) can use the same policy.
pub fn pool_split(threads: usize, shards: usize) -> (usize, usize) {
    let threads = threads.max(1);
    let shards = shards.max(1);
    if shards == 1 {
        return (threads, 1);
    }
    // For each candidate shard-thread count s ≤ min(shards, threads),
    // the best point-thread count is threads / s; pick the s maximizing
    // utilization (threads/s)·s, breaking ties toward larger s.
    (1..=shards.min(threads))
        .map(|s| (threads / s, s))
        .max_by_key(|&(p, s)| (p * s, s))
        .expect("candidate range is non-empty")
}

/// [`pool_split`] generalized to a run with `jobs` dispatchable units
/// (batch groups, or points when unbatched), each parallelizable up to
/// `width` threads (shard count for a sharded point, lane count for a
/// batched group). Point-level workers beyond `jobs` never receive work,
/// so the budget they would have held is released to the per-job fan-out
/// instead; fan-out beyond `width` is likewise wasted and released to
/// job-level concurrency. Ties still prefer the wider fan-out (fewer
/// jobs in flight → fewer live event windows → less peak memory).
///
/// `jobs == 0` degenerates to [`pool_split`] (an all-cache-hit sweep
/// dispatches nothing; the split is moot but must stay well-formed).
pub fn pool_split_for(threads: usize, width: usize, jobs: usize) -> (usize, usize) {
    let threads = threads.max(1);
    let width = width.max(1);
    if jobs == 0 {
        return pool_split(threads, width);
    }
    (1..=jobs.min(threads))
        .map(|p| (p, (threads / p).min(width)))
        .max_by_key(|&(p, s)| (p * s, s))
        .expect("candidate range is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessOpts, OptError> {
        HarnessOpts::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.warmup, 500_000);
        assert!(!o.fresh);
    }

    #[test]
    fn numeric_flags() {
        let o = parse(&["--warmup", "1000", "--measure", "2000", "--threads", "4"]).unwrap();
        assert_eq!(o.warmup, 1000);
        assert_eq!(o.measure, 2000);
        assert_eq!(o.threads, 4);
    }

    #[test]
    fn quick_scales_down() {
        let o = parse(&["--quick"]).unwrap();
        assert!(o.measure < HarnessOpts::default().measure);
    }

    #[test]
    fn out_dir() {
        let o = parse(&["--out", "/tmp/x", "--fresh"]).unwrap();
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert!(o.fresh);
    }

    #[test]
    fn trace_file() {
        assert_eq!(parse(&[]).unwrap().trace, None);
        let o = parse(&["--trace", "/tmp/t.btbt"]).unwrap();
        assert_eq!(o.trace, Some(PathBuf::from("/tmp/t.btbt")));
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn http_timeout_parses_and_clamps() {
        assert_eq!(parse(&[]).unwrap().http_timeout_ms, DEFAULT_HTTP_TIMEOUT_MS);
        let o = parse(&["--http-timeout-ms", "2500"]).unwrap();
        assert_eq!(o.http_timeout_ms, 2500);
        assert_eq!(o.http_timeout(), std::time::Duration::from_millis(2500));
        let o = parse(&["--http-timeout-ms", "0"]).unwrap();
        assert_eq!(o.http_timeout_ms, 1, "zero would panic connect_timeout");
        assert!(parse(&["--http-timeout-ms", "soon"]).is_err());
    }

    #[test]
    fn resume_and_fault_plan_flags() {
        let o = parse(&[]).unwrap();
        assert!(!o.resume);
        assert_eq!(o.fault_plan, None);
        let o = parse(&["--resume", "--fault-plan", "/tmp/plan.json"]).unwrap();
        assert!(o.resume);
        assert_eq!(o.fault_plan, Some(PathBuf::from("/tmp/plan.json")));
        assert!(parse(&["--fault-plan"]).is_err());
    }

    #[test]
    fn sane_timeout_clamps_both_ends() {
        use std::time::Duration;
        assert_eq!(sane_timeout(Duration::ZERO), Duration::from_millis(1));
        assert_eq!(
            sane_timeout(Duration::from_secs(5)),
            Duration::from_secs(5),
            "in-range timeouts pass through"
        );
        assert_eq!(sane_timeout(Duration::MAX), MAX_TIMEOUT);
        // The overflow class this guards: Duration::MAX would panic
        // `Instant::now() + timeout`; the clamped value must not.
        let _ = std::time::Instant::now() + sane_timeout(Duration::MAX);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert_eq!(
            parse(&["--bogus"]),
            Err(OptError::UnknownFlag("--bogus".to_string()))
        );
    }

    #[test]
    fn missing_and_malformed_values_are_errors() {
        assert_eq!(
            parse(&["--warmup"]),
            Err(OptError::BadValue {
                flag: "--warmup".to_string(),
                found: None
            })
        );
        assert_eq!(
            parse(&["--measure", "lots"]),
            Err(OptError::BadValue {
                flag: "--measure".to_string(),
                found: Some("lots".to_string())
            })
        );
        assert!(parse(&["--out"]).is_err());
    }

    #[test]
    fn help_is_reported_not_exited() {
        assert_eq!(parse(&["--help"]), Err(OptError::HelpRequested));
        assert_eq!(parse(&["-h"]), Err(OptError::HelpRequested));
    }

    #[test]
    fn pool_split_never_oversubscribes_and_maximizes_utilization() {
        for threads in 1..=16 {
            for shards in 1..=8 {
                let (p, s) = pool_split(threads, shards);
                assert!(p >= 1 && s >= 1, "degenerate split {p}x{s}");
                assert!(s <= shards, "{s} shard threads for {shards} shards");
                assert!(
                    p * s <= threads,
                    "({threads} threads, {shards} shards) -> {p}x{s} oversubscribes"
                );
                // Brute-force the best feasible utilization.
                let best = (1..=shards.min(threads))
                    .map(|s| (threads / s) * s)
                    .max()
                    .unwrap();
                assert_eq!(
                    p * s,
                    best,
                    "({threads} threads, {shards} shards) -> {p}x{s} wastes threads"
                );
            }
        }
    }

    #[test]
    fn pool_split_fixes_the_reported_cases() {
        // The old split computed point_threads = threads / shards and
        // shard_threads = threads.clamp(1, shards) independently.
        assert_eq!(pool_split(6, 4), (2, 3), "old split ran 1x4 (4 of 6)");
        assert_eq!(pool_split(8, 3), (4, 2), "old split ran 2x3 (6 of 8)");
        assert_eq!(pool_split(10, 3), (5, 2), "old split ran 3x3 (9 of 10)");
        assert_eq!(pool_split(4, 3), (2, 2), "old split ran 1x3 (3 of 4)");
        // Degenerate and exact cases keep their obvious answers.
        assert_eq!(pool_split(8, 1), (8, 1));
        assert_eq!(pool_split(1, 8), (1, 1));
        assert_eq!(pool_split(8, 4), (2, 4), "exact divisor prefers wide");
        assert_eq!(pool_split(0, 0), (1, 1), "zeroes clamp to one worker");
    }

    #[test]
    fn no_batch_flag() {
        assert!(parse(&[]).unwrap().batch, "batching is the default");
        assert!(!parse(&["--no-batch"]).unwrap().batch);
    }

    #[test]
    fn pool_split_for_keys_on_jobs_not_points() {
        // One batch group replacing 18 points: all threads go to the
        // group's lane fan-out instead of 17 idle point workers.
        assert_eq!(pool_split_for(8, 18, 1), (1, 8));
        // Two groups of 9 lanes on 8 threads: the tie prefers one live
        // group with full fan-out (fewer materialized windows).
        assert_eq!(pool_split_for(8, 9, 2), (1, 8));
        // Unbatched sharded points behave like pool_split when jobs are
        // plentiful...
        assert_eq!(pool_split_for(8, 4, 100), pool_split(8, 4));
        assert_eq!(pool_split_for(6, 4, 100), pool_split(6, 4));
        // ...and release the shard budget when they are not.
        assert_eq!(pool_split_for(8, 4, 1), (1, 4));
        // Serial points (width 1) never oversubscribe the fan-out side.
        assert_eq!(pool_split_for(4, 1, 100), (4, 1));
        assert_eq!(pool_split_for(4, 1, 2), (2, 1));
        // Zero jobs (all cache hits) stays well-formed.
        assert_eq!(pool_split_for(4, 2, 0), pool_split(4, 2));
        for threads in 1..=16 {
            for width in 1..=9 {
                for jobs in 0..=20 {
                    let (p, s) = pool_split_for(threads, width, jobs);
                    assert!(p >= 1 && s >= 1);
                    assert!(p * s <= threads.max(1), "{threads}/{width}/{jobs}");
                    if jobs > 0 {
                        assert!(p <= jobs, "{p} workers for {jobs} jobs");
                        assert!(s <= width.max(1), "{s} fan-out for width {width}");
                    }
                }
            }
        }
    }

    #[test]
    fn errors_render_usefully() {
        let e = parse(&["--bogus"]).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
        let e = parse(&["--warmup", "x"]).unwrap_err();
        assert!(e.to_string().contains("expects a number"));
    }

    #[test]
    fn store_url_parses_every_scheme() {
        assert_eq!(
            StoreUrl::parse("dir:///tmp/cache").unwrap(),
            StoreUrl::Dir(PathBuf::from("/tmp/cache"))
        );
        assert_eq!(
            StoreUrl::parse("results/cache").unwrap(),
            StoreUrl::Dir(PathBuf::from("results/cache")),
            "a bare path is a directory store"
        );
        assert_eq!(StoreUrl::parse("mem://").unwrap(), StoreUrl::Mem);
        assert_eq!(
            StoreUrl::parse("http://127.0.0.1:8080").unwrap(),
            StoreUrl::Http("127.0.0.1:8080".to_string())
        );
        assert_eq!(
            StoreUrl::parse("http://node:9000/").unwrap(),
            StoreUrl::Http("node:9000".to_string()),
            "trailing slash is tolerated"
        );
        assert_eq!(
            StoreUrl::parse("tiered://local/cache,http://node:9000").unwrap(),
            StoreUrl::Tiered {
                local: PathBuf::from("local/cache"),
                remote: "node:9000".to_string()
            }
        );
    }

    #[test]
    fn store_url_rejects_malformed_forms_loudly() {
        // (input, fragment the error must mention) — a grid like the
        // pool_split tests, so every rejection path keeps a useful
        // message.
        let cases: &[(&str, &str)] = &[
            ("", "empty"),
            ("dir://", "needs a path"),
            ("mem://extra", "takes no location"),
            ("s3://bucket", "unknown store scheme `s3://`"),
            ("ftp://x", "unknown store scheme `ftp://`"),
            ("http://", "needs `<host>:<port>`"),
            ("http://nohost", "needs `<host>:<port>`"),
            ("http://:8080", "needs a host"),
            ("http://host:notaport", "port must be"),
            ("http://host:99999", "port must be"),
            ("http://host:80/path", "no path"),
            ("tiered://justlocal", "needs `<local-dir>,"),
            ("tiered://,http://h:1", "non-empty local dir"),
            ("tiered://d,mem://", "remote tier must be http://"),
            ("tiered://d,http://h", "needs `<host>:<port>`"),
        ];
        for (input, fragment) in cases {
            let err = StoreUrl::parse(input).expect_err(input);
            assert!(
                err.contains(fragment),
                "`{input}` error `{err}` must mention `{fragment}`"
            );
        }
    }

    #[test]
    fn store_url_display_round_trips() {
        let urls = [
            StoreUrl::Dir(PathBuf::from("/tmp/c")),
            StoreUrl::Mem,
            StoreUrl::Http("h:1234".to_string()),
            StoreUrl::Tiered {
                local: PathBuf::from("front"),
                remote: "back:9".to_string(),
            },
        ];
        for url in urls {
            assert_eq!(StoreUrl::parse(&url.to_string()).unwrap(), url, "{url}");
        }
    }

    #[test]
    fn store_flag_wires_through() {
        assert_eq!(parse(&[]).unwrap().store, None, "default is no override");
        let o = parse(&["--store", "http://127.0.0.1:7700"]).unwrap();
        assert_eq!(o.store, Some(StoreUrl::Http("127.0.0.1:7700".to_string())));
        assert_eq!(
            parse(&["--store"]),
            Err(OptError::BadValue {
                flag: "--store".to_string(),
                found: None
            })
        );
        let e = parse(&["--store", "gopher://x"]).unwrap_err();
        assert!(matches!(e, OptError::BadStore { .. }), "{e:?}");
        assert!(
            e.to_string().contains("gopher://"),
            "the offending scheme must be named: {e}"
        );
    }
}
