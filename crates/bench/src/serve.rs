//! `btbx serve` — a long-lived JSON-over-HTTP simulation service.
//!
//! The sharded streaming engine (see `btbx_uarch::parallel`) makes a
//! single simulation fast enough to sit behind a request path; this
//! module puts it there. The server is hand-rolled over
//! [`std::net::TcpListener`] — no async runtime, no HTTP dependency —
//! with connections handled on the long-lived
//! [`btbx_uarch::runner::ServicePool`] and every result flowing through
//! the same durable [`ResultStore`] as `btbx sweep`:
//!
//! * **Deduplication.** N concurrent requests for one [`SimPoint`]
//!   (keyed by [`SimPoint::cache_key`]) run ONE simulation; the others
//!   join the in-flight computation and get the identical result. A
//!   sweep sharing the cache directory joins the same flights.
//! * **Durability.** Results are written atomically (temp file + rename)
//!   so a killed server never leaves an entry that a later reader parses
//!   as valid; damaged entries are quarantined, not served.
//! * **Warm-state reuse.** Sharded runs of a point share one
//!   [`AnyWarmLadder`] across requests, so repeat runs restore warmed
//!   microarchitectural state at every shard boundary in O(state) —
//!   no warm-up replay — and are bit-identical to serial runs.
//!
//! # Protocol
//!
//! | Endpoint         | Body / response                                   |
//! |------------------|---------------------------------------------------|
//! | `POST /sim`      | [`SimPoint`] JSON → [`SimResult`] JSON            |
//! | `GET /healthz`   | [`crate::cluster::HealthInfo`] JSON: liveness +   |
//! |                  | the fleet compat handshake (version, cache        |
//! |                  | version, shards, orgs)                            |
//! | `GET /stats`     | [`ServeStats`] JSON (request + cache counters)    |
//! | `POST /shutdown` | `{"ok":true}`, then graceful drain and exit       |
//!
//! `/sim` responses carry an `X-Btbx-Cache` header (`disk`, `computed`
//! or `joined`) reporting how the result was obtained. Errors are JSON
//! `{"error": "..."}` with 400 (malformed request) or 500 (failed
//! simulation) status. See EXPERIMENTS.md, "The simulation service".

use crate::cluster::protocol::{self, ClusterError, PointError};
use crate::opts::{pool_split, HarnessOpts};
use crate::runner::ServicePool;
use crate::store::{Fetch, ResultStore, StoreCounters, StoreError};
use crate::sweep::{SimPoint, Sweep};
use btbx_uarch::{AnyWarmLadder, SimResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest accepted request body; a [`SimPoint`] is well under this.
const MAX_BODY_BYTES: usize = 1 << 20;

/// Socket read timeout: a stalled or idle client must not pin a worker.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` = ephemeral, read it back from
    /// [`Server::addr`]).
    pub port: u16,
    /// Cache directory (the sweep convention is `<out>/cache`).
    pub cache_dir: PathBuf,
    /// Total thread budget, split between concurrent requests and
    /// intra-request shard fan-out by [`pool_split`].
    pub threads: usize,
    /// Interval shards per simulation. Any value serves results
    /// byte-identical to the CLI serial path (warm-checkpoint mode);
    /// more shards trade threads for per-request latency.
    pub shards: usize,
}

impl ServeConfig {
    /// Derive the server configuration from shared harness options.
    pub fn from_opts(port: u16, opts: &HarnessOpts) -> Self {
        ServeConfig {
            port,
            cache_dir: opts.out_dir.join("cache"),
            threads: opts.threads,
            shards: opts.shards.max(1),
        }
    }
}

/// Counters reported by `GET /stats` (`Deserialize` so cluster
/// clients can read them back, e.g. `btbx cluster status`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeStats {
    /// HTTP requests accepted (all endpoints).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Simulations served: disk hits + single-flight joins + computes.
    pub store: StoreCounters,
}

struct ServerState {
    store: ResultStore,
    shards: usize,
    shard_threads: usize,
    /// One warm ladder per distinct simulation point (cache key), shared
    /// across requests so repeat runs restore warmed state in O(state).
    /// Keyed by the full point (not just the workload) because warm
    /// snapshots embed the BTB organization, budget and configuration.
    ladders: Mutex<HashMap<String, Arc<AnyWarmLadder>>>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ServerState {
    fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            store: self.store.counters(),
        }
    }

    fn ladder_for(&self, point: &SimPoint) -> Option<Arc<AnyWarmLadder>> {
        if self.shards <= 1 {
            return None;
        }
        let key = point.cache_file();
        let mut ladders = self.ladders.lock().unwrap();
        Some(Arc::clone(
            ladders
                .entry(key)
                .or_insert_with(|| Arc::new(AnyWarmLadder::new())),
        ))
    }
}

/// A running `btbx serve` instance. Dropping the handle does **not**
/// stop the server; send `POST /shutdown` (or use
/// [`Server::shutdown`]) and then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    accept: std::thread::JoinHandle<()>,
}

impl Server {
    /// Bind, spawn the accept loop and request workers, and return once
    /// the socket is listening (so [`Server::addr`] is immediately
    /// valid, including for `port: 0`).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the cache directory is unusable or the
    /// socket cannot be bound.
    pub fn start(config: ServeConfig) -> Result<Server, StoreError> {
        let store = ResultStore::open(&config.cache_dir)?;
        let listener =
            TcpListener::bind(("127.0.0.1", config.port)).map_err(|source| StoreError::Io {
                action: "binding service socket",
                path: PathBuf::from(format!("127.0.0.1:{}", config.port)),
                source,
            })?;
        let addr = listener.local_addr().map_err(|source| StoreError::Io {
            action: "resolving bound address",
            path: PathBuf::from("127.0.0.1"),
            source,
        })?;
        let (workers, shard_threads) = pool_split(config.threads, config.shards);
        let state = Arc::new(ServerState {
            store,
            shards: config.shards.max(1),
            shard_threads,
            ladders: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let accept = std::thread::spawn(move || {
            let pool = ServicePool::new("serve", workers);
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(stream) = stream else { continue };
                // Submit before checking the flag: a request racing the
                // shutdown (or the waker itself, which sends nothing and
                // parses as an empty probe) is drained, not reset.
                let worker_state = Arc::clone(&state);
                let self_addr = addr;
                pool.submit(format!("conn-{i}"), move || {
                    handle_connection(&worker_state, stream, self_addr);
                });
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Graceful drain: in-flight and queued requests finish
            // before the workers exit.
            pool.shutdown();
            eprintln!("[serve] drained; bye");
        });
        Ok(Server { addr, accept })
    }

    /// The bound address (resolves `port: 0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful shutdown over the wire, without waiting for
    /// the drain to finish (follow with [`Server::join`]).
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the server is unreachable.
    pub fn shutdown(&self) -> io::Result<()> {
        http_request(&self.addr.to_string(), "POST", "/shutdown", "").map(|_| ())
    }

    /// Wait for the accept loop (i.e. the server) to exit.
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Read and answer one HTTP request, then close the connection.
fn handle_connection(state: &ServerState, stream: TcpStream, self_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(Some(request)) => request,
        // Empty connection: either a probe or the shutdown waker.
        Ok(None) => return,
        Err(e) => {
            // A malformed request still counts as a request, so
            // `errors <= requests` holds for /stats consumers.
            state.requests.fetch_add(1, Ordering::Relaxed);
            state.errors.fetch_add(1, Ordering::Relaxed);
            let mut stream = reader.into_inner();
            let _ = respond_json(
                &mut stream,
                400,
                &format!("{{\"error\":{:?}}}", e.to_string()),
                None,
            );
            return;
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    let mut stream = reader.into_inner();
    let outcome = route(state, &request, &mut stream, self_addr);
    if let Err(status) = outcome {
        state.errors.fetch_add(1, Ordering::Relaxed);
        let _ = respond_json(&mut stream, status.0, &status.1, None);
    }
}

/// Route one parsed request; `Err((status, body))` is answered by the
/// caller (which also counts it).
fn route(
    state: &ServerState,
    request: &HttpRequest,
    stream: &mut TcpStream,
    self_addr: SocketAddr,
) -> Result<(), (u16, String)> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            // Liveness plus the fleet compat handshake: version,
            // CACHE_VERSION, shard config, supported orgs.
            let info = protocol::health_info(state.shards);
            let body = serde_json::to_string(&info).expect("health info serializes");
            let _ = respond_json(stream, 200, &body, None);
            Ok(())
        }
        ("GET", "/stats") => {
            let body = serde_json::to_string(&state.stats()).expect("stats serialize");
            let _ = respond_json(stream, 200, &body, None);
            Ok(())
        }
        ("POST", "/shutdown") => {
            let _ = respond_json(stream, 200, "{\"ok\":true}", None);
            if !state.shutdown.swap(true, Ordering::SeqCst) {
                eprintln!("[serve] shutdown requested; draining");
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(self_addr);
            }
            Ok(())
        }
        ("POST", "/sim") => {
            let point: SimPoint = serde_json::from_str(&request.body).map_err(|e| {
                (
                    400,
                    format!("{{\"error\":{:?}}}", format!("bad SimPoint: {e}")),
                )
            })?;
            let (result, fetch) =
                simulate(state, &point).map_err(|msg| (500, format!("{{\"error\":{msg:?}}}")))?;
            let body = serde_json::to_string(&result).expect("results serialize");
            let cache_header = match fetch {
                Fetch::Disk => "disk",
                Fetch::Computed => "computed",
                Fetch::Joined => "joined",
            };
            let _ = respond_json(stream, 200, &body, Some(("X-Btbx-Cache", cache_header)));
            Ok(())
        }
        (_, path) => Err((
            404,
            format!("{{\"error\":{:?}}}", format!("no route {path}")),
        )),
    }
}

/// Run (or fetch) one point through the store's single-flight path,
/// converting simulation panics into an error message for a 500.
fn simulate(state: &ServerState, point: &SimPoint) -> Result<(SimResult, Fetch), String> {
    let name = point.cache_file_for(state.shards);
    let ladder = state.ladder_for(point);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        state.store.get_or_compute(&name, false, || {
            point.run_sharded_with(state.shards, state.shard_threads, ladder.as_deref())
        })
    }));
    match outcome {
        Ok(Ok(hit)) => Ok(hit),
        Ok(Err(e)) => Err(format!("cache: {e}")),
        Err(payload) => Err(btbx_uarch::runner::panic_message(&*payload)),
    }
}

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
}

/// Parse a request head + body. `Ok(None)` means the peer closed
/// without sending anything (probes, the shutdown waker).
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<HttpRequest>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad request line",
            ))
        }
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok(Some(HttpRequest { method, path, body }))
}

/// Write a JSON response with an optional extra header and close.
fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra: Option<(&str, &str)>,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some((name, value)) = extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A parsed HTTP response from [`http_request`].
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal blocking HTTP/1.1 client for the service (the `btbx sweep
/// --server` transport, tests, and smoke scripts). `addr` is
/// `host:port`, optionally prefixed with `http://`. Uses the default
/// request timeout ([`crate::opts::DEFAULT_HTTP_TIMEOUT_MS`]); cluster
/// paths use [`http_request_timeout`] to honour `--http-timeout-ms`.
///
/// # Errors
///
/// [`io::Error`] on connection or protocol failures. Non-2xx statuses
/// are returned, not errors.
pub fn http_request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
    http_request_timeout(
        addr,
        method,
        path,
        body,
        Duration::from_millis(crate::opts::DEFAULT_HTTP_TIMEOUT_MS),
    )
}

/// [`http_request`] with an explicit timeout applied to *every* phase —
/// connect, write, and read — so a hung or wedged peer can never stall
/// the caller indefinitely (one wedged node must not pin a whole
/// cluster sweep).
///
/// # Errors
///
/// [`io::Error`] on connection or protocol failures;
/// [`io::ErrorKind::TimedOut`]/[`io::ErrorKind::WouldBlock`] when a
/// phase exceeds `timeout`.
pub fn http_request_timeout(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let addr = addr
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();
    // connect_timeout panics on a zero duration; clamp defensively.
    let timeout = timeout.max(Duration::from_millis(1));
    // connect_timeout needs a resolved SocketAddr; take the first.
    let socket_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: no address"))
    })?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Run a sweep *through a server* instead of locally: every point is
/// POSTed to `addr`'s `/sim` endpoint on `opts.threads` concurrent
/// client jobs. Results come back in [`Sweep::points`] order, exactly
/// like [`Sweep::run`] — the server owns the cache and the dedup.
///
/// Before any work is dispatched the server's `/healthz` handshake is
/// verified: a server on a different `CACHE_VERSION` (or missing one of
/// the sweep's organizations) is refused up front, because its results
/// would be silently incompatible with this client's cache.
///
/// # Errors
///
/// [`ClusterError::Unreachable`]/[`ClusterError::CacheVersionMismatch`]
/// /[`ClusterError::MissingOrgs`] when the handshake fails, and
/// [`ClusterError::Points`] naming every point (node address + cache
/// key + status) that failed — no more panicking mid-sweep.
pub fn sweep_via_server(
    sweep: &Sweep,
    opts: &HarnessOpts,
    addr: &str,
) -> Result<Vec<SimResult>, ClusterError> {
    let timeout = opts.http_timeout();
    let info =
        protocol::probe_health(addr, timeout).map_err(|error| ClusterError::Unreachable {
            node: addr.to_string(),
            error,
        })?;
    protocol::verify_cache_version(addr, &info)?;
    protocol::verify_orgs(addr, &info, &sweep.orgs)?;

    let points = sweep.points();
    let jobs: Vec<(String, _)> = points
        .into_iter()
        .map(|point| {
            let label = format!("{}:{}@server", point.workload.name, point.org.id());
            let addr = addr.to_string();
            let shards = info.shards;
            let job = move || -> Result<SimResult, PointError> {
                protocol::post_point(&addr, &point, timeout).map_err(|error| PointError {
                    node: addr.clone(),
                    point: point.cache_file_for(shards),
                    label: format!(
                        "{}:{}@{}",
                        point.workload.name,
                        point.org.id(),
                        point.budget
                    ),
                    error,
                })
            };
            (label, job)
        })
        .collect();
    let outcomes =
        crate::runner::run_named_jobs(&format!("{}@server", sweep.name), opts.threads, jobs);
    let mut results = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(result) => results.push(result),
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        return Err(ClusterError::Points(failures));
    }
    Ok(results)
}
