//! `btbx serve` — a long-lived JSON-over-HTTP simulation service.
//!
//! The sharded streaming engine (see `btbx_uarch::parallel`) makes a
//! single simulation fast enough to sit behind a request path; this
//! module puts it there. The server is hand-rolled over
//! [`std::net::TcpListener`] — no async runtime, no HTTP dependency —
//! with connections handled on the long-lived
//! [`btbx_uarch::runner::ServicePool`] and every result flowing through
//! the same durable [`ResultStore`] as `btbx sweep`:
//!
//! * **Deduplication.** N concurrent requests for one [`SimPoint`]
//!   (keyed by [`SimPoint::cache_key`]) run ONE simulation; the others
//!   join the in-flight computation and get the identical result. A
//!   sweep sharing the cache directory joins the same flights.
//! * **Durability.** Results are written atomically (temp file + rename)
//!   so a killed server never leaves an entry that a later reader parses
//!   as valid; damaged entries are quarantined, not served.
//! * **Warm-state reuse.** Sharded runs of a point share one
//!   [`AnyWarmLadder`] across requests, so repeat runs restore warmed
//!   microarchitectural state at every shard boundary in O(state) —
//!   no warm-up replay — and are bit-identical to serial runs.
//!
//! # Protocol
//!
//! | Endpoint         | Body / response                                   |
//! |------------------|---------------------------------------------------|
//! | `POST /sim`      | [`SimPoint`] JSON → [`SimResult`] JSON            |
//! | `GET /healthz`   | [`crate::cluster::HealthInfo`] JSON: liveness +   |
//! |                  | the fleet compat handshake (version, cache        |
//! |                  | version, shards, orgs)                            |
//! | `GET /stats`     | [`ServeStats`] JSON (request + cache counters)    |
//! | `POST /shutdown` | `{"ok":true}`, then graceful drain and exit       |
//! | `GET /blob/<key>`  | Raw blob bytes from this node's cache (404 on   |
//! |                  | a miss); `HEAD` probes without fetching           |
//! | `PUT /blob/<key>`  | Atomically publish a blob into this node's      |
//! |                  | cache (`201`) — how a fleet shares one store      |
//!
//! `/sim` responses carry an `X-Btbx-Cache` header (`disk`, `computed`
//! or `joined`) reporting how the result was obtained. Errors are JSON
//! `{"error": "..."}` with 400 (malformed request) or 500 (failed
//! simulation) status. See EXPERIMENTS.md, "The simulation service".
//!
//! # Overload protection
//!
//! Two knobs keep a saturated server degrading gracefully instead of
//! queueing without bound or resetting connections:
//!
//! * `--max-inflight N` bounds concurrently admitted `/sim` requests;
//!   excess requests are *shed* with `429 Too Many Requests` plus a
//!   `Retry-After` header — a fast, well-formed answer, never a reset.
//!   Admitted requests always run to completion.
//! * `--deadline-ms D` arms a per-request wall-clock deadline: a
//!   simulation still running when it expires is cooperatively aborted
//!   (the driving loop polls an abort flag) and the request answered
//!   with `503 Service Unavailable` — again on the open connection.
//!
//! Both surface in `GET /stats` as [`ServeStats::shed`] and
//! [`ServeStats::deadline_aborts`]; [`ServeStats::resumed_points`]
//! counts `/sim` responses served from a pre-existing on-disk entry
//! (work a restarted client did *not* re-run).

use crate::cluster::protocol::{self, ClusterError, PointError, RequestError};
use crate::journal::{self, SweepJournal};
use crate::opts::{pool_split, sane_timeout, HarnessOpts, StoreUrl};
use crate::runner::ServicePool;
use crate::store::{
    atomic_publish, open_store, Fetch, ResultStore, Store, StoreCounters, StoreError,
};
use crate::sweep::{SimPoint, Sweep};
use btbx_core::faults;
use btbx_trace::container;
use btbx_uarch::sim::ABORT_MARKER;
use btbx_uarch::{AnyWarmLadder, SimResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Largest accepted request body; a [`SimPoint`] is well under this.
const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest accepted `/blob/` body: trace containers are the biggest
/// blobs a fleet shares, and 256 MiB covers any container this harness
/// produces while still bounding a hostile request.
const MAX_BLOB_BYTES: usize = 1 << 28;

/// Socket read timeout: a stalled or idle client must not pin a worker.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1 (`0` = ephemeral, read it back from
    /// [`Server::addr`]).
    pub port: u16,
    /// Cache directory (the sweep convention is `<out>/cache`).
    pub cache_dir: PathBuf,
    /// Total thread budget, split between concurrent requests and
    /// intra-request shard fan-out by [`pool_split`].
    pub threads: usize,
    /// Interval shards per simulation. Any value serves results
    /// byte-identical to the CLI serial path (warm-checkpoint mode);
    /// more shards trade threads for per-request latency.
    pub shards: usize,
    /// Maximum concurrently admitted `/sim` requests; `0` = unlimited.
    /// At the limit, excess requests are shed with `429` + `Retry-After`
    /// instead of queueing without bound (see the module docs).
    pub max_inflight: usize,
    /// Per-request wall-clock deadline for `/sim`: a simulation still
    /// running when it expires is aborted and answered with `503` on the
    /// open connection. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Store backend for cache blobs (results, trace fetches). `None`
    /// keeps the default `dir://` store over `cache_dir`; an `http://`
    /// or `tiered://` URL makes this node read/write a fleet-shared
    /// cache and fetch missing trace containers by content hash.
    pub store: Option<StoreUrl>,
    /// Timeout for this node's *outbound* store traffic (blob fetches
    /// and publishes when `store` is remote).
    pub http_timeout: Duration,
}

impl ServeConfig {
    /// Derive the server configuration from shared harness options
    /// (overload protection off by default; `btbx serve` maps
    /// `--max-inflight`/`--deadline-ms` onto the extra fields).
    pub fn from_opts(port: u16, opts: &HarnessOpts) -> Self {
        ServeConfig {
            port,
            cache_dir: opts.out_dir.join("cache"),
            threads: opts.threads,
            shards: opts.shards.max(1),
            max_inflight: 0,
            deadline: None,
            store: opts.store.clone(),
            http_timeout: opts.http_timeout(),
        }
    }
}

/// Counters reported by `GET /stats` (`Deserialize` so cluster
/// clients can read them back, e.g. `btbx cluster status`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeStats {
    /// HTTP requests accepted (all endpoints).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// `/sim` requests shed with `429` because the in-flight admission
    /// limit was reached (`errors` includes these).
    #[serde(default)]
    pub shed: u64,
    /// `/sim` requests aborted by the per-request deadline (`503`;
    /// `errors` includes these too).
    #[serde(default)]
    pub deadline_aborts: u64,
    /// `/sim` responses served from a pre-existing on-disk cache entry —
    /// work a crashed-and-restarted client did not have to re-run.
    #[serde(default)]
    pub resumed_points: u64,
    /// Simulations served: disk hits + single-flight joins + computes.
    pub store: StoreCounters,
}

struct ServerState {
    store: ResultStore,
    /// This node's local cache directory: blob endpoints publish into
    /// it and fetched trace containers spool under `<cache_dir>/trace`.
    cache_dir: PathBuf,
    /// The backend behind [`ServerState::store`] when `--store` was
    /// given — also used to fetch trace containers by content hash.
    /// `None` means traces must exist locally (today's behavior).
    blob_backend: Option<Arc<dyn Store>>,
    shards: usize,
    shard_threads: usize,
    max_inflight: usize,
    deadline: Option<Duration>,
    /// One warm ladder per distinct simulation point (cache key), shared
    /// across requests so repeat runs restore warmed state in O(state).
    /// Keyed by the full point (not just the workload) because warm
    /// snapshots embed the BTB organization, budget and configuration.
    ladders: Mutex<HashMap<String, Arc<AnyWarmLadder>>>,
    /// Live `/sim` deadline registrations, polled by the watch thread.
    /// Weak: a finished request drops its flag and the entry self-prunes.
    deadlines: Mutex<Vec<(Instant, Weak<AtomicBool>)>>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    inflight: AtomicU64,
    shed: AtomicU64,
    deadline_aborts: AtomicU64,
    resumed_points: AtomicU64,
}

/// RAII admission token: holds one in-flight slot for the duration of a
/// `/sim` request, released on every exit path (panics included).
struct InflightPermit<'a> {
    state: &'a ServerState,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.state.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl ServerState {
    fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_aborts: self.deadline_aborts.load(Ordering::Relaxed),
            resumed_points: self.resumed_points.load(Ordering::Relaxed),
            store: self.store.counters(),
        }
    }

    fn ladder_for(&self, point: &SimPoint) -> Option<Arc<AnyWarmLadder>> {
        if self.shards <= 1 {
            return None;
        }
        let key = point.cache_file();
        // Recover (not propagate) mutex poison: the map cannot be torn
        // by a panicking holder — every critical section is a single
        // entry lookup/insert — and refusing all future warm-state reuse
        // because one request died would turn one failure into many.
        let mut ladders = self.ladders.lock().unwrap_or_else(|p| p.into_inner());
        let entry = ladders
            .entry(key)
            .or_insert_with(|| Arc::new(AnyWarmLadder::new()));
        // A ladder poisoned by a dead shard (deadline abort, simulation
        // panic) fails every waiter by design; rebuild the entry so the
        // next request warms fresh instead of inheriting the poison.
        if entry.is_poisoned() {
            *entry = Arc::new(AnyWarmLadder::new());
        }
        Some(Arc::clone(entry))
    }

    /// Drop a point's shared ladder after its computation panicked (it
    /// may have been poisoned mid-warm).
    fn evict_ladder(&self, point: &SimPoint) {
        let mut ladders = self.ladders.lock().unwrap_or_else(|p| p.into_inner());
        ladders.remove(&point.cache_file());
    }

    /// Try to take one `/sim` admission slot; `None` means the server is
    /// at `max_inflight` and the request must be shed.
    fn admit(&self) -> Option<InflightPermit<'_>> {
        let limit = self.max_inflight as u64;
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if limit != 0 && current >= limit {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(InflightPermit { state: self }),
                Err(actual) => current = actual,
            }
        }
    }

    /// Arm a deadline for one request: the watch thread flips the
    /// returned flag once [`ServerState::deadline`] elapses; the
    /// simulation's driving loop polls it and unwinds with
    /// [`ABORT_MARKER`]. `None` when no deadline is configured.
    fn arm_deadline(&self) -> Option<Arc<AtomicBool>> {
        let deadline = self.deadline?;
        let flag = Arc::new(AtomicBool::new(false));
        self.deadlines
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((Instant::now() + deadline, Arc::downgrade(&flag)));
        Some(flag)
    }
}

/// The deadline watch loop: every tick, flip the abort flag of each
/// expired registration and prune entries whose request already
/// finished. Polling keeps the mechanism to one thread for any request
/// volume; 25 ms of slack is noise against simulation runtimes.
fn deadline_watch(state: &ServerState) {
    const TICK: Duration = Duration::from_millis(25);
    while !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(TICK);
        let now = Instant::now();
        let mut entries = state.deadlines.lock().unwrap_or_else(|p| p.into_inner());
        entries.retain(|(due, flag)| match flag.upgrade() {
            None => false,
            Some(flag) => {
                if now >= *due {
                    flag.store(true, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            }
        });
    }
}

/// A running `btbx serve` instance. Dropping the handle does **not**
/// stop the server; send `POST /shutdown` (or use
/// [`Server::shutdown`]) and then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    accept: std::thread::JoinHandle<()>,
}

impl Server {
    /// Bind, spawn the accept loop and request workers, and return once
    /// the socket is listening (so [`Server::addr`] is immediately
    /// valid, including for `port: 0`).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the cache directory is unusable or the
    /// socket cannot be bound.
    pub fn start(config: ServeConfig) -> Result<Server, StoreError> {
        // One backend serves both consumers (results and trace fetches)
        // so remote traffic aggregates on one counter set; the default
        // and `dir://` paths keep the process-wide per-directory flight
        // sharing that `ResultStore::open` provides.
        let (store, blob_backend): (ResultStore, Option<Arc<dyn Store>>) = match &config.store {
            None => (ResultStore::open(&config.cache_dir)?, None),
            Some(StoreUrl::Dir(dir)) => {
                let store = ResultStore::open(dir)?;
                let backend = Arc::clone(store.backend());
                (store, Some(backend))
            }
            Some(url) => {
                let backend = open_store(url, config.http_timeout)?;
                (
                    ResultStore::open_backend(Arc::clone(&backend)),
                    Some(backend),
                )
            }
        };
        let listener =
            TcpListener::bind(("127.0.0.1", config.port)).map_err(|source| StoreError::Io {
                action: "binding service socket",
                path: PathBuf::from(format!("127.0.0.1:{}", config.port)),
                source,
            })?;
        let addr = listener.local_addr().map_err(|source| StoreError::Io {
            action: "resolving bound address",
            path: PathBuf::from("127.0.0.1"),
            source,
        })?;
        let (workers, shard_threads) = pool_split(config.threads, config.shards);
        let state = Arc::new(ServerState {
            store,
            cache_dir: config.cache_dir.clone(),
            blob_backend,
            shards: config.shards.max(1),
            shard_threads,
            max_inflight: config.max_inflight,
            deadline: config.deadline,
            ladders: Mutex::new(HashMap::new()),
            deadlines: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_aborts: AtomicU64::new(0),
            resumed_points: AtomicU64::new(0),
        });
        if state.deadline.is_some() {
            let watch = Arc::clone(&state);
            std::thread::spawn(move || deadline_watch(&watch));
        }
        let accept = std::thread::spawn(move || {
            let pool = ServicePool::new("serve", workers);
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(stream) = stream else { continue };
                // Submit before checking the flag: a request racing the
                // shutdown (or the waker itself, which sends nothing and
                // parses as an empty probe) is drained, not reset.
                let worker_state = Arc::clone(&state);
                let self_addr = addr;
                pool.submit(format!("conn-{i}"), move || {
                    handle_connection(&worker_state, stream, self_addr);
                });
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Graceful drain: in-flight and queued requests finish
            // before the workers exit.
            pool.shutdown();
            eprintln!("[serve] drained; bye");
        });
        Ok(Server { addr, accept })
    }

    /// The bound address (resolves `port: 0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful shutdown over the wire, without waiting for
    /// the drain to finish (follow with [`Server::join`]).
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the server is unreachable.
    pub fn shutdown(&self) -> io::Result<()> {
        http_request(&self.addr.to_string(), "POST", "/shutdown", "").map(|_| ())
    }

    /// Wait for the accept loop (i.e. the server) to exit.
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

/// Read and answer one HTTP request, then close the connection.
fn handle_connection(state: &ServerState, stream: TcpStream, self_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(Some(request)) => request,
        // Empty connection: either a probe or the shutdown waker.
        Ok(None) => return,
        Err(e) => {
            // A malformed request still counts as a request, so
            // `errors <= requests` holds for /stats consumers.
            state.requests.fetch_add(1, Ordering::Relaxed);
            state.errors.fetch_add(1, Ordering::Relaxed);
            let mut stream = reader.into_inner();
            let _ = respond_json(
                &mut stream,
                400,
                &format!("{{\"error\":{:?}}}", e.to_string()),
                None,
            );
            return;
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    let mut stream = reader.into_inner();
    let outcome = route(state, &request, &mut stream, self_addr);
    if let Err(status) = outcome {
        state.errors.fetch_add(1, Ordering::Relaxed);
        let _ = respond_json(&mut stream, status.0, &status.1, None);
    }
}

/// Route one parsed request; `Err((status, body))` is answered by the
/// caller (which also counts it).
fn route(
    state: &ServerState,
    request: &HttpRequest,
    stream: &mut TcpStream,
    self_addr: SocketAddr,
) -> Result<(), (u16, String)> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            // Liveness plus the fleet compat handshake: version,
            // CACHE_VERSION, shard config, supported orgs.
            let info = protocol::health_info(state.shards);
            let body = serde_json::to_string(&info).expect("health info serializes");
            let _ = respond_json(stream, 200, &body, None);
            Ok(())
        }
        ("GET", "/stats") => {
            let body = serde_json::to_string(&state.stats()).expect("stats serialize");
            let _ = respond_json(stream, 200, &body, None);
            Ok(())
        }
        ("POST", "/shutdown") => {
            let _ = respond_json(stream, 200, "{\"ok\":true}", None);
            if !state.shutdown.swap(true, Ordering::SeqCst) {
                eprintln!("[serve] shutdown requested; draining");
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(self_addr);
            }
            Ok(())
        }
        ("POST", "/sim") => {
            let Some(_permit) = state.admit() else {
                // Load shedding: a fast, well-formed 429 with a retry
                // hint — never an unbounded queue, never a reset. Shed
                // before parsing the body; an overloaded server should
                // spend nothing on work it will not run.
                state.shed.fetch_add(1, Ordering::Relaxed);
                state.errors.fetch_add(1, Ordering::Relaxed);
                let _ = respond_json(
                    stream,
                    429,
                    "{\"error\":\"overloaded: in-flight simulation limit reached\"}",
                    Some(("Retry-After", "1")),
                );
                return Ok(());
            };
            let point: SimPoint = serde_json::from_slice(&request.body).map_err(|e| {
                (
                    400,
                    format!("{{\"error\":{:?}}}", format!("bad SimPoint: {e}")),
                )
            })?;
            let (result, fetch) = simulate(state, &point)
                .map_err(|(status, msg)| (status, format!("{{\"error\":{msg:?}}}")))?;
            if fetch == Fetch::Disk {
                state.resumed_points.fetch_add(1, Ordering::Relaxed);
            }
            let body = serde_json::to_string(&result).expect("results serialize");
            let cache_header = match fetch {
                Fetch::Disk => "disk",
                Fetch::Computed => "computed",
                Fetch::Joined => "joined",
            };
            let _ = respond_json(stream, 200, &body, Some(("X-Btbx-Cache", cache_header)));
            Ok(())
        }
        (method @ ("GET" | "HEAD" | "PUT"), path) if path.starts_with("/blob/") => {
            let key = &path["/blob/".len()..];
            if !valid_blob_key(key) {
                return Err((
                    400,
                    format!("{{\"error\":{:?}}}", format!("invalid blob key `{key}`")),
                ));
            }
            match method {
                "PUT" => blob_put(state, key, &request.body, stream),
                head_or_get => blob_get(state, key, stream, head_or_get == "HEAD"),
            }
        }
        (_, path) => Err((
            404,
            format!("{{\"error\":{:?}}}", format!("no route {path}")),
        )),
    }
}

/// Blob keys are flat content-addressed file names: no path separators,
/// no leading dot (dotfiles and `..` cannot be named), a conservative
/// charset, and a bounded length. Everything a harness consumer
/// publishes (`<workload>-<org>-<hash>.json`, `warm-<hash>.snap`,
/// `trace-<hash>.btbt`) passes; traversal attempts do not.
fn valid_blob_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= 160
        && !key.starts_with('.')
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Map a blob key onto this node's cache layout, so blobs published
/// over HTTP land exactly where local consumers write (and read) them:
/// warm snapshots under `<cache>/warm`, trace containers under
/// `<cache>/trace`, everything else (sweep results) at the top level.
/// That placement is what keeps a coordinator's blob-fed cache
/// byte-identical to a CLI run's.
fn blob_dir(cache_dir: &Path, key: &str) -> PathBuf {
    if key.starts_with("warm-") && key.ends_with(".snap") {
        cache_dir.join("warm")
    } else if key.starts_with("trace-") && key.ends_with(".btbt") {
        cache_dir.join("trace")
    } else {
        cache_dir.to_path_buf()
    }
}

/// Serve `GET`/`HEAD /blob/<key>` from this node's cache directory.
/// A missing blob is a well-formed 404 (an expected miss, not counted
/// as a server error); read failures are 500s.
fn blob_get(
    state: &ServerState,
    key: &str,
    stream: &mut TcpStream,
    head_only: bool,
) -> Result<(), (u16, String)> {
    let path = blob_dir(&state.cache_dir, key).join(key);
    match faults::read(&path) {
        Ok(bytes) => {
            let _ = respond_bytes(stream, 200, &bytes, head_only);
            Ok(())
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let _ = respond_bytes(stream, 404, b"", head_only);
            Ok(())
        }
        Err(e) => Err((
            500,
            format!("{{\"error\":{:?}}}", format!("reading blob {key}: {e}")),
        )),
    }
}

/// Serve `PUT /blob/<key>`: publish the body atomically into this
/// node's cache directory (temp file + rename, exactly like a local
/// store write), answering `201 Created`.
fn blob_put(
    state: &ServerState,
    key: &str,
    body: &[u8],
    stream: &mut TcpStream,
) -> Result<(), (u16, String)> {
    let dir = blob_dir(&state.cache_dir, key);
    let publish = faults::create_dir_all(&dir)
        .map_err(|e| StoreError::Io {
            action: "creating blob dir",
            path: dir.clone(),
            source: e,
        })
        .and_then(|()| atomic_publish(&dir, key, body));
    match publish {
        Ok(()) => {
            let _ = respond_json(stream, 201, "{\"ok\":true}", None);
            Ok(())
        }
        Err(e) => Err((
            500,
            format!("{{\"error\":{:?}}}", format!("publishing blob {key}: {e}")),
        )),
    }
}

/// Run (or fetch) one point through the store's single-flight path,
/// converting failures into `(status, message)`: a deadline abort is a
/// 503 (this request exceeded its budget; the server is healthy), any
/// other panic or cache failure a 500.
fn simulate(state: &ServerState, point: &SimPoint) -> Result<(SimResult, Fetch), (u16, String)> {
    let name = point.cache_file_for(state.shards);
    let ladder = state.ladder_for(point);
    let abort = state.arm_deadline();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        state.store.get_or_compute(&name, false, || {
            // Resolve inside the compute closure: cache hits and joins
            // never need the trace bytes at all.
            let point = resolve_trace(state, point);
            point.run_sharded_abortable(
                state.shards,
                state.shard_threads,
                ladder.as_deref(),
                abort.clone(),
            )
        })
    }));
    match outcome {
        Ok(Ok(hit)) => Ok(hit),
        Ok(Err(e)) => Err((500, format!("cache: {e}"))),
        Err(payload) => {
            // The panic may have poisoned this point's shared warm
            // ladder mid-warm; evict it so the next request builds a
            // fresh one instead of inheriting the poison.
            state.evict_ladder(point);
            let msg = btbx_uarch::runner::panic_message(&*payload);
            if msg.contains(ABORT_MARKER) {
                // Deadline abort (joiners of the same flight see the
                // marker through the poisoned-flight payload and land
                // here too). The connection is answered, never reset.
                state.deadline_aborts.fetch_add(1, Ordering::Relaxed);
                Err((503, format!("deadline exceeded: aborted {name}")))
            } else {
                Err((500, msg))
            }
        }
    }
}

/// Make a point's trace container (if any) openable locally, fetching
/// it by content hash from the blob backend when it is not:
///
/// 1. A local path whose container still matches the reference's
///    content hash wins outright — no fetch, no rewrite.
/// 2. Otherwise the spool (`<cache>/trace/trace-<hash>.btbt`) is
///    probed; a previously fetched (or blob-PUT-seeded) container is
///    reused.
/// 3. Otherwise the blob backend fetches `trace-<hash>.btbt`, the bytes
///    are spooled atomically, and the spooled container's header hash
///    is verified against the reference before use.
///
/// Runs inside the single-flight compute closure, so cache hits and
/// joins never touch the trace. Failures panic with a clear message:
/// the request answers 500 and a cluster scheduler retries the point on
/// a node that *can* resolve the trace — exactly the pre-backend
/// semantics for a missing local file.
fn resolve_trace(state: &ServerState, point: &SimPoint) -> SimPoint {
    let Some(tref) = &point.workload.trace else {
        return point.clone();
    };
    if !tref.is_store_only() {
        if let Ok(info) = container::read_info(&tref.path) {
            if info.content_hash == tref.content_hash {
                return point.clone();
            }
        }
    }
    let key = tref.blob_key();
    let spool_dir = state.cache_dir.join("trace");
    let spool = spool_dir.join(&key);
    let rewired = |spool: PathBuf| {
        let mut point = point.clone();
        if let Some(tref) = &mut point.workload.trace {
            tref.path = spool;
        }
        point
    };
    if let Ok(info) = container::read_info(&spool) {
        if info.content_hash == tref.content_hash {
            return rewired(spool);
        }
    }
    let Some(backend) = &state.blob_backend else {
        panic!(
            "trace container for `{}` is not readable at {} and no --store is \
             configured to fetch blob {key}",
            point.workload.name,
            tref.path.display()
        );
    };
    let bytes = match backend.get(&key) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => panic!(
            "trace container for `{}` is not readable locally and {} does not \
             have blob {key}",
            point.workload.name,
            backend.id()
        ),
        Err(e) => panic!("fetching trace blob {key} from {}: {e}", backend.id()),
    };
    if let Err(e) = faults::create_dir_all(&spool_dir) {
        panic!("creating trace spool dir {}: {e}", spool_dir.display());
    }
    if let Err(e) = atomic_publish(&spool_dir, &key, &bytes) {
        panic!("spooling trace blob {key}: {e}");
    }
    // Verify the *spooled file* (not just the bytes): the header hash
    // must match the requested identity, or the fetched blob is damaged
    // (or mislabeled) and must not silently simulate a different trace.
    match container::read_info(&spool) {
        Ok(info) if info.content_hash == tref.content_hash => rewired(spool),
        Ok(info) => {
            let mut corrupt = spool.clone().into_os_string();
            corrupt.push(".corrupt");
            let _ = std::fs::rename(&spool, &corrupt);
            panic!(
                "{}",
                StoreError::Damaged {
                    url: backend.label(&key),
                    detail: format!(
                        "content hash {:016x} != expected {:016x}",
                        info.content_hash, tref.content_hash
                    ),
                }
            );
        }
        Err(e) => {
            let mut corrupt = spool.clone().into_os_string();
            corrupt.push(".corrupt");
            let _ = std::fs::rename(&spool, &corrupt);
            panic!(
                "{}",
                StoreError::Damaged {
                    url: backend.label(&key),
                    detail: e.to_string(),
                }
            );
        }
    }
}

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Parse a request head + body. `Ok(None)` means the peer closed
/// without sending anything (probes, the shutdown waker).
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<HttpRequest>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad request line",
            ))
        }
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    // Blob payloads (trace containers) dwarf every JSON body, so the
    // cap is per-namespace: generous for `/blob/`, tight elsewhere.
    let cap = if path.starts_with("/blob/") {
        MAX_BLOB_BYTES
    } else {
        MAX_BODY_BYTES
    };
    if content_length > cap {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(HttpRequest { method, path, body }))
}

/// Write a JSON response with an optional extra header and close.
fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra: Option<(&str, &str)>,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        status_reason(status),
        body.len()
    );
    if let Some((name, value)) = extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write a binary (octet-stream) response and close. `head_only`
/// answers a `HEAD`: the real `Content-Length` with no body bytes.
fn respond_bytes(
    stream: &mut TcpStream,
    status: u16,
    body: &[u8],
    head_only: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/octet-stream\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(body)?;
    }
    stream.flush()
}

/// A parsed HTTP response from [`http_request`].
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal blocking HTTP/1.1 client for the service (the `btbx sweep
/// --server` transport, tests, and smoke scripts). `addr` is
/// `host:port`, optionally prefixed with `http://`. Uses the default
/// request timeout ([`crate::opts::DEFAULT_HTTP_TIMEOUT_MS`]); cluster
/// paths use [`http_request_timeout`] to honour `--http-timeout-ms`.
///
/// # Errors
///
/// [`io::Error`] on connection or protocol failures. Non-2xx statuses
/// are returned, not errors.
pub fn http_request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
    http_request_timeout(
        addr,
        method,
        path,
        body,
        Duration::from_millis(crate::opts::DEFAULT_HTTP_TIMEOUT_MS),
    )
}

/// [`http_request`] with an explicit timeout applied to *every* phase —
/// connect, write, and read — so a hung or wedged peer can never stall
/// the caller indefinitely (one wedged node must not pin a whole
/// cluster sweep).
///
/// # Errors
///
/// [`io::Error`] on connection or protocol failures;
/// [`io::ErrorKind::TimedOut`]/[`io::ErrorKind::WouldBlock`] when a
/// phase exceeds `timeout`.
pub fn http_request_timeout(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let response = http_request_bytes(addr, method, path, body.as_bytes(), timeout)?;
    let body = String::from_utf8(response.body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok(HttpResponse {
        status: response.status,
        headers: response.headers,
        body,
    })
}

/// A parsed binary HTTP response from [`http_request_bytes`].
#[derive(Debug)]
pub struct HttpBytesResponse {
    /// Status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body, raw bytes.
    pub body: Vec<u8>,
}

impl HttpBytesResponse {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The binary core of the HTTP client: request and response bodies are
/// raw bytes, which the blob transport ([`crate::store::HttpStore`])
/// needs — trace containers and warm snapshots are not UTF-8. The
/// string-bodied [`http_request_timeout`] is a thin wrapper. Every
/// phase (connect, write, read) honours `timeout`, and the
/// `Connect`/`HttpRead` fault-injection checkpoints fire here, so
/// remote store operations are injectable exactly like local ones.
///
/// # Errors
///
/// [`io::Error`] on connection or protocol failures;
/// [`io::ErrorKind::TimedOut`]/[`io::ErrorKind::WouldBlock`] when a
/// phase exceeds `timeout`.
pub fn http_request_bytes(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpBytesResponse> {
    let addr = addr
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();
    // connect_timeout panics on zero and a multi-day timeout is a unit
    // bug, not a choice; every call site shares one clamp.
    let timeout = sane_timeout(timeout);
    faults::check_connect(&addr)?;
    // connect_timeout needs a resolved SocketAddr; take the first.
    let socket_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: no address"))
    })?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let content_type = if path.starts_with("/blob/") {
        "application/octet-stream"
    } else {
        "application/json"
    };
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body)?;
    faults::check_http_read(&addr)?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }
    // A HEAD response advertises the blob's length but carries no body.
    let body = if method.eq_ignore_ascii_case("HEAD") {
        Vec::new()
    } else {
        match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                buf
            }
            None => {
                let mut buf = Vec::new();
                reader.read_to_end(&mut buf)?;
                buf
            }
        }
    };
    Ok(HttpBytesResponse {
        status,
        headers,
        body,
    })
}

/// Run a sweep *through a server* instead of locally: every point is
/// POSTed to `addr`'s `/sim` endpoint on `opts.threads` concurrent
/// client jobs. Results come back in [`Sweep::points`] order, exactly
/// like [`Sweep::run`] — the server owns the cache and the dedup.
///
/// Before any work is dispatched the server's `/healthz` handshake is
/// verified: a server on a different `CACHE_VERSION` (or missing one of
/// the sweep's organizations) is refused up front, because its results
/// would be silently incompatible with this client's cache.
///
/// Requests shed by the server (429) are retried with a bounded backoff
/// honouring its `Retry-After` hint, so a sweep overrunning a node's
/// `--max-inflight` degrades to slower progress, not to failures.
///
/// Per-point progress is journalled exactly like the local path
/// ([`Sweep::run`]); with `--resume` the journal reports how many points
/// a previous (killed) invocation already published — the server's disk
/// cache answers those instantly, so only incomplete points re-run.
///
/// # Errors
///
/// [`ClusterError::Unreachable`]/[`ClusterError::CacheVersionMismatch`]
/// /[`ClusterError::MissingOrgs`] when the handshake fails, and
/// [`ClusterError::Points`] naming every point (node address + cache
/// key + status) that failed — no more panicking mid-sweep.
pub fn sweep_via_server(
    sweep: &Sweep,
    opts: &HarnessOpts,
    addr: &str,
) -> Result<Vec<SimResult>, ClusterError> {
    let timeout = opts.http_timeout();
    let info =
        protocol::probe_health(addr, timeout).map_err(|error| ClusterError::Unreachable {
            node: addr.to_string(),
            error,
        })?;
    protocol::verify_cache_version(addr, &info)?;
    protocol::verify_orgs(addr, &info, &sweep.orgs)?;

    let points = sweep.points();
    let names: Vec<String> = points
        .iter()
        .map(|p| p.cache_file_for(info.shards))
        .collect();
    let (journal, recovery) =
        SweepJournal::open(&opts.out_dir, journal::sweep_key(&names), opts.resume).map_err(
            |source| {
                ClusterError::Store(StoreError::Io {
                    action: "opening sweep journal",
                    path: journal::journal_dir(&opts.out_dir),
                    source,
                })
            },
        )?;
    if opts.resume {
        let resumed = names
            .iter()
            .filter(|n| recovery.completed.contains(n.as_str()))
            .count();
        eprintln!(
            "[{}] resume: {resumed}/{} point(s) already published (resumed_points={resumed})",
            sweep.name,
            names.len()
        );
    }
    let journal_ref = &journal;
    let jobs: Vec<(String, _)> = points
        .into_iter()
        .zip(names)
        .map(|(point, name)| {
            let label = format!("{}:{}@server", point.workload.name, point.org.id());
            let full_label = format!(
                "{}:{}@{}",
                point.workload.name,
                point.org.id(),
                point.budget
            );
            let addr = addr.to_string();
            let job = move || -> Result<SimResult, PointError> {
                journal_ref.attempt(&name, &full_label);
                match post_point_shedding_aware(&addr, &point, timeout) {
                    Ok(result) => {
                        journal_ref.done(&name);
                        Ok(result)
                    }
                    Err(error) => {
                        journal_ref.failed(&name, &error.to_string());
                        Err(PointError {
                            node: addr.clone(),
                            point: name,
                            label: full_label,
                            error,
                        })
                    }
                }
            };
            (label, job)
        })
        .collect();
    let outcomes =
        crate::runner::run_named_jobs(&format!("{}@server", sweep.name), opts.threads, jobs);
    let mut results = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(result) => results.push(result),
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        // The journal stays on disk: a follow-up --resume re-dispatches
        // exactly the recorded failures plus anything never attempted.
        return Err(ClusterError::Points(failures));
    }
    journal.finish();
    Ok(results)
}

/// [`protocol::post_point`] plus shed handling: a 429 means the server
/// chose to shed this request, so honour its `Retry-After` hint (capped
/// at 2 s) and try again, long enough to outlast any plausible burst.
/// Every other failure propagates unchanged.
fn post_point_shedding_aware(
    addr: &str,
    point: &SimPoint,
    timeout: Duration,
) -> Result<SimResult, RequestError> {
    const MAX_ATTEMPTS: u32 = 60;
    let mut attempt = 0;
    loop {
        match protocol::post_point(addr, point, timeout) {
            Err(RequestError::Status { status: 429, body }) if attempt < MAX_ATTEMPTS => {
                attempt += 1;
                let _ = body;
                std::thread::sleep(
                    sane_timeout(Duration::from_millis(100 * attempt as u64))
                        .min(Duration::from_secs(2)),
                );
            }
            other => return other,
        }
    }
}
