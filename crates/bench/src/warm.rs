//! Durable warm-snapshot cache: persists a [`AnyWarmLadder`]'s rungs to
//! disk so a later *process* restores warmed microarchitectural state in
//! O(state) instead of re-simulating the warm-up prefix.
//!
//! One cache file holds one simulation identity
//! ([`btbx_uarch::warm_identity`]): workload, organization, budget,
//! warm-up window and simulator configuration. Files live under
//! `<out>/cache/warm/`, named by the FNV-1a hash of the identity folded
//! with [`crate::sweep::CACHE_VERSION`] — bumping the version orphans
//! stale snapshots exactly as it orphans stale results.
//!
//! The payload is wrapped in the same sealed envelope as the snapshots
//! themselves ([`btbx_core::snap::seal`]), so a load validates codec
//! version, identity, and content hash before any entry is trusted; a
//! file that fails any check is quarantined to `<file>.corrupt` and
//! treated as absent. Trace checkpoints are *not* serialized — each
//! entry records its stream position and the loader re-derives the
//! checkpoint from a fresh source via `seek` (O(state) for every source
//! kind).
//!
//! Storage goes through the same pluggable [`Store`] backend layer as
//! [`crate::store::ResultStore`]: the default is a local directory with
//! atomic (temp file + rename) publishes, and a remote or tiered
//! backend shares sealed snapshots across a fleet.

use crate::store::{DirStore, Quarantine, Store, StoreError};
use crate::sweep::CACHE_VERSION;
use btbx_core::snap::{fnv64, seal, unseal, SnapError, SnapReader, SnapWriter};
use btbx_trace::source::SeekableSource;
use btbx_trace::AnySource;
use btbx_uarch::{AnyWarmLadder, WarmEntry};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bump when the warm-file payload layout changes (the sealed envelope
/// already guards codec and content; this guards the field order below).
const WARM_FILE_VERSION: u32 = 1;

/// A store of persisted warm ladders, one blob per simulation
/// identity. See the module docs for format and guarantees.
pub struct WarmCache {
    backend: Arc<dyn Store>,
}

impl WarmCache {
    /// Open (creating if needed) the warm cache under `dir` —
    /// conventionally `<out>/cache/warm`, next to the result store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Ok(WarmCache {
            backend: Arc::new(DirStore::open(dir)?),
        })
    }

    /// Open the warm cache over an explicit backend (a fleet-shared
    /// remote, a tiered composition, or `mem://` in tests).
    pub fn open_backend(backend: Arc<dyn Store>) -> Self {
        WarmCache { backend }
    }

    /// The blob name a given identity persists under.
    pub fn name_for(identity: &str) -> String {
        let hash = fnv64(identity.as_bytes()) ^ (CACHE_VERSION as u64).wrapping_mul(0x9e37_79b9);
        format!("warm-{hash:016x}.snap")
    }

    /// The local file a given identity persists to.
    ///
    /// # Panics
    ///
    /// Panics when the backend has no local directory (`mem://`,
    /// `http://`); use [`name_for`](WarmCache::name_for) for the
    /// backend-independent blob name.
    pub fn file_for(&self, identity: &str) -> PathBuf {
        self.backend
            .local_dir()
            .expect("warm cache backend has no local directory")
            .join(Self::name_for(identity))
    }

    /// Populate `ladder` from the persisted file for `identity`, if one
    /// exists and validates. Trace checkpoints are re-derived by seeking
    /// a clone of `proto` to each entry's recorded position; entries
    /// beyond the end of the (possibly shorter) stream are skipped.
    ///
    /// Returns the number of rungs published. A missing file is `Ok(0)`;
    /// a damaged file is quarantined to `<file>.corrupt` and reported as
    /// `Ok(0)` — reads never fail a run, they only cost a re-warm.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for read failures other than `NotFound`.
    ///
    /// # Panics
    ///
    /// Panics if `ladder` is already bound to a *different* identity
    /// (the same misuse [`AnyWarmLadder::bind`] rejects).
    pub fn load(
        &self,
        identity: &str,
        proto: &AnySource,
        ladder: &AnyWarmLadder,
    ) -> Result<usize, StoreError> {
        let name = Self::name_for(identity);
        let bytes = match self.backend.get(&name)? {
            Some(bytes) => bytes,
            None => return Ok(0),
        };
        let entries = match parse(&bytes, identity) {
            Ok(entries) => entries,
            Err(why) => {
                quarantine(self.backend.as_ref(), &name, &why);
                return Ok(0);
            }
        };
        ladder.bind(identity);
        let mut published = 0;
        for (key, base, committed, position, snapshot) in entries {
            let mut source = proto.clone();
            if source.seek(position) != position {
                // The stream is shorter than the snapshot's position —
                // a different (truncated) trace file, or a synthetic
                // workload re-parameterized without an identity change.
                // Skip: a missing rung only costs a pipelined hand-off.
                continue;
            }
            ladder.publish(
                key,
                WarmEntry {
                    checkpoint: source.checkpoint(),
                    snapshot: Arc::new(snapshot),
                    base,
                    committed,
                    position,
                },
            );
            published += 1;
        }
        Ok(published)
    }

    /// Persist every rung of `ladder` to its identity's file (atomic
    /// replace). An unbound or empty ladder is a no-op returning 0.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the temp write or rename fails.
    pub fn store(&self, ladder: &AnyWarmLadder) -> Result<usize, StoreError> {
        let Some(identity) = ladder.identity() else {
            return Ok(0);
        };
        let entries = ladder.entries();
        if entries.is_empty() {
            return Ok(0);
        }
        let mut w = SnapWriter::new();
        w.u32(WARM_FILE_VERSION);
        w.u64(entries.len() as u64);
        for (key, e) in &entries {
            w.u64(*key);
            w.u64(e.base);
            w.u64(e.committed);
            w.u64(e.position);
            w.bytes(&e.snapshot);
        }
        let sealed = seal(&identity, &w.into_vec());
        self.backend.put(&Self::name_for(&identity), &sealed)?;
        Ok(entries.len())
    }
}

type RawEntry = (u64, u64, u64, u64, Vec<u8>);

fn parse(bytes: &[u8], identity: &str) -> Result<Vec<RawEntry>, SnapError> {
    let payload = unseal(bytes, identity)?;
    let mut r = SnapReader::new(payload);
    let version = r.u32()?;
    if version != WARM_FILE_VERSION {
        return Err(SnapError::VersionMismatch {
            expected: WARM_FILE_VERSION,
            found: version,
        });
    }
    let count = r.u64()? as usize;
    // Entry payloads dominate; 40 bytes is the fixed part, so any
    // plausible count fits in what remains.
    if count > r.remaining() {
        return Err(SnapError::Corrupt("warm cache entry count"));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let key = r.u64()?;
        let base = r.u64()?;
        let committed = r.u64()?;
        let position = r.u64()?;
        let snapshot = r.bytes()?.to_vec();
        entries.push((key, base, committed, position, snapshot));
    }
    r.done()?;
    Ok(entries)
}

fn quarantine(backend: &dyn Store, name: &str, why: &SnapError) {
    let label = backend.label(name);
    match backend.quarantine(name) {
        Quarantine::Moved(_) => {
            eprintln!("[warm] damaged warm cache file {label} ({why:?}); quarantined")
        }
        Quarantine::Failed(e) => {
            eprintln!("[warm] damaged warm cache file {label} ({why:?}); quarantine failed: {e}")
        }
        Quarantine::Unsupported => eprintln!(
            "[warm] damaged warm cache file {label} ({why:?}); backend cannot \
             quarantine, treating as absent"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btbx_core::spec::BtbSpec;
    use btbx_core::storage::BudgetPoint;
    use btbx_core::OrgKind;
    use btbx_trace::suite;
    use btbx_uarch::{warm_identity, ParallelSession, SimConfig};
    use std::fs;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("btbx-warm-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn proto() -> AnySource {
        suite::ipc1_client()
            .into_iter()
            .next()
            .unwrap()
            .build_source()
            .unwrap()
    }

    fn run(warm: &AnyWarmLadder) -> btbx_uarch::ParallelOutcome {
        let spec = BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb0_9);
        let proto = proto();
        ParallelSession::new(move || proto.clone(), spec)
            .config(SimConfig::without_fdip())
            .warmup(4_000)
            .measure(12_000)
            .shards(3)
            .warm_ladder(warm)
            .run()
            .unwrap()
    }

    #[test]
    fn persisted_ladder_restores_across_ladders_bit_exactly() {
        let dir = fresh_dir("roundtrip");
        let cache = WarmCache::open(&dir).unwrap();

        let first = AnyWarmLadder::new();
        let cold = run(&first);
        assert!(cold.telemetry.warmed_instructions > 0);
        let stored = cache.store(&first).unwrap();
        assert_eq!(stored, first.len());

        // A fresh ladder (fresh process, in effect) loads the file and
        // the rerun restores every boundary: no warm-up is simulated and
        // the result is bit-identical.
        let second = AnyWarmLadder::new();
        let identity = first.identity().unwrap();
        let loaded = cache.load(&identity, &proto(), &second).unwrap();
        assert_eq!(loaded, stored);
        let warm = run(&second);
        assert_eq!(warm.telemetry.warmed_instructions, 0);
        assert_eq!(warm.result.stats, cold.result.stats);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_loads_nothing() {
        let dir = fresh_dir("missing");
        let cache = WarmCache::open(&dir).unwrap();
        let ladder = AnyWarmLadder::new();
        let n = cache.load("no-such-identity", &proto(), &ladder).unwrap();
        assert_eq!(n, 0);
        assert!(ladder.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_file_is_quarantined_and_ignored() {
        let dir = fresh_dir("damaged");
        let cache = WarmCache::open(&dir).unwrap();
        let ladder = AnyWarmLadder::new();
        run(&ladder);
        cache.store(&ladder).unwrap();
        let identity = ladder.identity().unwrap();
        let path = cache.file_for(&identity);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let fresh = AnyWarmLadder::new();
        let n = cache.load(&identity, &proto(), &fresh).unwrap();
        assert_eq!(n, 0, "a damaged file must not publish rungs");
        assert!(fresh.is_empty());
        let mut corrupt = path.as_os_str().to_owned();
        corrupt.push(".corrupt");
        assert!(
            PathBuf::from(corrupt).exists(),
            "damage must be quarantined"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_identity_is_rejected_at_the_envelope() {
        let dir = fresh_dir("foreign");
        let cache = WarmCache::open(&dir).unwrap();
        let ladder = AnyWarmLadder::new();
        run(&ladder);
        cache.store(&ladder).unwrap();
        let identity = ladder.identity().unwrap();
        // Same bytes under the file name of a different identity: the
        // sealed envelope's key check rejects them.
        let other = warm_identity(
            "other-source",
            &BtbSpec::of(OrgKind::Conv).at(BudgetPoint::Kb0_9),
            4_000,
            &SimConfig::without_fdip(),
        );
        fs::copy(cache.file_for(&identity), cache.file_for(&other)).unwrap();
        let fresh = AnyWarmLadder::new();
        let n = cache.load(&other, &proto(), &fresh).unwrap();
        assert_eq!(n, 0);
        assert!(fresh.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbound_or_empty_ladder_stores_nothing() {
        let dir = fresh_dir("empty");
        let cache = WarmCache::open(&dir).unwrap();
        let ladder = AnyWarmLadder::new();
        assert_eq!(cache.store(&ladder).unwrap(), 0);
        ladder.bind("bound-but-empty");
        assert_eq!(cache.store(&ladder).unwrap(), 0);
        assert!(fs::read_dir(&dir).unwrap().next().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
