//! Harness-side entry points to the fault-injection seam.
//!
//! The seam itself (wrappers, rule matching, arming) lives in
//! [`btbx_core::faults`] so every crate in the stack — the trace
//! container layer included — can route I/O through it; this module
//! re-exports it and adds what only the harness needs: JSON plan files
//! and environment/CLI arming.
//!
//! A plan can be armed two ways:
//!
//! * `--fault-plan FILE` on any sweep-capable subcommand
//!   ([`HarnessOpts::fault_plan`]);
//! * the `BTBX_FAULT_PLAN` environment variable, holding either inline
//!   JSON (first byte `{`) or a file path — how CI's chaos-smoke job
//!   arms child processes it spawns.
//!
//! See EXPERIMENTS.md ("Fault injection") for the plan format.

pub use btbx_core::faults::{
    arm, armed, disarm, ErrKind, FaultGuard, FaultOp, FaultPlan, FaultRule,
};

use crate::opts::HarnessOpts;
use std::path::Path;

/// Environment variable arming a fault plan process-wide: inline JSON
/// when it starts with `{`, a plan-file path otherwise.
pub const FAULT_PLAN_ENV: &str = "BTBX_FAULT_PLAN";

/// Parse a plan from JSON text.
///
/// # Errors
///
/// A human-readable message naming what failed to parse.
pub fn parse_plan(json: &str) -> Result<FaultPlan, String> {
    serde_json::from_str(json).map_err(|e| format!("bad fault plan JSON: {e}"))
}

/// Load a plan from a JSON file.
///
/// # Errors
///
/// A human-readable message naming the file and what failed.
pub fn load_plan(path: &Path) -> Result<FaultPlan, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read fault plan {}: {e}", path.display()))?;
    parse_plan(&text)
}

/// Arm the plan named by [`FAULT_PLAN_ENV`], if set. Returns the guard
/// keeping it armed (hold it for the process lifetime).
///
/// # Errors
///
/// A human-readable message when the variable is set but unusable —
/// callers should treat that as fatal rather than silently running
/// without the requested faults.
pub fn arm_from_env() -> Result<Option<FaultGuard>, String> {
    let Ok(value) = std::env::var(FAULT_PLAN_ENV) else {
        return Ok(None);
    };
    if value.trim().is_empty() {
        return Ok(None);
    }
    let plan = if value.trim_start().starts_with('{') {
        parse_plan(&value)?
    } else {
        load_plan(Path::new(&value))?
    };
    Ok(Some(arm(plan)))
}

/// Arm the plan named by `--fault-plan`, if any.
///
/// # Errors
///
/// A human-readable message when the file is missing or malformed.
pub fn arm_from_opts(opts: &HarnessOpts) -> Result<Option<FaultGuard>, String> {
    match &opts.fault_plan {
        Some(path) => load_plan(path).map(|plan| Some(arm(plan))),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_file_plans_parse() {
        let json = r#"{"seed":9,"rules":[{"op":"Write","kind":"Enospc","path":"cache","nth":2}]}"#;
        let plan = parse_plan(json).unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.rules.len(), 1);
        assert_eq!(plan.rules[0].kind, ErrKind::Enospc);
        assert_eq!(plan.rules[0].nth, 2);
        assert_eq!(plan.rules[0].count, 1, "count defaults to 1");

        let path = std::env::temp_dir().join(format!("btbx-plan-{}.json", std::process::id()));
        std::fs::write(&path, json).unwrap();
        assert_eq!(load_plan(&path).unwrap(), plan);
        let _ = std::fs::remove_file(&path);

        assert!(parse_plan("not json").is_err());
        assert!(load_plan(Path::new("/nonexistent/plan.json")).is_err());
    }
}
