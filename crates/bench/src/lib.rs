//! Experiment harness for the BTB-X reproduction.
//!
//! One binary — `btbx` — regenerates every paper table and figure through
//! subcommands (`btbx fig 9`, `btbx table 3`, `btbx all`, `btbx sweep`);
//! see EXPERIMENTS.md for the CLI guide. The machinery:
//!
//! * [`registry`] — the table of every runnable experiment; the CLI
//!   derives dispatch, `btbx list` and `btbx all` from it;
//! * [`figures`] — one `run(&HarnessOpts)` function per experiment;
//! * [`sweep`] — declarative workloads × orgs × budgets × FDIP matrices
//!   ([`Sweep`]), serde-serializable and executed behind a
//!   content-addressed per-simulation cache keyed by *all* parameters
//!   (workload, organization, budget, windows, `SimConfig`);
//! * [`experiments`] — the named sweeps behind the figures
//!   (`eval_matrix`, `budget_sweep`) and the offset-study drivers;
//! * [`opts`] — shared command-line options (`--warmup`, `--measure`,
//!   `--quick`, `--fresh`, `--threads`, `--out`), `Result`-based;
//! * [`faults`] — deterministic fault-injection plans (JSON) armed via
//!   `--fault-plan` or `BTBX_FAULT_PLAN`, driving the I/O seam in
//!   `btbx_core::faults`;
//! * [`journal`] — the fsync'd per-point sweep journal behind
//!   `btbx sweep --resume`;
//! * [`runner`] — the panic-safe work-queue thread pool (re-exported
//!   from `btbx-uarch`);
//! * [`store`] — the durable per-point result cache ([`ResultStore`]):
//!   atomic temp-file+rename writes, corrupt-entry quarantine, and
//!   process-wide single-flight computation, shared by sweeps and the
//!   server;
//! * [`serve`] — `btbx serve`, a long-lived JSON-over-HTTP simulation
//!   service deduplicating concurrent requests through the store;
//! * [`cluster`] — the distributed sweep fabric: a coordinator that
//!   drives a sweep matrix across a fleet of serve nodes with work
//!   stealing, health tracking, and retry-on-node-loss;
//! * [`perf`] — the `btbx bench` simulator-throughput benchmark and its
//!   `BENCH_sim.json` trajectory/regression gate;
//! * [`report`] — text/CSV emission helpers.

pub mod cluster;
pub mod experiments;
pub mod faults;
pub mod figures;
pub mod journal;
pub mod opts;
pub mod perf;
pub mod registry;
pub mod report;
pub mod runner;
pub mod serve;
pub mod store;
pub mod sweep;
pub mod warm;

pub use opts::HarnessOpts;
pub use store::ResultStore;
pub use sweep::{SimPoint, Sweep};
pub use warm::WarmCache;
