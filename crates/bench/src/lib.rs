//! Experiment harness for the BTB-X reproduction.
//!
//! One binary per paper table/figure (`fig04`, `fig09`, …, `table05`) plus
//! `all_experiments`, which runs the full set and rewrites
//! `EXPERIMENTS.md`. Shared machinery lives here:
//!
//! * [`opts`] — command-line options (`--warmup`, `--measure`, `--quick`,
//!   `--fresh`, `--out`);
//! * [`runner`] — a small work-stealing thread pool for simulation
//!   sweeps;
//! * [`experiments`] — the drivers that produce each figure's data,
//!   caching simulation matrices as JSON under the results directory so
//!   `fig09`/`fig10`/`table05` share one set of runs;
//! * [`report`] — text/CSV emission helpers.

pub mod experiments;
pub mod opts;
pub mod report;
pub mod runner;

pub use opts::HarnessOpts;
